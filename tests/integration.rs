//! Cross-crate integration tests: end-to-end scenarios spanning the
//! architecture model, memory system, devices, hypervisor, DVH
//! mechanisms, workloads, and migration.

use dvh_arch::vmx::ExitReason;
use dvh_core::{migration_cap, Machine, MachineConfig};
use dvh_devices::nic::Frame;
use dvh_hypervisor::world::{LEAF_BUF_BASE_PFN, STAGE_PFN_OFFSET};
use dvh_memory::Gpa;
use dvh_migration::{migrate_nested_vm, MigrationConfig};
use dvh_workloads::{run_app, run_micro, AppId};

// ---- Virtual-passthrough datapath --------------------------------------

#[test]
fn vp_tx_data_flows_end_to_end_through_three_levels() {
    // An L3 VM transmits through a virtual-passthrough device: the
    // payload must cross two vIOMMU stages plus L0's stage and arrive
    // intact on the wire, with zero guest-hypervisor interventions.
    let mut m = Machine::build(MachineConfig::dvh(3));
    let payload: Vec<u8> = (0..1400u32).map(|i| (i * 7 % 251) as u8).collect();
    m.world_mut()
        .guest_write_memory(0, Gpa::from_pfn(LEAF_BUF_BASE_PFN), &payload);
    let before = m.world().stats.total_interventions();
    m.net_tx(0, 1, payload.len() as u32);
    assert_eq!(m.world().stats.total_interventions(), before);
    let wire = m.world().nic.wire();
    assert_eq!(wire.len(), 1);
    assert_eq!(wire[0].payload, payload);
}

#[test]
fn vp_rx_dma_lands_in_leaf_memory_and_is_dirty_tracked() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    let frame = Frame::patterned(1200, 0x42);
    m.world_mut().external_packet_arrival(0, frame.clone());
    // The RX buffer the device model posts is at leaf PFN base+32.
    let got = m
        .world()
        .guest_read_memory(Gpa::from_pfn(LEAF_BUF_BASE_PFN + 32), 1200);
    assert_eq!(got, frame.payload);
    // And the DMA was dirty-logged for migration.
    assert!(m.world().leaf_dirty.is_dirty(LEAF_BUF_BASE_PFN + 32));
}

#[test]
fn passthrough_rx_is_not_dirty_tracked() {
    // The flip side of §3.6: physical passthrough DMA is invisible to
    // the hypervisor.
    let mut m = Machine::build(MachineConfig::passthrough(2));
    m.world_mut()
        .external_packet_arrival(0, Frame::patterned(800, 1));
    assert!(m.world().leaf_dirty.is_clean());
}

#[test]
fn shadow_io_table_composes_the_canonical_stage_chain() {
    for levels in [2usize, 3, 4] {
        let m = Machine::build(MachineConfig::dvh_vp(levels));
        let shadow = m.world().shadow_io.as_ref().expect("shadow table built");
        let host = shadow.lookup(LEAF_BUF_BASE_PFN).expect("mapped").0;
        assert_eq!(
            host,
            LEAF_BUF_BASE_PFN + levels as u64 * STAGE_PFN_OFFSET,
            "levels={levels}"
        );
    }
}

// ---- Exit-ledger invariants ---------------------------------------------

#[test]
fn dvh_timer_eliminates_guest_hypervisor_timer_interventions() {
    let mut vanilla = Machine::build(MachineConfig::baseline(2));
    vanilla.program_timer(0);
    assert!(vanilla.world().stats.total_interventions() > 0);

    let mut dvh = Machine::build(MachineConfig::dvh(2));
    for _ in 0..10 {
        dvh.program_timer(0);
    }
    assert_eq!(dvh.world().stats.total_interventions(), 0);
    assert_eq!(dvh.world().stats.dvh_intercepts["vtimer"], 10);
    // The leaf still exits — to L0 only (DVH trades guest-hypervisor
    // exits for host-hypervisor exits, §3).
    assert_eq!(dvh.world().stats.exits_with(2, ExitReason::MsrWrite), 10);
}

#[test]
fn every_hardware_exit_comes_from_a_real_level() {
    let mut m = Machine::build(MachineConfig::baseline(3));
    m.hypercall(0);
    m.program_timer(0);
    m.send_ipi(0, 1);
    for ((level, _), _) in m.world().stats.exits.iter() {
        assert!((1..=3).contains(&level));
    }
}

#[test]
fn hypercall_exit_counts_grow_with_depth() {
    let mut counts = Vec::new();
    for levels in 1..=3 {
        let mut m = Machine::build(MachineConfig::baseline(levels));
        m.hypercall(0);
        counts.push(m.world().stats.total_exits());
    }
    assert_eq!(counts[0], 1, "an L1 hypercall is exactly one exit");
    assert!(counts[1] > 10 * counts[0]);
    assert!(counts[2] > 10 * counts[1]);
}

// ---- Timer semantics across levels ----------------------------------------

#[test]
fn vtimer_combines_tsc_offsets_across_the_chain() {
    let mut m = Machine::build(MachineConfig::dvh(3));
    m.world_mut().guest_program_timer(0, 12_345);
    // The host-programmed deadline accounts for every level's offset
    // (the synthetic per-level offsets are k * 0x1000, k starting at 1).
    let expected_offset = m.world().combined_tsc_offset(2, 0);
    assert_eq!(expected_offset, 0x1000 + 0x2000 + 0x3000);
    let deadline = m
        .world()
        .vmcs(2, 0)
        .read(dvh_arch::vmx::field::DVH_VTIMER_DEADLINE);
    assert_eq!(deadline, 12_345 + expected_offset);
}

#[test]
fn timer_fire_reaches_an_idle_nested_vm() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    m.world_mut().guest_program_timer(0, 1_000);
    assert_eq!(m.world().timers[0].deadline, Some(1_000));
    m.world_mut().guest_hlt(0);
    assert!(m.world().is_halted(0));
    m.world_mut().fire_timer(0, true);
    assert!(!m.world().is_halted(0));
    assert_eq!(m.world().timers[0].deadline, None);
}

// ---- Microbenchmark / workload coherence ----------------------------------

#[test]
fn micro_and_app_results_tell_the_same_story() {
    // If the microbenchmarks say DVH wins at L2, the application
    // overheads must agree, for every app.
    let mix_ids = [AppId::Apache, AppId::Memcached, AppId::NetperfRr];
    for id in mix_ids {
        let mix = id.mix();
        let mut vanilla = Machine::build(MachineConfig::baseline(2));
        let o_vanilla = run_app(&mut vanilla, &mix, 100).overhead;
        let mut dvh = Machine::build(MachineConfig::dvh(2));
        let o_dvh = run_app(&mut dvh, &mix, 100).overhead;
        assert!(
            o_dvh < o_vanilla / 2.0,
            "{}: {o_dvh} !< {o_vanilla}/2",
            mix.name
        );
    }
}

#[test]
fn run_micro_is_deterministic_across_machines() {
    let mut a = Machine::build(MachineConfig::baseline(2));
    let mut b = Machine::build(MachineConfig::baseline(2));
    assert_eq!(run_micro(&mut a, 4), run_micro(&mut b, 4));
}

// ---- Migration end-to-end ---------------------------------------------------

#[test]
fn migrated_nested_vm_memory_is_bit_identical_under_io_load() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    // Working set with recognizable content.
    for i in 0..40u64 {
        let data: Vec<u8> = (0..256).map(|b| (b as u64 * i % 255) as u8).collect();
        m.world_mut()
            .guest_write_memory(0, Gpa::from_pfn(LEAF_BUF_BASE_PFN + i % 60), &data);
    }
    // Device DMA during migration rounds.
    let mut rounds = 3;
    let report = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |w| {
        if rounds > 0 {
            rounds -= 1;
            w.external_packet_arrival(0, Frame::patterned(900, rounds as u8));
        }
    })
    .unwrap();
    assert!(report.converged);
    assert!(report.verified, "destination must match source exactly");
}

#[test]
fn device_state_capture_reflects_traffic_and_round_trips() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    let s0 = migration_cap::capture_device_state(m.world_mut()).unwrap();
    m.net_tx(0, 3, 500);
    let s1 = migration_cap::capture_device_state(m.world_mut()).unwrap();
    assert_ne!(s0, s1, "traffic must change captured device state");
    assert!(migration_cap::state_matches(m.world_mut(), &s1));
}

// ---- Xen guest hypervisor ---------------------------------------------------

#[test]
fn xen_guest_hypervisor_is_slower_but_vp_still_works() {
    let apache = AppId::Apache.mix();
    let mut kvm = Machine::build(MachineConfig::baseline(2));
    let o_kvm = run_app(&mut kvm, &apache, 100).overhead;
    let mut xen = Machine::build(MachineConfig::baseline(2).with_xen_guest());
    let o_xen = run_app(&mut xen, &apache, 100).overhead;
    assert!(o_xen > o_kvm * 1.3, "xen {o_xen} vs kvm {o_kvm}");

    // Virtual-passthrough needs no guest hypervisor awareness, so it
    // helps Xen too (Fig. 10).
    let mut xen_vp = Machine::build(MachineConfig::dvh_vp(2).with_xen_guest());
    let o_vp = run_app(&mut xen_vp, &apache, 100).overhead;
    assert!(o_vp < o_xen * 0.75, "vp {o_vp} vs xen nested {o_xen}");
}

// ---- Multi-vCPU interactions -------------------------------------------------

#[test]
fn ipis_between_all_vcpu_pairs_work() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    let n = m.vcpus();
    for src in 0..n {
        for dst in 0..n {
            if src != dst {
                let c = m.send_ipi(src, dst);
                assert!(c.as_u64() > 0);
            }
        }
    }
    assert_eq!(m.world().stats.total_interventions(), 0);
}

#[test]
fn per_cpu_clocks_only_move_forward() {
    let mut m = Machine::build(MachineConfig::baseline(2));
    let mut last = vec![0u64; m.vcpus()];
    for i in 0..20 {
        m.hypercall(i % 2);
        m.send_ipi(i % 2, (i + 1) % 2);
        for (cpu, l) in last.iter_mut().enumerate() {
            let now = m.now(cpu).as_u64();
            assert!(now >= *l, "cpu{cpu} went backwards");
            *l = now;
        }
    }
}
