//! Determinism and certification tests for the fast-path exit engine
//! and the parallel sweep scheduler.
//!
//! The optimization contract has two halves: the parallel scheduler
//! may only change *when* cells run (outputs byte-identical to
//! serial), and the engine optimizations may only change *how fast*
//! the simulator runs (ledgers bit-identical to the pinned
//! pre-optimization fixture).

use dvh_bench::harness;

#[test]
fn parallel_fig7_csv_is_byte_identical_to_serial() {
    let serial = harness::figure_with_workers(7, 1).expect("figure 7 exists");
    let parallel = harness::figure_with_workers(7, 3).expect("figure 7 exists");
    assert_eq!(serial.to_csv(), parallel.to_csv());
}

#[test]
fn parallel_table3_matches_serial() {
    let serial = harness::table3_with_workers(1);
    let parallel = harness::table3_with_workers(4);
    assert_eq!(serial.len(), parallel.len());
    for (s, p) in serial.iter().zip(parallel.iter()) {
        assert_eq!(s.config, p.config);
        assert_eq!(
            (s.hypercall, s.dev_notify, s.program_timer, s.send_ipi),
            (p.hypercall, p.dev_notify, p.program_timer, p.send_ipi),
            "{}",
            s.config
        );
    }
}

#[test]
fn figure_csv_has_header_and_seven_app_rows() {
    let fig = harness::figure_with_workers(7, 2).expect("figure 7 exists");
    let csv = fig.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 8, "{csv}");
    assert!(lines[0].starts_with("app,VM,"), "{}", lines[0]);
}

#[test]
fn unknown_figure_is_none() {
    assert!(harness::figure_with_workers(11, 2).is_none());
}

#[test]
fn dense_engine_matches_pinned_pre_optimization_runstats() {
    // The checker's fixture pass replays the standard workload on
    // every Fig. 7 configuration and compares exits, interventions,
    // DVH intercepts, attributed cycles, and the simulated clock
    // against the ledger captured before the dense-VMCS engine
    // landed. Any drift means an optimization changed simulated
    // behavior.
    let violations = dvh_checker::harness::check_pinned_fixture();
    assert!(violations.is_empty(), "{violations:#?}");
}

#[test]
fn engine_bench_json_baseline_round_trip() {
    let r = dvh_bench::engine::EngineBenchResult {
        quick: false,
        workers: 2,
        micro_iters: 5000,
        micro_repeats: 7,
        total_exits: 7_345_000,
        micro_wall_s: 0.3,
        exit_rate: 24_483_333.0,
        sweep_figure: 7,
        sweep_serial_s: 0.4,
        sweep_parallel_s: 0.25,
        sweep_speedup: 1.6,
        sweep_deterministic: true,
        metrics_exit_rate: 22_000_000.0,
        metrics_conserved: true,
        p50_exit_cycles: 4096,
        p99_exit_cycles: 65_536,
    };
    let baseline = dvh_bench::engine::Baseline::parse(&r.to_json()).unwrap();
    assert!(dvh_bench::engine::check_regression(&r, &baseline, 0.25).is_ok());
}
