//! Each test here encodes one *claim the paper makes in prose*, so the
//! reproduction is checked against the text, not just the numbers.

use dvh_core::{Machine, MachineConfig};
use dvh_workloads::{run_app, AppId};

/// §1/abstract: "DVH can ... improve KVM performance by more than an
/// order of magnitude on real application workloads."
#[test]
fn claim_order_of_magnitude_application_gains() {
    // At three levels of virtualization, DVH improves at least one
    // application by >10x (Fig. 9: Memcached, Apache).
    let mix = AppId::Memcached.mix();
    let mut vanilla = Machine::build(MachineConfig::baseline(3));
    let slow = run_app(&mut vanilla, &mix, 150).overhead;
    let mut dvh = Machine::build(MachineConfig::dvh(3));
    let fast = run_app(&mut dvh, &mix, 150).overhead;
    assert!(slow / fast > 10.0, "{slow} / {fast}");
}

/// §1: "In many cases, DVH makes nested virtualization overhead
/// similar to that of non-nested virtualization even for multiple
/// levels of recursive virtualization."
#[test]
fn claim_nested_dvh_close_to_vm() {
    for app in [AppId::NetperfRr, AppId::Memcached, AppId::Hackbench] {
        let mix = app.mix();
        let mut vm = Machine::build(MachineConfig::baseline(1));
        let o_vm = run_app(&mut vm, &mix, 150).overhead;
        let mut l3 = Machine::build(MachineConfig::dvh(3));
        let o_l3 = run_app(&mut l3, &mix, 150).overhead;
        assert!(
            o_l3 <= o_vm * 1.25,
            "{}: L3+DVH {o_l3} vs VM {o_vm}",
            mix.name
        );
    }
}

/// §1: "DVH can provide better performance than device passthrough
/// while at the same time enabling migration of nested VMs."
#[test]
fn claim_beats_passthrough_with_migration() {
    let mix = AppId::Apache.mix();
    let mut pt = Machine::build(MachineConfig::passthrough(2));
    let o_pt = run_app(&mut pt, &mix, 150).overhead;
    let mut dvh = Machine::build(MachineConfig::dvh(2));
    let o_dvh = run_app(&mut dvh, &mix, 150).overhead;
    assert!(o_dvh < o_pt, "DVH {o_dvh} vs passthrough {o_pt}");
    // And migration works for DVH but not passthrough.
    let mut dvh = Machine::build(MachineConfig::dvh(2));
    assert!(dvh_migration::migrate_nested_vm(
        dvh.world_mut(),
        dvh_migration::MigrationConfig::default(),
        |_| {}
    )
    .is_ok());
    let mut pt = Machine::build(MachineConfig::passthrough(2));
    assert!(dvh_migration::migrate_nested_vm(
        pt.world_mut(),
        dvh_migration::MigrationConfig::default(),
        |_| {}
    )
    .is_err());
}

/// §3: "an exit to a guest hypervisor is more expensive than an exit
/// to the host hypervisor by at least a factor of two ... In practice
/// ... much more expensive than a factor of two."
#[test]
fn claim_guest_hypervisor_exits_cost_far_more() {
    let mut l1 = Machine::build(MachineConfig::baseline(1));
    let host_exit = l1.hypercall(0).as_u64();
    let mut l2 = Machine::build(MachineConfig::baseline(2));
    let guest_exit = l2.hypercall(0).as_u64();
    assert!(guest_exit >= 2 * host_exit, "factor-of-two lower bound");
    assert!(guest_exit >= 10 * host_exit, "in practice much more");
}

/// §4 Table 3 discussion: "DVH does not improve nested VM performance
/// for Hypercall as it always requires exiting to the guest
/// hypervisor."
#[test]
fn claim_hypercalls_unaffected() {
    let mut vanilla = Machine::build(MachineConfig::baseline(2));
    let mut dvh = Machine::build(MachineConfig::dvh(2));
    let a = vanilla.hypercall(0).as_u64();
    let b = dvh.hypercall(0).as_u64();
    assert!(b >= a, "DVH {b} must not beat vanilla {a} on hypercalls");
    assert!(dvh.world().stats.total_interventions() > 0);
}

/// §4: "[DVH-DevNotify at L2] incurs noticeably more overhead running
/// a nested VM than running a VM ... a result of the host hypervisor
/// needing to walk the extended page table (EPT)."
#[test]
fn claim_dvh_devnotify_pays_the_ept_walk() {
    let mut l1 = Machine::build(MachineConfig::baseline(1));
    let base = l1.device_notify(0).as_u64();
    let mut dvh = Machine::build(MachineConfig::dvh(2));
    let nested = dvh.device_notify(0).as_u64();
    assert!(nested > 2 * base, "EPT walk must show: {nested} vs {base}");
    assert!(
        nested < 4 * base,
        "but stay the same order: {nested} vs {base}"
    );
}

/// §4: "Since Hackbench does not use I/O, it shows no performance
/// difference between different I/O models."
#[test]
fn claim_hackbench_io_model_independent() {
    let mix = AppId::Hackbench.mix();
    let mut results = Vec::new();
    for cfg in [
        MachineConfig::baseline(2),
        MachineConfig::passthrough(2),
        MachineConfig::dvh_vp(2),
    ] {
        let mut m = Machine::build(cfg);
        results.push(run_app(&mut m, &mix, 150).overhead);
    }
    assert!((results[0] - results[1]).abs() < 1e-9);
    assert!((results[0] - results[2]).abs() < 1e-9);
}

/// §4: virtual idle "only runs the nested VM when it has jobs to run",
/// unlike disabling HLT exits or polling which "simply consume and
/// waste physical CPU cycles".
#[test]
fn claim_virtual_idle_saves_cycles() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    m.world_mut().guest_hlt(0);
    let halted_at = m.now(0);
    let wake_at = halted_at + dvh_core::Cycles::new(5_000_000);
    m.world_mut()
        .deliver_leaf_interrupt(0, 0x33, wake_at, dvh_hypervisor::IrqPath::PostedDirect);
    // The 5M-cycle wait was spent halted, not burned.
    assert!(m.world().stats.idle_cycles.as_u64() >= 5_000_000);
}

/// §4: paravirtual I/O at L3 is "practically unusable, showing more
/// than two orders of magnitude overhead for multiple workloads such
/// as Memcached and Apache".
#[test]
fn claim_l3_paravirtual_two_orders_of_magnitude() {
    let mut over_100 = 0;
    for app in [AppId::Memcached, AppId::Apache] {
        let mut m = Machine::build(MachineConfig::baseline(3));
        let o = run_app(&mut m, &app.mix(), 100).overhead;
        if o > 60.0 {
            over_100 += 1;
        }
    }
    assert!(
        over_100 >= 2,
        "both Memcached and Apache must collapse at L3"
    );
}

/// §3.5: recursive DVH works at depths beyond what real KVM supports
/// (L3 max), with flat cost.
#[test]
fn claim_recursive_dvh_flat_beyond_kvm_limits() {
    let mut l2 = Machine::build(MachineConfig::dvh(2));
    let base = l2.program_timer(0).as_u64();
    for levels in 4..=5 {
        let mut m = Machine::build(MachineConfig::dvh(levels));
        let c = m.program_timer(0).as_u64();
        assert!(c.abs_diff(base) * 10 <= base, "L{levels}: {c} vs {base}");
    }
}
