//! Integration tests for the causality layer: causal trees rebuilt
//! from the trace must conserve the engine's attribution ledger bit
//! for bit, and the exit-multiplication factor they expose must be
//! *emergent* — it falls out of the recursive reflection in
//! `exits.rs`, is never hard-coded, and lands in the range the
//! paper's Table 3 measured on real hardware.

use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::trace_export::causal_forest;
use dvh_obs::causal::Forest;
use dvh_obs::diff::{diff, snapshot_value, DiffConfig};
use dvh_workloads::{run_app, AppId};

const TXNS: u32 = 25;

/// Runs `work` on a fresh machine with observability armed and
/// returns the rebuilt causal forest plus the machine itself.
fn observed(config: MachineConfig, work: impl FnOnce(&mut Machine)) -> (Forest, Machine) {
    let mut m = Machine::build(config);
    {
        let w = m.world_mut();
        w.enable_observability(1 << 20);
        w.reset_stats();
    }
    work(&mut m);
    let w = m.world_mut();
    let events = w.take_trace();
    assert_eq!(w.trace_dropped(), 0, "harness capacity must not truncate");
    let forest = causal_forest(&events, w.num_cpus());
    (forest, m)
}

#[test]
fn causal_roots_conserve_the_ledger_bit_for_bit() {
    let (forest, mut m) = observed(MachineConfig::baseline(2), |m| {
        run_app(m, &AppId::NetperfRr.mix(), TXNS);
    });
    let w = m.world_mut();
    assert_eq!(forest.incomplete, 0, "every exit must close");
    assert_eq!(forest.total_exits(), w.stats.total_exits());

    // Root spans, taken verbatim from `Completed`, reproduce the
    // engine's cycles_by_reason ledger exactly — both directions.
    let roots = forest.root_cycle_totals();
    let ledger = &w.stats.cycles_by_reason;
    assert!(!ledger.is_empty());
    assert_eq!(roots.len(), ledger.len());
    for ((level, reason), cycles) in ledger {
        assert_eq!(
            roots.get(&(*level, *reason)).copied(),
            Some(cycles.as_u64()),
            "(L{level}, {reason})"
        );
    }
}

#[test]
fn folded_output_conserves_the_ledger_total() {
    let (forest, mut m) = observed(MachineConfig::baseline(2), |m| {
        run_app(m, &AppId::NetperfRr.mix(), TXNS);
    });
    let folded = forest.folded();
    assert!(!folded.is_empty());
    let mut folded_total = 0u64;
    for line in folded.lines() {
        let (path, cycles) = line.rsplit_once(' ').expect("`path cycles` shape");
        assert!(path.starts_with('L'), "{line}");
        folded_total += cycles.parse::<u64>().expect("cycle count parses");
    }
    let ledger_total: u64 = m
        .world_mut()
        .stats
        .cycles_by_reason
        .values()
        .map(|c| c.as_u64())
        .sum();
    assert_eq!(folded_total, ledger_total, "no cycle invented or lost");
}

#[test]
fn exit_multiplication_is_emergent_and_matches_table3() {
    // The paper's Table 3: a hypercall costs 1,575 cycles in a VM and
    // 37,733 in a nested VM — a 23.96x multiplication born entirely
    // from L0 trapping each L1 handler instruction. Rebuild both
    // numbers from causal trees and check the ratio lands in range.
    let (l1, _) = observed(MachineConfig::baseline(1), |m| {
        m.hypercall(0);
    });
    let (l2, _) = observed(MachineConfig::baseline(2), |m| {
        m.hypercall(0);
    });
    let cycles = |f: &Forest| -> u64 { f.root_cycle_totals().values().sum() };
    let ratio = cycles(&l2) as f64 / cycles(&l1) as f64;
    let paper = 37_733.0 / 1_575.0; // 23.96x
    assert!(
        (18.0..=32.0).contains(&ratio),
        "L2/L1 hypercall cycle ratio {ratio:.2} outside Table 3 range (paper: {paper:.2})"
    );

    // The per-tree trap fan-out agrees: one L2 root decomposes into
    // dozens of L1 operations, each an L0 round trip.
    let factors = l2.multiplication_factors();
    let f2 = factors
        .iter()
        .find(|f| f.root_level == 2)
        .expect("L2 roots present");
    assert!(
        f2.factor > 10.0,
        "one L2 exit must fan into many traps, got {:.2}",
        f2.factor
    );
    assert!(f2.per_level.contains_key(&1), "L1 handler traps recorded");
}

#[test]
fn netperf_forest_multiplication_stays_in_range() {
    let (forest, _) = observed(MachineConfig::baseline(2), |m| {
        run_app(m, &AppId::NetperfRr.mix(), TXNS);
    });
    let factors = forest.multiplication_factors();
    let f2 = factors
        .iter()
        .find(|f| f.root_level == 2)
        .expect("L2 roots present");
    assert!(
        f2.factor > 5.0 && f2.factor < 100.0,
        "netperf multiplication {:.2} implausible",
        f2.factor
    );
}

#[test]
fn diff_is_zero_on_self_and_flags_a_real_regression() {
    // Self-diff: a snapshot compared with itself reports nothing.
    let snap = |config: MachineConfig, label: &str| {
        let (_, mut m) = observed(config, |m| {
            run_app(m, &AppId::NetperfRr.mix(), TXNS);
        });
        let w = m.world_mut();
        w.export_device_metrics();
        let reg = w.take_metrics().expect("metrics enabled");
        snapshot_value(&reg, label)
    };
    let dvh = snap(MachineConfig::dvh(2), "netperf-rr@L2/dvh");
    let report = diff(&dvh, &dvh, DiffConfig::default()).unwrap();
    assert!(report.regressions().is_empty(), "{}", report.to_text());

    // Real regression: the baseline(2) configuration reflects every
    // L1 trap through L0, so against a DVH baseline its exit rate
    // collapses — far beyond the 30% synthetic-regression bar.
    let base = snap(MachineConfig::baseline(2), "netperf-rr@L2/base");
    let report = diff(&dvh, &base, DiffConfig { threshold: 0.30 }).unwrap();
    let flagged: Vec<&str> = report
        .regressions()
        .iter()
        .map(|e| e.metric.as_str())
        .collect();
    assert!(
        !flagged.is_empty(),
        "baseline-vs-DVH must regress somewhere:\n{}",
        report.to_text()
    );
}
