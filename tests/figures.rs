//! Tests that encode the paper's *design figures* as event-sequence
//! assertions, using the tracer: Fig. 1 (exit multiplication vs DVH),
//! Fig. 4 (nested IPI delivery) and Fig. 5 (nested IPI delivery with
//! virtual IPIs).

use dvh_arch::vmx::ExitReason;
use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::TraceEvent;

fn trace_of(mut m: Machine, op: impl FnOnce(&mut Machine)) -> Vec<TraceEvent> {
    m.world_mut().enable_tracing(1 << 16);
    op(&mut m);
    m.world_mut().take_trace()
}

/// Fig. 1a: an L2 hardware access without DVH — the access traps, the
/// exit is forwarded to L1 with multiple traps to L0, L1 emulates,
/// and switching back costs more traps.
#[test]
fn figure_1a_hardware_access_without_dvh() {
    let events = trace_of(Machine::build(MachineConfig::baseline(2)), |m| {
        m.program_timer(0);
    });
    // Step 1: the nested VM's access exits (lands at L0 first).
    assert!(matches!(
        events[0],
        TraceEvent::Exit {
            from_level: 2,
            reason: ExitReason::MsrWrite,
            ..
        }
    ));
    // Steps 2–4: the exit is delivered to the L1 hypervisor, and the
    // switch to and from L1 causes multiple further traps to L0.
    let interventions: Vec<_> = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Intervention { hv_level: 1, .. }))
        .collect();
    assert_eq!(interventions.len(), 1, "the timer exit is L1's to handle");
    let l1_traps = events
        .iter()
        .filter(|e| matches!(e, TraceEvent::Exit { from_level: 1, .. }))
        .count();
    assert!(
        l1_traps >= 5,
        "switching to/from L1 must itself trap repeatedly (got {l1_traps})"
    );
}

/// Fig. 1b: the same access with DVH — L0 emulates the hardware for
/// L2 directly and returns; no guest-hypervisor involvement at all.
#[test]
fn figure_1b_hardware_access_with_dvh() {
    let events = trace_of(Machine::build(MachineConfig::dvh(2)), |m| {
        m.program_timer(0);
    });
    assert!(matches!(
        events[0],
        TraceEvent::Exit {
            from_level: 2,
            reason: ExitReason::MsrWrite,
            ..
        }
    ));
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::DvhIntercept {
            mechanism: "vtimer",
            ..
        }
    )));
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, TraceEvent::Intervention { .. })),
        "Fig. 1b removes steps 2 and 4: no guest hypervisor switch"
    );
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Exit { .. }))
            .count(),
        1,
        "one exit total: access -> L0 -> return"
    );
}

/// Fig. 4: sending an IPI between nested VM vCPUs without virtual
/// IPIs. The ICR write traps (1), L0 enters L1 for ICR emulation (2),
/// L1 updates the PI descriptor (3) and asks the hardware to post —
/// which traps again (4), L0 sends the posted interrupt (5), and the
/// destination receives it without any exit on its side (6–7).
#[test]
fn figure_4_nested_ipi_without_virtual_ipis() {
    let events = trace_of(Machine::build(MachineConfig::baseline(2)), |m| {
        m.world_mut().guest_send_ipi(0, 1, 0x41);
    });
    // Step 1: ICR write exit from L2 on cpu0.
    assert!(matches!(
        events[0],
        TraceEvent::Exit {
            from_level: 2,
            cpu: 0,
            reason: ExitReason::MsrWrite,
            ..
        }
    ));
    // Step 2: L1 is entered to emulate the ICR.
    let pos_intervention = events
        .iter()
        .position(|e| matches!(e, TraceEvent::Intervention { hv_level: 1, .. }))
        .expect("L1 must be involved");
    // Steps 3–5: while emulating, L1's own posted-interrupt request is
    // ANOTHER MsrWrite trap from level 1 (the ICR write by L1).
    let l1_icr_trap = events[pos_intervention..]
        .iter()
        .position(|e| {
            matches!(
                e,
                TraceEvent::Exit {
                    from_level: 1,
                    reason: ExitReason::MsrWrite,
                    ..
                }
            )
        })
        .expect("L1's own ICR write must trap (Fig. 4 steps 4-5)");
    // Steps 6–7: the destination receives the interrupt on cpu1 with
    // no exit on the receiving side.
    let delivery = events
        .iter()
        .position(|e| matches!(e, TraceEvent::IrqDelivered { cpu: 1, .. }))
        .expect("destination must receive the IPI");
    assert!(delivery > pos_intervention + l1_icr_trap);
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, TraceEvent::Exit { cpu: 1, .. })),
        "no hypervisor intervention is necessary on the receiving side"
    );
}

/// Fig. 5: the same IPI with virtual IPIs — the trap is handled by L0
/// directly via the VCIMT; the L1 hypervisor is not involved; the
/// receiving side is unchanged.
#[test]
fn figure_5_nested_ipi_with_virtual_ipis() {
    let events = trace_of(Machine::build(MachineConfig::dvh(2)), |m| {
        m.world_mut().guest_send_ipi(0, 1, 0x41);
    });
    assert!(matches!(
        events[0],
        TraceEvent::Exit {
            from_level: 2,
            cpu: 0,
            reason: ExitReason::MsrWrite,
            ..
        }
    ));
    assert!(events.iter().any(|e| matches!(
        e,
        TraceEvent::DvhIntercept {
            mechanism: "vipi",
            ..
        }
    )));
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, TraceEvent::Intervention { .. })),
        "the L1 hypervisor is not involved (Fig. 5)"
    );
    // Exactly one exit in the whole sequence: the sender's ICR write.
    assert_eq!(
        events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Exit { .. }))
            .count(),
        1
    );
    assert!(events
        .iter()
        .any(|e| matches!(e, TraceEvent::IrqDelivered { cpu: 1, .. })));
}

/// Every figure scenario above, re-run under the dvh-checker: the
/// VM-entry checker and trace linter certify the exact traces the
/// figure tests assert on (zero invariant violations).
#[test]
fn figure_traces_are_certified() {
    use dvh_checker::trace_lint::{lint_trace, TraceContext};
    use dvh_checker::vmentry::check_world;

    type Scenario = (&'static str, MachineConfig, fn(&mut Machine));
    let scenarios: Vec<Scenario> = vec![
        ("fig1a", MachineConfig::baseline(2), |m| {
            m.program_timer(0);
        }),
        ("fig1b", MachineConfig::dvh(2), |m| {
            m.program_timer(0);
        }),
        ("fig4", MachineConfig::baseline(2), |m| {
            m.world_mut().guest_send_ipi(0, 1, 0x41);
        }),
        ("fig5", MachineConfig::dvh(2), |m| {
            m.world_mut().guest_send_ipi(0, 1, 0x41);
        }),
        ("fig6", MachineConfig::dvh_vp(4), |m| {
            m.net_rx(0, 1500);
        }),
    ];
    for (name, config, op) in scenarios {
        let mut m = Machine::build(config);
        {
            let w = m.world_mut();
            w.enable_tracing(1 << 16);
            w.enable_vmentry_checks();
            w.reset_stats();
        }
        op(&mut m);
        let mut violations = check_world(m.world_mut());
        let w = m.world();
        violations.extend(lint_trace(w.trace_events(), &TraceContext::for_world(w)));
        assert!(violations.is_empty(), "{name}: {violations:#?}");
    }
}

/// Fig. 6: recursive virtual-passthrough — "only the virtual IOMMU
/// provided by the host hypervisor is used when the virtual I/O
/// device accesses Ln memory": a 4-level DMA resolves in ONE combined
/// lookup, not one per stage.
#[test]
fn figure_6_single_combined_lookup() {
    let m = Machine::build(MachineConfig::dvh_vp(4));
    let shadow = m.world().shadow_io.as_ref().unwrap();
    let leaf = dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
    let t = {
        let mut s = shadow.clone();
        s.translate(leaf, dvh_memory::Perms::RW).unwrap()
    };
    // One 4-level radix walk, not 4 stage walks of 4 levels each.
    assert_eq!(t.walk_refs, 4);
    assert_eq!(t.pfn, m.world().leaf_host_pfn(leaf));
}
