//! Property-based tests over the simulator's core invariants.
//!
//! The workspace builds offline, so instead of an external
//! property-testing framework these tests drive each property with a
//! small deterministic PRNG ([`prng::Prng`]): every test explores a
//! fixed, reproducible set of random cases and reports the seed of a
//! failing case in its panic message.

use dvh_arch::apic::IcrValue;
use dvh_core::{Machine, MachineConfig};
use dvh_devices::vhost::{dma_read, dma_write};
use dvh_memory::iommu_pt::{IoTable, ShadowIoTable};
use dvh_memory::sparse::SparseMemory;
use dvh_memory::{DirtyBitmap, Gpa, PageTable, Perms};

mod prng {
    /// A tiny deterministic PRNG (splitmix64) — good enough statistical
    /// quality for test-case generation, no dependencies, and fully
    /// reproducible from the seed.
    pub struct Prng(u64);

    impl Prng {
        pub fn new(seed: u64) -> Prng {
            Prng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[lo, hi)`.
        pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
            assert!(lo < hi);
            lo + self.next_u64() % (hi - lo)
        }

        pub fn usize_range(&mut self, lo: usize, hi: usize) -> usize {
            self.range(lo as u64, hi as u64) as usize
        }

        /// A vec of `range(lo, hi)` values with random length in
        /// `[min_len, max_len)`.
        pub fn vec(&mut self, lo: u64, hi: u64, min_len: usize, max_len: usize) -> Vec<u64> {
            let n = self.usize_range(min_len, max_len);
            (0..n).map(|_| self.range(lo, hi)).collect()
        }
    }

    /// Runs `body` for `cases` seeded cases, labelling failures.
    pub fn check(cases: u64, body: impl Fn(&mut Prng)) {
        for seed in 0..cases {
            let mut rng = Prng::new(seed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng);
            }));
            if let Err(e) = result {
                eprintln!("property failed for seed {seed}");
                std::panic::resume_unwind(e);
            }
        }
    }
}

use prng::check;

/// ICR encode/decode round-trips for every vector and destination.
#[test]
fn icr_round_trip() {
    check(64, |rng| {
        let vector = rng.range(0, 256) as u8;
        let dest = rng.range(0, 4096) as u32;
        let icr = IcrValue::fixed(vector, dest);
        assert_eq!(IcrValue::decode(icr.encode()), icr);
    });
}

/// A shadow I/O table lookup equals walking each stage in turn, for
/// arbitrary two-stage mappings.
#[test]
fn shadow_equals_sequential_translation() {
    check(64, |rng| {
        let n = rng.usize_range(1, 40);
        let maps: Vec<(u64, u64, u64)> = (0..n)
            .map(|_| (rng.range(0, 512), rng.range(0, 512), rng.range(0, 512)))
            .collect();
        let mut inner = IoTable::new();
        let mut outer = IoTable::new();
        for (iova, mid, out) in &maps {
            inner.map(*iova, 0x10_000 + *mid, 1, Perms::RW);
            outer.map(0x10_000 + *mid, 0x20_000 + *out, 1, Perms::RW);
        }
        let shadow = ShadowIoTable::build(&[&inner, &outer]);
        for (iova, _, _) in &maps {
            let step1 = inner.table().lookup(*iova).unwrap().pfn;
            let step2 = outer.table().lookup(step1).unwrap().pfn;
            assert_eq!(shadow.lookup(*iova).unwrap().0, step2);
        }
    });
}

/// Page-table translate agrees with lookup, and never invents
/// mappings.
#[test]
fn pagetable_translate_matches_lookup() {
    check(64, |rng| {
        let maps: Vec<(u64, u64)> = (0..rng.usize_range(0, 50))
            .map(|_| (rng.range(0, 10_000), rng.range(0, 10_000)))
            .collect();
        let probes = rng.vec(0, 10_000, 0, 50);
        let mut pt = PageTable::new();
        for (from, to) in &maps {
            pt.map(*from, *to, Perms::RW);
        }
        for p in probes {
            match (pt.lookup(p), pt.translate(p, Perms::RO)) {
                (Some(e), Ok(t)) => assert_eq!(e.pfn, t.pfn),
                (None, Err(_)) => {}
                (l, t) => panic!("disagree: {:?} vs {:?}", l, t),
            }
        }
    });
}

/// Every DMA write is dirty-logged: after arbitrary writes through an
/// IOMMU table, every touched page is in the log.
#[test]
fn dma_dirty_log_is_complete() {
    check(64, |rng| {
        let writes: Vec<(u64, usize)> = (0..rng.usize_range(1, 20))
            .map(|_| (rng.range(0, 32), rng.usize_range(1, 5000)))
            .collect();
        let mut xl = IoTable::new();
        xl.map(0, 0x500, 40, Perms::RW);
        let mut mem = SparseMemory::new();
        let mut dirty = DirtyBitmap::new();
        for (page, len) in &writes {
            let addr = Gpa::from_pfn(*page);
            let data = vec![0xAA; *len];
            dma_write(&mut mem, &mut xl, addr, &data, Some(&mut dirty)).unwrap();
            // Every host page the write touched must be logged.
            let pages_touched = (*len as u64).div_ceil(4096) + 1;
            for k in 0..pages_touched {
                if *page + k < 40 && k * 4096 < *len as u64 {
                    assert!(dirty.is_dirty(0x500 + *page + k));
                }
            }
        }
    });
}

/// DMA read returns exactly what DMA write stored, at any offset and
/// length within the mapped window.
#[test]
fn dma_write_read_round_trip() {
    check(64, |rng| {
        let offset = rng.range(0, 8 * 4096 - 1);
        let len = rng.usize_range(1, 8192);
        let len = len
            .min((16 * 4096 - offset as usize).saturating_sub(1))
            .max(1);
        let mut xl = IoTable::new();
        xl.map(0, 0x900, 32, Perms::RW);
        let mut mem = SparseMemory::new();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        dma_write(&mut mem, &mut xl, Gpa::new(offset), &data, None).unwrap();
        let back = dma_read(&mem, &mut xl, Gpa::new(offset), len).unwrap();
        assert_eq!(back, data);
    });
}

/// Dirty bitmap harvest returns each page exactly once, sorted.
#[test]
fn dirty_harvest_unique_and_sorted() {
    check(64, |rng| {
        let pfns = rng.vec(0, 1000, 0, 200);
        let mut b = DirtyBitmap::new();
        for p in &pfns {
            b.mark_pfn(*p);
        }
        let harvested = b.harvest();
        let mut expect: Vec<u64> = pfns;
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(harvested, expect);
        assert!(b.is_clean());
    });
}

// Machine-level properties are slower; fewer cases.

/// Nested cost strictly dominates non-nested cost for every
/// microbenchmark-like operation, at any depth up to 3.
#[test]
fn cost_is_monotonic_in_depth() {
    for op in 0usize..3 {
        let mut prev = 0u64;
        for levels in 1..=3usize {
            let mut m = Machine::build(MachineConfig::baseline(levels));
            let c = match op {
                0 => m.hypercall(0),
                1 => m.program_timer(0),
                _ => m.send_ipi(0, 1),
            }
            .as_u64();
            assert!(c > prev, "levels={levels} op={op}: {c} <= {prev}");
            prev = c;
        }
    }
}

/// DVH never performs worse than vanilla nested virtualization for the
/// operations it accelerates, at any supported depth.
#[test]
fn dvh_never_slower_for_accelerated_ops() {
    for levels in 2usize..4 {
        let mut vanilla = Machine::build(MachineConfig::baseline(levels));
        let mut dvh = Machine::build(MachineConfig::dvh(levels));
        assert!(dvh.program_timer(0) < vanilla.program_timer(0));
        assert!(dvh.send_ipi(0, 1) < vanilla.send_ipi(0, 1));
        assert!(dvh.device_notify(0) < vanilla.device_notify(0));
        assert!(dvh.idle_round(0) < vanilla.idle_round(0));
    }
}

/// The simulator is deterministic: identical configurations produce
/// identical cycle counts for identical operation sequences.
#[test]
fn determinism() {
    check(12, |rng| {
        let seq = rng.vec(0, 4, 1, 12);
        let run = |seq: &[u64]| {
            let mut m = Machine::build(MachineConfig::dvh(2));
            for &op in seq {
                match op {
                    0 => {
                        m.hypercall(0);
                    }
                    1 => {
                        m.program_timer(0);
                    }
                    2 => {
                        m.send_ipi(0, 1);
                    }
                    _ => {
                        m.net_tx(0, 1, 700);
                    }
                }
            }
            (m.now(0), m.now(1), m.world().stats.total_exits())
        };
        assert_eq!(run(&seq), run(&seq));
    });
}

/// Any random operation sequence, on any configuration, at any depth,
/// leaves the exit engine certified: the VM-entry checker and trace
/// linter find zero violations.
#[test]
fn random_workloads_are_certified() {
    use dvh_checker::trace_lint::{lint_trace, TraceContext};
    use dvh_checker::vmentry::check_world;

    check(12, |rng| {
        let levels = rng.usize_range(1, 4);
        let config = match rng.range(0, 3) {
            0 => MachineConfig::baseline(levels),
            1 => MachineConfig::dvh_vp(levels),
            _ => MachineConfig::dvh(levels),
        };
        let seq = rng.vec(0, 6, 1, 16);
        let mut m = Machine::build(config);
        {
            let w = m.world_mut();
            w.enable_tracing(1 << 20);
            w.enable_vmentry_checks();
            w.reset_stats();
        }
        for &op in &seq {
            match op {
                0 => {
                    m.hypercall(0);
                }
                1 => {
                    m.program_timer(0);
                }
                2 => {
                    m.send_ipi(0, 1);
                }
                3 => {
                    m.net_tx(0, 1, 700);
                }
                4 => {
                    m.device_notify(0);
                }
                _ => {
                    m.idle_round(0);
                }
            }
        }
        let mut violations = check_world(m.world_mut());
        let w = m.world();
        violations.extend(lint_trace(w.trace_events(), &TraceContext::for_world(w)));
        assert!(violations.is_empty(), "{violations:#?}");
    });
}

/// The VCIMT really routes: whatever permutation the guest hypervisor
/// programs, IPIs land on the mapped physical CPU.
#[test]
fn vcimt_routes_to_programmed_destination() {
    use dvh_arch::costs::CostModel;
    use dvh_arch::vmx::ctrl;
    use dvh_core::capability::enable_everywhere;
    use dvh_core::vipi::VirtualIpis;
    use dvh_hypervisor::{World, WorldConfig};

    for dest in 1usize..4 {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_IPI);
        let mut ext = VirtualIpis::new(0);
        ext.vcimt.set(1, dest as u32); // nested vCPU 1 -> PI desc `dest`
        w.register_extension(Box::new(ext));
        let before = w.now(dest);
        w.guest_send_ipi(0, 1, 0x77);
        assert!(w.now(dest) > before);
    }
}

/// LAPIC conservation: every accepted vector is eventually dispatched
/// exactly once and EOI'd exactly once, in strict priority order
/// within each drain.
#[test]
fn lapic_accept_dispatch_eoi_conservation() {
    check(64, |rng| {
        use dvh_arch::apic::LapicState;
        let vectors: Vec<u8> = rng.vec(16, 256, 1, 40).iter().map(|v| *v as u8).collect();
        let mut l = LapicState::new();
        let mut unique: Vec<u8> = vectors.clone();
        unique.sort_unstable();
        unique.dedup();
        for v in &vectors {
            l.accept(*v);
        }
        let mut seen = Vec::new();
        while let Some(v) = l.dispatch() {
            l.eoi();
            seen.push(v);
        }
        // Highest priority first, each unique vector exactly once.
        let mut expect = unique;
        expect.reverse();
        assert_eq!(seen, expect);
        assert!(!l.has_pending());
        assert!(!l.in_service());
    });
}

/// SGI encode/decode round-trips for all valid INTIDs/targets.
#[test]
fn sgi_round_trip() {
    use dvh_arch::arm::SgiValue;
    for intid in 0u8..=15 {
        for target in 0u32..64 {
            let sgi = SgiValue::new(intid, target);
            assert_eq!(SgiValue::decode(sgi.encode()), sgi);
        }
    }
}

/// Interrupt conservation across pause/resume: no vector delivered
/// while paused is ever lost, regardless of how many arrive.
#[test]
fn pause_resume_conserves_interrupts() {
    check(10, |rng| {
        use dvh_hypervisor::IrqPath;
        let vectors: Vec<u8> = rng.vec(32, 201, 1, 12).iter().map(|v| *v as u8).collect();
        let mut m = Machine::build(MachineConfig::dvh(2));
        let base = m.world().lapic[0].accepted_count();
        m.world_mut().pause_vcpu(0);
        let mut unique = vectors.clone();
        unique.sort_unstable();
        unique.dedup();
        for v in &vectors {
            let t = m.now(1);
            m.world_mut()
                .deliver_leaf_interrupt(0, *v, t, IrqPath::PostedDirect);
        }
        assert_eq!(m.world().lapic[0].accepted_count(), base);
        m.world_mut().resume_vcpu(0);
        assert_eq!(
            m.world().lapic[0].accepted_count(),
            base + unique.len() as u64
        );
        assert_eq!(m.world().lapic[0].eoi_count(), base + unique.len() as u64);
    });
}

/// EPT population is complete and canonical for arbitrary pages at any
/// depth.
#[test]
fn ept_population_matches_canonical_layout() {
    check(10, |rng| {
        let levels = rng.usize_range(1, 4);
        let pages = rng.vec(0, 5_000, 1, 10);
        let mut m = Machine::build(MachineConfig::baseline(levels));
        for p in &pages {
            m.world_mut().guest_touch_page(0, *p);
        }
        for p in &pages {
            assert!(m.world().leaf_page_mapped(*p));
            assert_eq!(
                m.world_mut().walk_leaf_to_host(*p),
                Some(*p + levels as u64 * dvh_hypervisor::world::STAGE_PFN_OFFSET)
            );
        }
    });
}
