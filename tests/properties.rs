//! Property-based tests over the simulator's core invariants.

use dvh_arch::apic::IcrValue;
use dvh_core::{Machine, MachineConfig};
use dvh_devices::vhost::{dma_read, dma_write};
use dvh_memory::iommu_pt::{IoTable, ShadowIoTable};
use dvh_memory::sparse::SparseMemory;
use dvh_memory::{DirtyBitmap, Gpa, PageTable, Perms};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// ICR encode/decode round-trips for every vector and destination.
    #[test]
    fn icr_round_trip(vector in any::<u8>(), dest in 0u32..4096) {
        let icr = IcrValue::fixed(vector, dest);
        prop_assert_eq!(IcrValue::decode(icr.encode()), icr);
    }

    /// A shadow I/O table lookup equals walking each stage in turn,
    /// for arbitrary two-stage mappings.
    #[test]
    fn shadow_equals_sequential_translation(
        maps in prop::collection::vec((0u64..512, 0u64..512, 0u64..512), 1..40)
    ) {
        let mut inner = IoTable::new();
        let mut outer = IoTable::new();
        for (iova, mid, out) in &maps {
            inner.map(*iova, 0x10_000 + *mid, 1, Perms::RW);
            outer.map(0x10_000 + *mid, 0x20_000 + *out, 1, Perms::RW);
        }
        let shadow = ShadowIoTable::build(&[&inner, &outer]);
        for (iova, _, _) in &maps {
            let step1 = inner.table().lookup(*iova).unwrap().pfn;
            let step2 = outer.table().lookup(step1).unwrap().pfn;
            prop_assert_eq!(shadow.lookup(*iova).unwrap().0, step2);
        }
    }

    /// Page-table translate agrees with lookup, and never invents
    /// mappings.
    #[test]
    fn pagetable_translate_matches_lookup(
        maps in prop::collection::vec((0u64..10_000, 0u64..10_000), 0..50),
        probes in prop::collection::vec(0u64..10_000, 0..50),
    ) {
        let mut pt = PageTable::new();
        for (from, to) in &maps {
            pt.map(*from, *to, Perms::RW);
        }
        for p in probes {
            match (pt.lookup(p), pt.translate(p, Perms::RO)) {
                (Some(e), Ok(t)) => prop_assert_eq!(e.pfn, t.pfn),
                (None, Err(_)) => {}
                (l, t) => prop_assert!(false, "disagree: {:?} vs {:?}", l, t),
            }
        }
    }

    /// Every DMA write is dirty-logged: after arbitrary writes through
    /// an IOMMU table, every touched page is in the log.
    #[test]
    fn dma_dirty_log_is_complete(
        writes in prop::collection::vec((0u64..32, 1usize..5000), 1..20)
    ) {
        let mut xl = IoTable::new();
        xl.map(0, 0x500, 40, Perms::RW);
        let mut mem = SparseMemory::new();
        let mut dirty = DirtyBitmap::new();
        for (page, len) in &writes {
            let addr = Gpa::from_pfn(*page);
            let data = vec![0xAA; *len];
            dma_write(&mut mem, &mut xl, addr, &data, Some(&mut dirty)).unwrap();
            // Every host page the write touched must be logged.
            let pages_touched = (*len as u64).div_ceil(4096) + 1;
            for k in 0..pages_touched {
                if *page + k < 40 && k * 4096 < *len as u64 {
                    prop_assert!(dirty.is_dirty(0x500 + *page + k));
                }
            }
        }
    }

    /// DMA read returns exactly what DMA write stored, at any offset
    /// and length within the mapped window.
    #[test]
    fn dma_write_read_round_trip(
        offset in 0u64..(8 * 4096 - 1),
        len in 1usize..8192,
    ) {
        let len = len.min((16 * 4096 - offset as usize).saturating_sub(1)).max(1);
        let mut xl = IoTable::new();
        xl.map(0, 0x900, 32, Perms::RW);
        let mut mem = SparseMemory::new();
        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        dma_write(&mut mem, &mut xl, Gpa::new(offset), &data, None).unwrap();
        let back = dma_read(&mem, &mut xl, Gpa::new(offset), len).unwrap();
        prop_assert_eq!(back, data);
    }

    /// Dirty bitmap harvest returns each page exactly once, sorted.
    #[test]
    fn dirty_harvest_unique_and_sorted(pfns in prop::collection::vec(0u64..1000, 0..200)) {
        let mut b = DirtyBitmap::new();
        for p in &pfns {
            b.mark_pfn(*p);
        }
        let harvested = b.harvest();
        let mut expect: Vec<u64> = pfns;
        expect.sort_unstable();
        expect.dedup();
        prop_assert_eq!(harvested, expect);
        prop_assert!(b.is_clean());
    }
}

proptest! {
    // Machine-level properties are slower; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Nested cost strictly dominates non-nested cost for every
    /// microbenchmark-like operation, at any depth up to 3.
    #[test]
    fn cost_is_monotonic_in_depth(op in 0usize..3) {
        let mut prev = 0u64;
        for levels in 1..=3usize {
            let mut m = Machine::build(MachineConfig::baseline(levels));
            let c = match op {
                0 => m.hypercall(0),
                1 => m.program_timer(0),
                _ => m.send_ipi(0, 1),
            }
            .as_u64();
            prop_assert!(c > prev, "levels={levels} op={op}: {c} <= {prev}");
            prev = c;
        }
    }

    /// DVH never performs worse than vanilla nested virtualization for
    /// the operations it accelerates, at any supported depth.
    #[test]
    fn dvh_never_slower_for_accelerated_ops(levels in 2usize..4) {
        let mut vanilla = Machine::build(MachineConfig::baseline(levels));
        let mut dvh = Machine::build(MachineConfig::dvh(levels));
        prop_assert!(dvh.program_timer(0) < vanilla.program_timer(0));
        prop_assert!(dvh.send_ipi(0, 1) < vanilla.send_ipi(0, 1));
        prop_assert!(dvh.device_notify(0) < vanilla.device_notify(0));
        prop_assert!(dvh.idle_round(0) < vanilla.idle_round(0));
    }

    /// The simulator is deterministic: identical configurations produce
    /// identical cycle counts for identical operation sequences.
    #[test]
    fn determinism(seq in prop::collection::vec(0usize..4, 1..12)) {
        let run = |seq: &[usize]| {
            let mut m = Machine::build(MachineConfig::dvh(2));
            for &op in seq {
                match op {
                    0 => { m.hypercall(0); }
                    1 => { m.program_timer(0); }
                    2 => { m.send_ipi(0, 1); }
                    _ => { m.net_tx(0, 1, 700); }
                }
            }
            (m.now(0), m.now(1), m.world().stats.total_exits())
        };
        prop_assert_eq!(run(&seq), run(&seq));
    }

    /// The VCIMT really routes: whatever permutation the guest
    /// hypervisor programs, IPIs land on the mapped physical CPU.
    #[test]
    fn vcimt_routes_to_programmed_destination(dest in 1usize..4) {
        use dvh_core::vipi::VirtualIpis;
        use dvh_core::capability::enable_everywhere;
        use dvh_arch::vmx::ctrl;
        use dvh_hypervisor::{World, WorldConfig};
        use dvh_arch::costs::CostModel;

        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_IPI);
        let mut ext = VirtualIpis::new(0);
        ext.vcimt.set(1, dest as u32); // nested vCPU 1 -> PI desc `dest`
        w.register_extension(Box::new(ext));
        let before = w.now(dest);
        w.guest_send_ipi(0, 1, 0x77);
        prop_assert!(w.now(dest) > before);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// LAPIC conservation: every accepted vector is eventually
    /// dispatched exactly once and EOI'd exactly once, in strict
    /// priority order within each drain.
    #[test]
    fn lapic_accept_dispatch_eoi_conservation(vectors in prop::collection::vec(16u8..=255, 1..40)) {
        use dvh_arch::apic::LapicState;
        let mut l = LapicState::new();
        let mut unique: Vec<u8> = vectors.clone();
        unique.sort_unstable();
        unique.dedup();
        for v in &vectors {
            l.accept(*v);
        }
        let mut seen = Vec::new();
        while let Some(v) = l.dispatch() {
            l.eoi();
            seen.push(v);
        }
        // Highest priority first, each unique vector exactly once.
        let mut expect = unique;
        expect.reverse();
        prop_assert_eq!(seen, expect);
        prop_assert!(!l.has_pending());
        prop_assert!(!l.in_service());
    }

    /// SGI encode/decode round-trips for all valid INTIDs/targets.
    #[test]
    fn sgi_round_trip(intid in 0u8..=15, target in 0u32..64) {
        use dvh_arch::arm::SgiValue;
        let sgi = SgiValue::new(intid, target);
        prop_assert_eq!(SgiValue::decode(sgi.encode()), sgi);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Interrupt conservation across pause/resume: no vector delivered
    /// while paused is ever lost, regardless of how many arrive.
    #[test]
    fn pause_resume_conserves_interrupts(vectors in prop::collection::vec(32u8..=200, 1..12)) {
        use dvh_hypervisor::IrqPath;
        let mut m = Machine::build(MachineConfig::dvh(2));
        let base = m.world().lapic[0].accepted_count();
        m.world_mut().pause_vcpu(0);
        let mut unique = vectors.clone();
        unique.sort_unstable();
        unique.dedup();
        for v in &vectors {
            let t = m.now(1);
            m.world_mut().deliver_leaf_interrupt(0, *v, t, IrqPath::PostedDirect);
        }
        prop_assert_eq!(m.world().lapic[0].accepted_count(), base);
        m.world_mut().resume_vcpu(0);
        prop_assert_eq!(
            m.world().lapic[0].accepted_count(),
            base + unique.len() as u64
        );
        prop_assert_eq!(m.world().lapic[0].eoi_count(), base + unique.len() as u64);
    }

    /// EPT population is complete and canonical for arbitrary pages at
    /// any depth.
    #[test]
    fn ept_population_matches_canonical_layout(
        levels in 1usize..4,
        pages in prop::collection::vec(0u64..5_000, 1..10),
    ) {
        let mut m = Machine::build(MachineConfig::baseline(levels));
        for p in &pages {
            m.world_mut().guest_touch_page(0, *p);
        }
        for p in &pages {
            prop_assert!(m.world().leaf_page_mapped(*p));
            prop_assert_eq!(
                m.world_mut().walk_leaf_to_host(*p),
                Some(*p + levels as u64 * dvh_hypervisor::world::STAGE_PFN_OFFSET)
            );
        }
    }
}
