//! Integration tests for the dvh-checker invariant layer.
//!
//! Positive direction: every configuration the paper's figures use
//! (Fig. 7, 8, 9) runs the standard workload under VM-entry checking
//! and trace linting with zero violations.
//!
//! Negative direction: one deliberately-broken fixture per invariant,
//! proving each check actually fires — a checker that never fails
//! verifies nothing.

use dvh_arch::costs::CostModel;
use dvh_arch::vmx::{ctrl, field, ExitReason, ShadowFieldSet};
use dvh_arch::Cycles;
use dvh_checker::harness::{check_machine, exercise, fig7_configs, TRACE_CAPACITY};
use dvh_checker::source_lint::lint_file_text;
use dvh_checker::trace_lint::{lint_trace, TraceContext};
use dvh_checker::vmentry::check_world;
use dvh_checker::Violation;
use dvh_core::{DvhFlags, Machine, MachineConfig};
use dvh_hypervisor::{TraceEvent, World, WorldConfig};

// ---- Positive: paper-figure configurations are certified -----------------

fn assert_certified(name: &str, config: MachineConfig) {
    let violations = check_machine(config);
    assert!(violations.is_empty(), "{name}: {violations:#?}");
}

#[test]
fn fig7_configs_certified() {
    for (name, config) in fig7_configs() {
        assert_certified(name, config);
    }
}

#[test]
fn fig8_incremental_dvh_configs_certified() {
    let pi = DvhFlags {
        viommu_posted_interrupts: true,
        ..DvhFlags::NONE
    };
    let pi_ipi = DvhFlags {
        virtual_ipis: true,
        ..pi
    };
    let pi_ipi_t = DvhFlags {
        virtual_timers: true,
        ..pi_ipi
    };
    for (name, config) in [
        ("fig8/+PI", MachineConfig::dvh_partial(2, pi)),
        ("fig8/+vIPI", MachineConfig::dvh_partial(2, pi_ipi)),
        ("fig8/+vtimer", MachineConfig::dvh_partial(2, pi_ipi_t)),
        ("fig8/+vidle", MachineConfig::dvh(2)),
    ] {
        assert_certified(name, config);
    }
}

#[test]
fn fig9_l3_configs_certified() {
    for (name, config) in [
        ("fig9/l3", MachineConfig::baseline(3)),
        ("fig9/l3-pt", MachineConfig::passthrough(3)),
        ("fig9/l3-dvh-vp", MachineConfig::dvh_vp(3)),
        ("fig9/l3-dvh", MachineConfig::dvh(3)),
    ] {
        assert_certified(name, config);
    }
}

#[test]
fn xen_guest_hypervisor_certified() {
    assert_certified("fig10/xen", MachineConfig::baseline(2).with_xen_guest());
}

// ---- Negative: VM-entry invariants fire on broken worlds -----------------

fn rules(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

/// Breaks one VMCS field on a running world and asserts the named
/// vmentry rule fires, attributed to the right level.
fn broken_world_fires(tamper: impl FnOnce(&mut World), expect_rule: &str, expect_level: usize) {
    let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
    w.enable_vmentry_checks();
    tamper(&mut w);
    w.guest_hypercall(0);
    w.guest_program_timer(0, 1 << 30);
    let vs = check_world(&mut w);
    assert!(
        vs.iter()
            .any(|v| v.rule == expect_rule && v.location.contains(&format!("L{expect_level}"))),
        "expected {expect_rule} at L{expect_level}, got {vs:#?}"
    );
}

#[test]
fn broken_pi_descriptor_fires() {
    broken_world_fires(
        |w| w.vmcs_mut(0, 0).write(field::POSTED_INTR_DESC_ADDR, 0),
        "posted-interrupt-descriptor",
        0,
    );
}

#[test]
fn broken_pi_vector_fires() {
    broken_world_fires(
        |w| {
            w.vmcs_mut(1, 0)
                .write(field::POSTED_INTR_NOTIFICATION_VECTOR, 6)
        },
        "posted-interrupt-vector",
        1,
    );
}

#[test]
fn broken_shadow_link_pointer_fires() {
    broken_world_fires(
        |w| w.vmcs_mut(0, 0).write(field::VMCS_LINK_POINTER, 0),
        "shadow-vmcs-link-pointer",
        0,
    );
}

#[test]
fn broken_ept_pointer_fires() {
    broken_world_fires(
        |w| w.vmcs_mut(1, 1).write(field::EPT_POINTER, 0),
        "ept-pointer",
        1,
    );
}

#[test]
fn secondary_without_activation_fires() {
    broken_world_fires(
        |w| {
            w.vmcs_mut(0, 0).clear_bits(
                field::CPU_BASED_EXEC_CONTROLS,
                ctrl::cpu::SECONDARY_CONTROLS,
            )
        },
        "secondary-controls-activated",
        0,
    );
}

#[test]
fn unadvertised_dvh_control_fires() {
    broken_world_fires(
        |w| {
            w.dvh_advertised = 0;
            w.vmcs_mut(1, 0)
                .set_bits(field::DVH_EXEC_CONTROLS, ctrl::dvh::VIRTUAL_TIMER);
        },
        "dvh-capability",
        1,
    );
}

// ---- Negative: trace invariants fire on broken logs ----------------------

fn ctx_for(leaf_level: usize) -> TraceContext<'static> {
    TraceContext {
        leaf_level,
        shadow: None,
        dropped: 0,
        stats: None,
    }
}

fn exit(at: u64, cpu: usize, from_level: usize, reason: ExitReason) -> TraceEvent {
    TraceEvent::Exit {
        at: Cycles::new(at),
        cpu,
        from_level,
        reason,
        vmcs_field: None,
    }
}

fn completed(at: u64, cpu: usize, from_level: usize, reason: ExitReason, spent: u64) -> TraceEvent {
    TraceEvent::Completed {
        at: Cycles::new(at),
        cpu,
        from_level,
        reason,
        spent: Cycles::new(spent),
    }
}

#[test]
fn trace_nonmonotonic_time_fires() {
    let events = [
        exit(100, 0, 2, ExitReason::Vmcall),
        TraceEvent::Intervention {
            at: Cycles::new(50), // earlier than the exit
            cpu: 0,
            hv_level: 1,
            reason: ExitReason::Vmcall,
        },
    ];
    assert!(rules(&lint_trace(&events, &ctx_for(2))).contains(&"time-monotone"));
}

#[test]
fn trace_intervention_outside_exit_fires() {
    let events = [TraceEvent::Intervention {
        at: Cycles::new(10),
        cpu: 0,
        hv_level: 1,
        reason: ExitReason::MsrWrite,
    }];
    assert!(rules(&lint_trace(&events, &ctx_for(3))).contains(&"exit-nesting"));
}

#[test]
fn trace_intervention_at_or_above_exiting_level_fires() {
    let events = [
        exit(10, 0, 2, ExitReason::Vmcall),
        TraceEvent::Intervention {
            at: Cycles::new(20),
            cpu: 0,
            hv_level: 2, // must be strictly below the exiting level
            reason: ExitReason::Vmcall,
        },
    ];
    assert!(rules(&lint_trace(&events, &ctx_for(3))).contains(&"exit-nesting"));
}

#[test]
fn trace_reflection_past_hierarchy_fires() {
    // An exit from a level deeper than the hierarchy supports.
    let events = [exit(10, 0, 4, ExitReason::Vmcall)];
    assert!(rules(&lint_trace(&events, &ctx_for(3))).contains(&"reflection-depth"));
    // leaf_level() == 1 worlds have no guest hypervisor to reflect to.
    let events = [
        exit(10, 0, 1, ExitReason::Vmcall),
        TraceEvent::Intervention {
            at: Cycles::new(20),
            cpu: 0,
            hv_level: 1,
            reason: ExitReason::Vmcall,
        },
    ];
    assert!(rules(&lint_trace(&events, &ctx_for(1))).contains(&"reflection-depth"));
}

#[test]
fn trace_unbalanced_exit_fires() {
    let events = [exit(10, 0, 2, ExitReason::Vmcall)]; // never completed
    assert!(rules(&lint_trace(&events, &ctx_for(2))).contains(&"completed-balance"));
    let events = [completed(10, 0, 2, ExitReason::Vmcall, 5)]; // never opened
    assert!(rules(&lint_trace(&events, &ctx_for(2))).contains(&"completed-balance"));
}

#[test]
fn trace_wrong_spent_cycles_fires() {
    let events = [
        exit(100, 0, 2, ExitReason::Vmcall),
        completed(300, 0, 2, ExitReason::Vmcall, 150), // actually spent 200
    ];
    assert!(rules(&lint_trace(&events, &ctx_for(2))).contains(&"cycle-attribution"));
}

#[test]
fn trace_shadowed_field_reflection_fires() {
    let shadow = ShadowFieldSet::kvm_default();
    assert!(shadow.covers_read(field::GUEST_RIP));
    let ctx = TraceContext {
        leaf_level: 2,
        shadow: Some(&shadow),
        dropped: 0,
        stats: None,
    };
    let events = [TraceEvent::Exit {
        at: Cycles::new(10),
        cpu: 0,
        from_level: 1,
        reason: ExitReason::Vmread,
        vmcs_field: Some(field::GUEST_RIP),
    }];
    assert!(rules(&lint_trace(&events, &ctx)).contains(&"shadow-bypass"));
}

#[test]
fn trace_dvh_then_reflection_fires() {
    let events = [
        exit(10, 0, 2, ExitReason::MsrWrite),
        TraceEvent::DvhIntercept {
            at: Cycles::new(20),
            cpu: 0,
            mechanism: "vtimer",
        },
        TraceEvent::Intervention {
            at: Cycles::new(30),
            cpu: 0,
            hv_level: 1,
            reason: ExitReason::MsrWrite,
        },
    ];
    assert!(rules(&lint_trace(&events, &ctx_for(2))).contains(&"dvh-reflected"));
}

#[test]
fn truncated_trace_refused() {
    let mut m = Machine::build(MachineConfig::baseline(2));
    m.world_mut().enable_tracing(4); // absurdly small: guarantees drops
    exercise(&mut m);
    let w = m.world();
    assert!(w.trace_dropped() > 0);
    let ctx = TraceContext::for_world(w);
    assert_eq!(
        rules(&lint_trace(w.trace_events(), &ctx)),
        ["trace-truncated"]
    );
}

#[test]
fn tampered_stats_ledger_breaks_conservation() {
    let mut m = Machine::build(MachineConfig::baseline(2));
    {
        let w = m.world_mut();
        w.enable_tracing(TRACE_CAPACITY);
        w.reset_stats();
    }
    m.hypercall(0);
    // Siphon cycles out of the ledger behind the trace's back.
    let w = m.world_mut();
    let key = (2, ExitReason::Vmcall);
    *w.stats.cycles_by_reason.get_mut(&key).unwrap() -= Cycles::new(1);
    let ctx = TraceContext::for_world(w);
    let vs = lint_trace(w.trace_events(), &ctx);
    assert_eq!(rules(&vs), ["cycle-conservation"], "{vs:#?}");
    assert!(vs[0].detail.contains("Vmcall"));
}

// ---- Negative: source lints fire on synthetic sources --------------------

#[test]
fn source_lints_fire_on_synthetic_files() {
    let debug = lint_file_text(
        "crates/hypervisor/src/exits.rs",
        "fn f(level: usize) {\n    debug_assert!(level >= 1);\n}\n",
    );
    assert_eq!(rules_src(&debug), ["debug-assert-exit-path"]);

    let raw = format!(
        "fn f(w: &mut World) {{\n    w{}{}1][0].write(2, 3);\n}}\n",
        ".vmcs", "["
    );
    let vmcs = lint_file_text("crates/core/src/machine.rs", &raw);
    assert_eq!(rules_src(&vmcs), ["raw-vmcs-index"]);

    let level = lint_file_text(
        "crates/hypervisor/src/io.rs",
        "fn f(&mut self, owner: usize) {\n    self.virtio[owner].kick();\n}\n",
    );
    assert_eq!(rules_src(&level), ["unchecked-level-index"]);
}

fn rules_src(vs: &[Violation]) -> Vec<&'static str> {
    vs.iter().map(|v| v.rule).collect()
}

// ---- End-to-end: the checked engine still reproduces the paper -----------

#[test]
fn checking_does_not_change_simulated_costs() {
    // The checker must observe, never perturb: identical cycle totals
    // with and without checks enabled.
    let run = |checked: bool| {
        let mut m = Machine::build(MachineConfig::dvh(2));
        if checked {
            m.world_mut().enable_vmentry_checks();
            m.world_mut().enable_tracing(TRACE_CAPACITY);
        }
        exercise(&mut m);
        m.now(0)
    };
    assert_eq!(run(false), run(true));
}
