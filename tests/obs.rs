//! Integration tests for the dvh-obs observability layer: the Fig. 7
//! L2 netperf scenario, traced and metered end to end.
//!
//! The contract under test is exactness, not plausibility — the
//! metrics registry, the serialized Chrome trace, and the engine's
//! `RunStats` attribution ledger are three independent accountings of
//! the same simulated cycles, and they must agree key for key. The
//! second contract is invisibility: enabling observability must not
//! change a single simulated cycle.

use dvh_checker::metrics_lint::{lint_chrome_export, lint_metrics};
use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::trace_export::{
    chrome_json, chrome_outermost_totals, jsonl, span_cycle_totals,
};
use dvh_obs::json::{self, Value};
use dvh_obs::profile::exit_profile;
use dvh_workloads::{run_app, AppId};

const TXNS: u32 = 25;

/// The Fig. 7 "Nested" column running Netperf RR: an L2 VM with
/// paravirtual I/O, the paper's headline 2x-overhead scenario.
fn fig7_l2_netperf() -> Machine {
    let mut m = Machine::build(MachineConfig::baseline(2));
    {
        let w = m.world_mut();
        w.enable_tracing(1 << 20);
        w.enable_metrics();
        w.reset_stats();
    }
    run_app(&mut m, &AppId::NetperfRr.mix(), TXNS);
    m
}

#[test]
fn chrome_export_round_trips_and_matches_ledger_exactly() {
    let mut m = fig7_l2_netperf();
    let w = m.world_mut();
    let events = w.take_trace();
    assert!(!events.is_empty());

    let text = chrome_json(&events, w.num_cpus(), w.leaf_level());
    let doc = json::parse(&text).expect("chrome export must parse");
    assert_eq!(doc.to_json(), text, "round trip must be the identity");

    // Per-(level, reason) outermost span totals, re-derived from the
    // serialized JSON, equal the attribution ledger — both directions.
    let from_json = chrome_outermost_totals(&doc);
    let ledger = &w.stats.cycles_by_reason;
    assert!(!ledger.is_empty());
    assert_eq!(from_json.len(), ledger.len());
    for ((level, reason), cycles) in ledger {
        assert_eq!(
            from_json.get(&(*level, reason.to_string())).copied(),
            Some(cycles.as_u64()),
            "(L{level}, {reason})"
        );
    }
}

#[test]
fn trace_track_layout_is_one_thread_per_level() {
    let mut m = fig7_l2_netperf();
    let w = m.world_mut();
    let events = w.take_trace();
    let doc = json::parse(&chrome_json(&events, w.num_cpus(), w.leaf_level())).unwrap();
    for e in doc.get("traceEvents").unwrap().items().unwrap() {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        // A span's thread track is the level it executed at.
        assert_eq!(
            e.get("tid").and_then(Value::as_int),
            e.get("args").unwrap().get("level").and_then(Value::as_int),
        );
    }
}

#[test]
fn metrics_registry_is_the_ledgers_twin() {
    let mut m = fig7_l2_netperf();
    let w = m.world_mut();
    let reg = w.metrics().expect("metrics enabled");
    assert_eq!(reg.exit_cycle_totals(), w.stats.cycles_by_reason);
    // And the checker's metrics pass certifies the same machine clean.
    assert!(lint_metrics(reg, &w.stats).is_empty());
    let violations = lint_chrome_export(w.trace_events(), w.num_cpus(), w.leaf_level(), &w.stats);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn every_fig7_column_conserves_under_netperf() {
    for (name, config) in dvh_checker::harness::fig7_configs() {
        let mut m = Machine::build(config);
        m.world_mut().enable_metrics();
        run_app(&mut m, &AppId::NetperfRr.mix(), 20);
        let w = m.world_mut();
        let reg = w.metrics().expect("metrics enabled");
        assert_eq!(
            reg.exit_cycle_totals(),
            w.stats.cycles_by_reason,
            "{name}: registry and ledger disagree"
        );
    }
}

#[test]
fn observability_never_perturbs_the_simulation() {
    let bare = {
        let mut m = Machine::build(MachineConfig::baseline(2));
        run_app(&mut m, &AppId::NetperfRr.mix(), TXNS);
        m.world_mut().stats.clone()
    };
    let mut observed = fig7_l2_netperf();
    let w = observed.world_mut();
    assert_eq!(bare.cycles_by_reason, w.stats.cycles_by_reason);
    assert_eq!(bare.total_exits(), w.stats.total_exits());
    assert_eq!(bare.idle_cycles, w.stats.idle_cycles);
}

#[test]
fn profile_rows_sum_to_the_ledger() {
    let mut m = fig7_l2_netperf();
    let w = m.world_mut();
    let reg = w.metrics().expect("metrics enabled");
    let rows = exit_profile(reg, usize::MAX);
    let row_total: u64 = rows.iter().map(|r| r.cycles).sum();
    let ledger_total: u64 = w.stats.cycles_by_reason.values().map(|c| c.as_u64()).sum();
    assert_eq!(row_total, ledger_total);
    let pct: f64 = rows.iter().map(|r| r.percent).sum();
    assert!((pct - 100.0).abs() < 1e-6, "{pct}");
}

#[test]
fn jsonl_export_covers_every_event() {
    let mut m = fig7_l2_netperf();
    let events = m.world_mut().take_trace();
    let text = jsonl(&events);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), events.len());
    for line in &lines {
        json::parse(line).expect("every jsonl line parses");
    }
    // The in-memory helper and the trace agree too.
    assert_eq!(
        span_cycle_totals(&events),
        m.world_mut().stats.cycles_by_reason
    );
}

#[test]
fn jsonl_round_trip_agrees_with_chrome_export() {
    // Satellite contract: the JSONL stream and the Chrome trace are two
    // serializations of the same events, so pushing the JSONL through
    // `obs::json` and re-deriving totals must agree with the Chrome
    // export on both event count and cycle sum.
    let mut m = fig7_l2_netperf();
    let w = m.world_mut();
    let events = w.take_trace();
    let (num_cpus, leaf) = (w.num_cpus(), w.leaf_level());

    let mut completed = 0u64;
    let mut spent_sum = 0u64;
    for line in jsonl(&events).lines() {
        let v = json::parse(line).expect("jsonl line parses");
        // Round trip through obs::json is the identity, line by line.
        assert_eq!(v.to_json(), line);
        if v.get("type").and_then(Value::as_str) == Some("completed") {
            completed += 1;
            spent_sum += v.get("spent").and_then(Value::as_int).unwrap() as u64;
        }
    }

    let doc = json::parse(&chrome_json(&events, num_cpus, leaf)).unwrap();
    let mut outermost_spans = 0u64;
    let mut dur_sum = 0u64;
    for e in doc.get("traceEvents").unwrap().items().unwrap() {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        if e.get("args").unwrap().get("outermost") != Some(&Value::Bool(true)) {
            continue;
        }
        outermost_spans += 1;
        dur_sum += e.get("dur").and_then(Value::as_int).unwrap() as u64;
    }

    assert!(completed > 0);
    assert_eq!(
        completed, outermost_spans,
        "one outermost span per completion"
    );
    assert_eq!(spent_sum, dur_sum, "both exports account the same cycles");
}

#[test]
fn device_metrics_export_is_idempotent() {
    let mut m = fig7_l2_netperf();
    let w = m.world_mut();
    w.export_device_metrics();
    let once = w.metrics().unwrap().snapshot();
    w.export_device_metrics();
    let twice = w.metrics().unwrap().snapshot();
    assert_eq!(once, twice, "re-export must not double-count");
    assert!(once.contains("virtqueue_kicks"), "{once}");
}
