//! Integration tests for the reproduction's extension features: the
//! ARM port, block I/O, tracing, polling idle, lifecycle, and EPT
//! fault handling.

use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::{IrqPath, TraceEvent};
use dvh_migration::{migrate_nested_vm, MigrationConfig};
use dvh_workloads::{run_app, AppId};

// ---- ARM port -------------------------------------------------------------

#[test]
fn arm_exit_multiplication_holds() {
    let mut l1 = Machine::build(MachineConfig::arm_baseline(1));
    let c1 = l1.hypercall(0).as_u64();
    let mut l2 = Machine::build(MachineConfig::arm_baseline(2));
    let c2 = l2.hypercall(0).as_u64();
    assert!(c2 > 20 * c1, "ARM hvc: L2 {c2} vs L1 {c1}");
}

#[test]
fn arm_nested_is_relatively_worse_than_x86_nested() {
    // No shadowing analogue on ARM: the L2/L1 blow-up exceeds x86's.
    let ratio = |mk: fn(usize) -> MachineConfig| {
        let mut l1 = Machine::build(mk(1));
        let c1 = l1.hypercall(0).as_u64() as f64;
        let mut l2 = Machine::build(mk(2));
        l2.hypercall(0).as_u64() as f64 / c1
    };
    let x86 = ratio(MachineConfig::baseline);
    let arm = ratio(MachineConfig::arm_baseline);
    assert!(arm > x86, "ARM ratio {arm:.1} vs x86 ratio {x86:.1}");
}

#[test]
fn arm_virtual_passthrough_removes_io_interventions() {
    let apache = AppId::Apache.mix();
    let mut nested = Machine::build(MachineConfig::arm_baseline(2));
    let o_nested = run_app(&mut nested, &apache, 100).overhead;
    let mut vp = Machine::build(MachineConfig::arm_dvh_vp(2));
    let o_vp = run_app(&mut vp, &apache, 100).overhead;
    assert!(o_vp < o_nested * 0.75, "ARM VP {o_vp} vs nested {o_nested}");
}

#[test]
fn arm_full_dvh_is_rejected_as_in_the_paper() {
    // The paper only ported virtual-passthrough to ARM.
    let mut cfg = MachineConfig::arm_baseline(2);
    cfg.world.dvh = dvh_core::DvhFlags::ALL;
    assert!(cfg.world.validate().is_err());
}

// ---- Block I/O --------------------------------------------------------------

#[test]
fn blk_io_cascades_even_under_nic_passthrough() {
    // The paper's testbed has no SR-IOV disk: MySQL's log writes keep
    // paying guest hypervisor interventions in the passthrough config.
    let mut m = Machine::build(MachineConfig::passthrough(2));
    let before = m.world().stats.total_interventions();
    m.blk_io(0, 16 * 1024, true);
    assert!(
        m.world().stats.total_interventions() > before,
        "blk must cascade under NIC passthrough"
    );
}

#[test]
fn blk_io_under_full_dvh_never_reaches_the_guest_hypervisor() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    m.blk_io(0, 16 * 1024, true);
    assert_eq!(m.world().stats.total_interventions(), 0);
}

#[test]
fn blk_costs_rank_across_io_models() {
    let cost = |cfg: MachineConfig| {
        let mut m = Machine::build(cfg);
        m.blk_io(0, 8192, true).as_u64()
    };
    let l1 = cost(MachineConfig::baseline(1));
    let nested = cost(MachineConfig::baseline(2));
    let dvh = cost(MachineConfig::dvh(2));
    assert!(nested > 5 * l1, "nested blk {nested} vs L1 {l1}");
    assert!(dvh < nested / 2, "DVH blk {dvh} vs nested {nested}");
}

// ---- Tracing -----------------------------------------------------------------

#[test]
fn trace_explains_the_cost_difference() {
    let mut vanilla = Machine::build(MachineConfig::baseline(2));
    vanilla.world_mut().enable_tracing(1 << 16);
    vanilla.program_timer(0);
    let vanilla_events = vanilla.world_mut().take_trace();

    let mut dvh = Machine::build(MachineConfig::dvh(2));
    dvh.world_mut().enable_tracing(1 << 16);
    dvh.program_timer(0);
    let dvh_events = dvh.world_mut().take_trace();

    let exits = |evs: &[TraceEvent]| {
        evs.iter()
            .filter(|e| matches!(e, TraceEvent::Exit { .. }))
            .count()
    };
    assert!(exits(&vanilla_events) > 10);
    assert_eq!(exits(&dvh_events), 1, "DVH: exactly one exit, to L0");
    assert!(dvh_events.iter().any(|e| matches!(
        e,
        TraceEvent::DvhIntercept {
            mechanism: "vtimer",
            ..
        }
    )));
}

// ---- Polling vs halting ---------------------------------------------------------

#[test]
fn polling_trades_cycles_for_latency() {
    let mut halt = Machine::build(MachineConfig::baseline(2));
    halt.world_mut().guest_hlt(0);
    let t = halt.now(0);
    halt.world_mut()
        .deliver_leaf_interrupt(0, 0x33, t, IrqPath::PostedDirect);
    let halt_wake = (halt.now(0) - t).as_u64();

    let mut poll = Machine::build(MachineConfig::baseline(2));
    poll.world_mut().poll_idle = true;
    poll.world_mut().guest_hlt(0);
    let t = poll.now(0);
    poll.world_mut()
        .deliver_leaf_interrupt(0, 0x33, t, IrqPath::PostedDirect);
    let poll_wake = (poll.now(0) - t).as_u64();

    assert!(
        poll_wake < halt_wake / 10,
        "poll {poll_wake} vs halt {halt_wake}"
    );
    assert_eq!(poll.world().stats.total_exits(), 0);
}

// ---- Lifecycle + migration ----------------------------------------------------------

#[test]
fn interrupts_arriving_during_migration_blackout_survive() {
    let mut m = Machine::build(MachineConfig::dvh(2));
    m.world_mut().guest_write_memory(
        0,
        dvh_memory::Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN),
        &[7; 64],
    );
    let accepted_before = m.world().lapic[0].accepted_count();
    // Deliver a packet-completion interrupt mid-migration by hooking
    // the per-round workload (the VM is running between rounds, paused
    // only at cut-over; here we also check the paused path directly).
    m.world_mut().pause_vcpu(0);
    let t = m.now(1);
    m.world_mut()
        .deliver_leaf_interrupt(0, 0x66, t, IrqPath::PostedDirect);
    assert_eq!(m.world().lapic[0].accepted_count(), accepted_before);
    let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
    assert!(r.verified);
    // migrate's resume_all delivered the queued vector.
    assert_eq!(m.world().lapic[0].accepted_count(), accepted_before + 1);
}

// ---- EPT warm-up -----------------------------------------------------------------

#[test]
fn nested_warmup_costs_disappear_at_steady_state() {
    let mut m = Machine::build(MachineConfig::baseline(3));
    let t0 = m.now(0);
    m.world_mut().guest_touch_page(0, 0x900);
    let warm = (m.now(0) - t0).as_u64();
    let t1 = m.now(0);
    for _ in 0..10 {
        m.world_mut().guest_touch_page(0, 0x900);
    }
    let steady = (m.now(0) - t1).as_u64();
    assert!(
        warm > 1000 * steady / 10,
        "warmup {warm} vs steady-per-touch {}",
        steady / 10
    );
}

// ---- MSI-X masking ----------------------------------------------------------------

#[test]
fn masked_rx_vector_defers_the_interrupt_until_unmask() {
    use dvh_devices::nic::Frame;
    let mut m = Machine::build(MachineConfig::dvh(2));
    let idx = m.world().leaf_device_idx();
    m.world_mut().virtio[idx].msix.mask(1);
    let accepted = m.world().lapic[0].accepted_count();
    m.world_mut()
        .external_packet_arrival(0, Frame::patterned(600, 5));
    // Data landed but no interrupt was delivered.
    assert_eq!(m.world().lapic[0].accepted_count(), accepted);
    assert!(m.world().virtio[idx].msix.is_pending(1));
    // Unmasking fires the latched completion.
    m.world_mut()
        .unmask_rx_vector(0)
        .expect("pending interrupt fires");
    assert_eq!(m.world().lapic[0].accepted_count(), accepted + 1);
}

// ---- Cycle attribution ---------------------------------------------------------------

#[test]
fn cycle_attribution_accounts_for_every_handling_cycle() {
    use dvh_arch::vmx::ExitReason;
    let mut m = Machine::build(MachineConfig::baseline(3));
    let t0 = m.now(0);
    m.hypercall(0);
    m.program_timer(0);
    let handled = (m.now(0) - t0).as_u64();
    let attributed = m.world().stats.total_attributed_cycles().as_u64();
    assert_eq!(
        attributed, handled,
        "every cycle spent handling exits must be attributed to an outermost exit"
    );
    // The L3 hypercall's full recursive cost lands on the Vmcall entry.
    let vmcall = m.world().stats.cycles_by_reason[&(3, ExitReason::Vmcall)].as_u64();
    assert!(vmcall > 800_000, "L3 hypercall attribution {vmcall}");
    // No cycles are attributed to inner reflected ops directly.
    assert!(!m
        .world()
        .stats
        .cycles_by_reason
        .contains_key(&(1, ExitReason::Vmresume)));
}

// ---- Failure injection -----------------------------------------------------------------

#[test]
fn dma_to_an_unmapped_shadow_page_is_dropped_silently() {
    use dvh_devices::nic::Frame;
    // Sabotage the shadow I/O table: remove the RX buffer mapping.
    let mut m = Machine::build(MachineConfig::dvh(2));
    let bdf = m.world().virtio[0].pci().bdf();
    let rx_buf = dvh_hypervisor::world::LEAF_BUF_BASE_PFN + 32;
    m.world_mut().viommus[0].unmap(bdf, rx_buf);
    m.world_mut().rebuild_shadow_io();

    let accepted = m.world().lapic[0].accepted_count();
    m.world_mut()
        .external_packet_arrival(0, Frame::patterned(700, 1));
    // The DMA faulted at the (shadow) IOMMU: packet dropped, memory
    // untouched, and the vhost backend recorded the drop.
    assert_eq!(m.world().vhost[0].stats.dropped, 1);
    assert_eq!(m.world().vhost[0].stats.rx_packets, 0);
    let buf = m
        .world()
        .guest_read_memory(dvh_memory::Gpa::from_pfn(rx_buf), 16);
    assert_eq!(buf, vec![0; 16], "no bytes may land past a revoked mapping");
    // No phantom interrupt for a dropped frame... the completion
    // interrupt may still fire (used-ring entry with 0 bytes) in our
    // model, but nothing was accepted beyond at most one vector.
    assert!(m.world().lapic[0].accepted_count() <= accepted + 1);
}

#[test]
fn detached_passthrough_device_stops_transmitting() {
    let mut m = Machine::build(MachineConfig::passthrough(2));
    let vf = m.world().nic.function_bdf(1);
    m.world_mut().phys_iommu.detach(vf);
    m.net_tx(0, 2, 900);
    assert!(
        m.world().nic.wire().is_empty(),
        "DMA from a detached device must fault, not leak data"
    );
    assert!(m.world().phys_iommu.fault_count() >= 2);
}
