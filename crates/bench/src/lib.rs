//! # dvh-bench
//!
//! The benchmark harness that regenerates every table and figure of
//! the DVH paper's evaluation (§4). Each experiment has a binary that
//! prints the same rows/series the paper reports:
//!
//! | target | paper artifact |
//! |---|---|
//! | `cargo run -p dvh-bench --bin table3` | Table 3 (microbenchmark cycles) |
//! | `cargo run -p dvh-bench --bin fig7` | Fig. 7 (application overhead, L2) |
//! | `cargo run -p dvh-bench --bin fig8` | Fig. 8 (DVH technique breakdown) |
//! | `cargo run -p dvh-bench --bin fig9` | Fig. 9 (application overhead, L3) |
//! | `cargo run -p dvh-bench --bin fig10` | Fig. 10 (Xen guest hypervisor) |
//! | `cargo run -p dvh-bench --bin migration` | §4 migration experiment |
//! | `cargo run -p dvh-bench --bin recursion` | §3.5 recursion beyond L3 (extension) |
//!
//! Plain benches (`cargo bench`, using the in-tree [`tinybench`]
//! runner) measure the same operations for regression tracking of the
//! simulator itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod harness;
pub mod parallel;
pub mod tinybench;
