//! Experiment definitions shared by the harness binaries and the
//! Criterion benches.

use dvh_core::{DvhFlags, Machine, MachineConfig};
use dvh_migration::{migrate_nested_vm, MigrationConfig};
use dvh_workloads::{run_app, run_micro, AppId};

/// Transactions per application measurement (large enough for the
/// fractional event accumulators to settle).
pub const APP_TXNS: u32 = 400;

/// One row of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Configuration label, as in the paper's column headers.
    pub config: &'static str,
    /// Microbenchmark costs in cycles.
    pub hypercall: u64,
    /// DevNotify cost.
    pub dev_notify: u64,
    /// ProgramTimer cost.
    pub program_timer: u64,
    /// SendIPI cost.
    pub send_ipi: u64,
}

/// The paper's Table 3 values, for side-by-side printing.
pub const TABLE3_PAPER: [Table3Row; 5] = [
    Table3Row {
        config: "VM",
        hypercall: 1_575,
        dev_notify: 4_984,
        program_timer: 2_005,
        send_ipi: 3_273,
    },
    Table3Row {
        config: "nested VM",
        hypercall: 37_733,
        dev_notify: 48_390,
        program_timer: 43_359,
        send_ipi: 39_456,
    },
    Table3Row {
        config: "nested VM + DVH",
        hypercall: 38_743,
        dev_notify: 13_815,
        program_timer: 3_247,
        send_ipi: 5_116,
    },
    Table3Row {
        config: "L3 VM",
        hypercall: 857_578,
        dev_notify: 1_008_935,
        program_timer: 1_033_946,
        send_ipi: 787_971,
    },
    Table3Row {
        config: "L3 VM + DVH",
        hypercall: 929_724,
        dev_notify: 15_150,
        program_timer: 3_304,
        send_ipi: 5_228,
    },
];

/// Runs Table 3: the four microbenchmarks in the five configurations.
pub fn table3() -> Vec<Table3Row> {
    table3_with_workers(1)
}

/// [`table3`] with the five configurations fanned out over `workers`
/// OS threads. Each configuration's machine is built and run entirely
/// inside its worker; only the plain-data [`MachineConfig`] crosses
/// the thread boundary, and rows come back in canonical config order,
/// so the result is identical to the serial one.
pub fn table3_with_workers(workers: usize) -> Vec<Table3Row> {
    let configs: [(&'static str, MachineConfig); 5] = [
        ("VM", MachineConfig::baseline(1)),
        ("nested VM", MachineConfig::baseline(2)),
        ("nested VM + DVH", MachineConfig::dvh(2)),
        ("L3 VM", MachineConfig::baseline(3)),
        ("L3 VM + DVH", MachineConfig::dvh(3)),
    ];
    crate::parallel::pmap_with_workers(workers, &configs, |(name, cfg)| {
        let mut m = Machine::build(cfg.clone());
        let r = run_micro(&mut m, 5);
        Table3Row {
            config: name,
            hypercall: r.hypercall,
            dev_notify: r.dev_notify,
            program_timer: r.program_timer,
            send_ipi: r.send_ipi,
        }
    })
}

/// A figure row: one application's overhead in each configuration.
#[derive(Debug, Clone)]
pub struct FigRow {
    /// Application name.
    pub app: &'static str,
    /// Overheads, one per configuration column.
    pub overheads: Vec<f64>,
}

/// A complete figure: column headers plus rows.
#[derive(Debug, Clone)]
pub struct Figure {
    /// Figure label.
    pub title: &'static str,
    /// Configuration column headers.
    pub columns: Vec<&'static str>,
    /// One row per application.
    pub rows: Vec<FigRow>,
}

impl Figure {
    /// Renders the figure as CSV: a header row, then one row per
    /// application with overheads to four decimal places. This is the
    /// canonical byte representation the determinism test compares
    /// across worker counts.
    pub fn to_csv(&self) -> String {
        let mut out = format!("app,{}\n", self.columns.join(","));
        for row in &self.rows {
            let cells: Vec<String> = row.overheads.iter().map(|o| format!("{o:.4}")).collect();
            out.push_str(&format!("{},{}\n", row.app, cells.join(",")));
        }
        out
    }
}

fn run_figure(title: &'static str, configs: Vec<(&'static str, MachineConfig)>) -> Figure {
    run_figure_with_workers(title, configs, 1)
}

/// Runs one figure with its (application, configuration) cross
/// product fanned out over `workers` OS threads.
///
/// Every cell is an independent single-threaded simulation — it
/// builds its own [`Machine`] from a cloned config inside the worker
/// and shares nothing — so scheduling order cannot affect any cell's
/// result, and reassembling the flat results in (row, column) order
/// makes the whole figure byte-identical to a serial run.
fn run_figure_with_workers(
    title: &'static str,
    configs: Vec<(&'static str, MachineConfig)>,
    workers: usize,
) -> Figure {
    let columns: Vec<&'static str> = configs.iter().map(|(n, _)| *n).collect();
    // Flatten to one work item per cell: cells differ ~30x in cost
    // (VM vs L3), so scheduling cells — not rows — keeps all workers
    // busy until the tail.
    let cells: Vec<(AppId, MachineConfig)> = AppId::ALL
        .iter()
        .flat_map(|app| configs.iter().map(move |(_, cfg)| (*app, cfg.clone())))
        .collect();
    let overheads = crate::parallel::pmap_with_workers(workers, &cells, |(app, cfg)| {
        let mut m = Machine::build(cfg.clone());
        run_app(&mut m, &app.mix(), APP_TXNS).overhead
    });
    let rows = AppId::ALL
        .iter()
        .enumerate()
        .map(|(i, app)| FigRow {
            app: app.mix().name,
            overheads: overheads[i * configs.len()..(i + 1) * configs.len()].to_vec(),
        })
        .collect();
    Figure {
        title,
        columns,
        rows,
    }
}

/// The (title, configuration columns) of one application figure.
fn figure_spec(figure: u32) -> Option<(&'static str, Vec<(&'static str, MachineConfig)>)> {
    Some(match figure {
        7 => (
            "Figure 7: Application performance (overhead vs native)",
            vec![
                ("VM", MachineConfig::baseline(1)),
                ("VM+PT", MachineConfig::passthrough(1)),
                ("Nested", MachineConfig::baseline(2)),
                ("Nested+PT", MachineConfig::passthrough(2)),
                ("DVH-VP", MachineConfig::dvh_vp(2)),
                ("DVH", MachineConfig::dvh(2)),
            ],
        ),
        8 => {
            let pi = DvhFlags {
                viommu_posted_interrupts: true,
                ..DvhFlags::NONE
            };
            let pi_ipi = DvhFlags {
                virtual_ipis: true,
                ..pi
            };
            let pi_ipi_t = DvhFlags {
                virtual_timers: true,
                ..pi_ipi
            };
            (
                "Figure 8: Application performance breakdown (incremental DVH)",
                vec![
                    ("Nested", MachineConfig::baseline(2)),
                    ("DVH-VP", MachineConfig::dvh_vp(2)),
                    ("+PI", MachineConfig::dvh_partial(2, pi)),
                    ("+vIPI", MachineConfig::dvh_partial(2, pi_ipi)),
                    ("+vtimer", MachineConfig::dvh_partial(2, pi_ipi_t)),
                    ("+vidle", MachineConfig::dvh(2)),
                ],
            )
        }
        9 => (
            "Figure 9: Application performance in L3 VM (overhead vs native)",
            vec![
                ("VM", MachineConfig::baseline(1)),
                ("VM+PT", MachineConfig::passthrough(1)),
                ("L3", MachineConfig::baseline(3)),
                ("L3+PT", MachineConfig::passthrough(3)),
                ("L3+DVH-VP", MachineConfig::dvh_vp(3)),
                ("L3+DVH", MachineConfig::dvh(3)),
            ],
        ),
        10 => (
            "Figure 10: Application performance, Xen guest hypervisor on KVM",
            vec![
                ("VM", MachineConfig::baseline(1)),
                ("VM+PT", MachineConfig::passthrough(1)),
                ("Nested(Xen)", MachineConfig::baseline(2).with_xen_guest()),
                ("Nested+PT", MachineConfig::passthrough(2).with_xen_guest()),
                ("DVH-VP", MachineConfig::dvh_vp(2).with_xen_guest()),
            ],
        ),
        _ => return None,
    })
}

/// Regenerates figure 7, 8, 9, or 10 with its cells fanned out over
/// `workers` threads (`None` for an unknown figure number). The
/// figure is byte-identical at any worker count.
pub fn figure_with_workers(figure: u32, workers: usize) -> Option<Figure> {
    figure_spec(figure).map(|(title, configs)| run_figure_with_workers(title, configs, workers))
}

/// Runs one figure cell (application × configuration) with the dvh-obs
/// registry enabled and returns (registry, overhead). Device lifetime
/// counters are exported into the registry after the run, so the cell
/// profile covers both cycle attribution and datapath activity. This
/// is the backend of `dvh profile --app`.
pub fn profile_cell(app: AppId, cfg: MachineConfig, txns: u32) -> (dvh_obs::MetricsRegistry, f64) {
    let mut m = Machine::build(cfg);
    m.world_mut().enable_metrics();
    let overhead = run_app(&mut m, &app.mix(), txns).overhead;
    m.world_mut().export_device_metrics();
    let reg = m.world_mut().take_metrics().unwrap_or_default();
    (reg, overhead)
}

/// Fig. 7: application performance at two virtualization levels,
/// six configurations.
pub fn fig7() -> Figure {
    let (title, configs) = figure_spec(7).expect("figure 7 is defined");
    run_figure(title, configs)
}

/// Fig. 8: the incremental DVH technique breakdown.
pub fn fig8() -> Figure {
    let (title, configs) = figure_spec(8).expect("figure 8 is defined");
    run_figure(title, configs)
}

/// Fig. 9: application performance with three levels of
/// virtualization.
pub fn fig9() -> Figure {
    let (title, configs) = figure_spec(9).expect("figure 9 is defined");
    run_figure(title, configs)
}

/// Fig. 10: the Xen guest hypervisor on a KVM host (DVH-VP only — Xen
/// is DVH-unaware, but virtual-passthrough needs no guest hypervisor
/// modifications).
pub fn fig10() -> Figure {
    let (title, configs) = figure_spec(10).expect("figure 10 is defined");
    run_figure(title, configs)
}

/// One migration experiment result.
#[derive(Debug, Clone)]
pub struct MigrationRow {
    /// Scenario label.
    pub scenario: &'static str,
    /// Total migration time in seconds.
    pub total_secs: f64,
    /// Downtime in milliseconds.
    pub downtime_ms: f64,
    /// Pages transferred.
    pub pages: u64,
    /// Whether the destination verified identical.
    pub verified: bool,
}

/// The §4 migration experiment: nested-VM migration under paravirtual
/// I/O vs DVH, and the L1-VM-with-guest-hypervisor case. Passthrough
/// is reported as unmigratable.
pub fn migration_experiment() -> (Vec<MigrationRow>, &'static str) {
    let dirty_pages = 64u64;
    let scenarios: [(&'static str, MachineConfig, bool); 3] = [
        (
            "nested VM, paravirtual I/O",
            MachineConfig::baseline(2),
            false,
        ),
        ("nested VM, DVH", MachineConfig::dvh(2), false),
        (
            "nested VM + guest hypervisor, DVH",
            MachineConfig::dvh(2),
            true,
        ),
    ];
    let mut rows = Vec::new();
    for (name, cfg, include_hv) in scenarios {
        let mut m = Machine::build(cfg);
        // Give the VM a working set.
        for i in 0..dirty_pages {
            m.world_mut().guest_write_memory(
                0,
                dvh_memory::Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN + (i % 60)),
                &[i as u8; 256],
            );
        }
        let mut rounds_left = 3;
        let report = migrate_nested_vm(
            m.world_mut(),
            MigrationConfig {
                include_guest_hypervisor: include_hv,
                ..MigrationConfig::default()
            },
            |w| {
                if rounds_left > 0 {
                    rounds_left -= 1;
                    for i in 0..12u64 {
                        w.guest_write_memory(
                            0,
                            dvh_memory::Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN + i),
                            &[0x5A; 128],
                        );
                    }
                }
            },
        )
        .expect("migratable configuration");
        rows.push(MigrationRow {
            scenario: name,
            total_secs: report.total_time.as_secs_f64(),
            downtime_ms: report.downtime.as_secs_f64() * 1e3,
            pages: report.total_pages,
            verified: report.verified,
        });
    }
    // And the negative result.
    let mut pt = Machine::build(MachineConfig::passthrough(2));
    let err = migrate_nested_vm(pt.world_mut(), MigrationConfig::default(), |_| {})
        .expect_err("passthrough must refuse");
    debug_assert_eq!(err, dvh_migration::MigrationError::PassthroughNotMigratable);
    (
        rows,
        "nested VM, passthrough: migration not possible (no I/O interposition)",
    )
}

/// One recursion-depth measurement.
#[derive(Debug, Clone)]
pub struct RecursionRow {
    /// Virtualization depth (1 = plain VM).
    pub levels: usize,
    /// Vanilla hypercall cost (cycles).
    pub hypercall: u64,
    /// Vanilla ProgramTimer cost.
    pub timer: u64,
    /// ProgramTimer with recursive DVH.
    pub timer_dvh: u64,
}

/// The §3.5 extension experiment: exit multiplication keeps compounding
/// beyond L3 (where real KVM stops), while recursive DVH stays flat at
/// any depth.
pub fn recursion_experiment(max_levels: usize) -> Vec<RecursionRow> {
    (1..=max_levels)
        .map(|levels| {
            let mut base = Machine::build(MachineConfig::baseline(levels));
            let hypercall = base.hypercall(0).as_u64();
            let timer = base.program_timer(0).as_u64();
            let mut dvh = Machine::build(MachineConfig::dvh(levels));
            let timer_dvh = dvh.program_timer(0).as_u64();
            RecursionRow {
                levels,
                hypercall,
                timer,
                timer_dvh,
            }
        })
        .collect()
}

/// Prints a figure as an aligned text table.
pub fn print_figure(fig: &Figure) {
    println!("{}", fig.title);
    print!("{:<16}", "app");
    for c in &fig.columns {
        print!(" {c:>11}");
    }
    println!();
    for row in &fig.rows {
        print!("{:<16}", row.app);
        for o in &row.overheads {
            print!(" {o:>10.2}x");
        }
        println!();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_shape_holds() {
        let rows = table3();
        assert_eq!(rows.len(), 5);
        let vm = &rows[0];
        let nested = &rows[1];
        let dvh = &rows[2];
        assert!(nested.hypercall > 20 * vm.hypercall);
        assert!(dvh.program_timer < nested.program_timer / 10);
        assert!(dvh.send_ipi < nested.send_ipi / 5);
        assert!(dvh.hypercall >= nested.hypercall);
    }

    #[test]
    fn recursion_grows_then_dvh_flattens() {
        let rows = recursion_experiment(4);
        for pair in rows.windows(2) {
            assert!(
                pair[1].hypercall > 10 * pair[0].hypercall,
                "L{}={} vs L{}={}",
                pair[1].levels,
                pair[1].hypercall,
                pair[0].levels,
                pair[0].hypercall
            );
        }
        // DVH timer flat from L2 on.
        let t2 = rows[1].timer_dvh;
        for r in &rows[2..] {
            assert!(r.timer_dvh.abs_diff(t2) * 10 <= t2);
        }
    }

    #[test]
    fn migration_rows_verify() {
        let (rows, note) = migration_experiment();
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.verified));
        assert!(note.contains("not possible"));
        // DVH vs paravirtual roughly equal; +hv roughly double.
        let pv = rows[0].total_secs;
        let dvh = rows[1].total_secs;
        let both = rows[2].total_secs;
        assert!((dvh / pv) < 1.3 && (pv / dvh) < 1.3);
        assert!(both / dvh > 1.5);
    }
}
