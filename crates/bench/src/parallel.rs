//! A dependency-free scoped-parallelism scheduler for the sweep
//! harness.
//!
//! The evaluation sweeps (Table 3, Figs. 7–10) are embarrassingly
//! parallel: every (configuration, workload) cell builds its own
//! [`dvh_core::Machine`] and runs it to completion, sharing nothing.
//! Each cell stays single-threaded and bit-for-bit deterministic; the
//! scheduler only changes *when* cells run, never *what* they compute,
//! and results are committed in canonical input order — so a parallel
//! sweep's output is byte-identical to a serial one.
//!
//! Design: no work stealing, no channels, no thread pool to shut
//! down. Workers under [`std::thread::scope`] claim item indices from
//! a shared atomic counter (cheap dynamic load balancing — cells vary
//! ~30x in cost between `VM` and `L3`) and write each result into its
//! own slot. Worker panics propagate to the caller when the scope
//! joins.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of workers worth using on this host: the available
/// parallelism, or 1 when the platform cannot say.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Maps `f` over `items` on `workers` OS threads, returning results
/// in input order (slot `i` holds `f(&items[i])`).
///
/// `workers <= 1` runs serially on the calling thread with no
/// synchronization at all — the scheduler's overhead is exactly zero
/// for the serial case, which keeps "serial vs parallel" comparisons
/// honest.
///
/// # Panics
///
/// Re-raises the first worker panic when the scope joins.
pub fn pmap_with_workers<T, R, F>(workers: usize, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = items.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(items.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(item) = items.get(i) else {
                    return;
                };
                let r = f(item);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed index was computed")
        })
        .collect()
}

/// [`pmap_with_workers`] at this host's [`available_workers`].
pub fn pmap<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    pmap_with_workers(available_workers(), items, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = pmap_with_workers(8, &items, |&i| i * i);
        assert_eq!(out, items.iter().map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..37).collect();
        let serial = pmap_with_workers(1, &items, |&i| i.wrapping_mul(0x9E3779B97F4A7C15));
        let parallel = pmap_with_workers(4, &items, |&i| i.wrapping_mul(0x9E3779B97F4A7C15));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn empty_and_single_item() {
        let none: Vec<u32> = vec![];
        assert!(pmap_with_workers(4, &none, |&i| i).is_empty());
        assert_eq!(pmap_with_workers(4, &[7u32], |&i| i + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items_is_fine() {
        let out = pmap_with_workers(64, &[1u32, 2, 3], |&i| i * 10);
        assert_eq!(out, vec![10, 20, 30]);
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }

    #[test]
    fn worker_panic_propagates() {
        let items: Vec<u32> = (0..8).collect();
        let r = std::panic::catch_unwind(|| {
            pmap_with_workers(2, &items, |&i| {
                assert!(i != 5, "boom");
                i
            })
        });
        assert!(r.is_err());
    }
}
