//! A minimal, dependency-free benchmark runner used by the `cargo
//! bench` targets.
//!
//! The registry this workspace builds against is offline, so the
//! benches cannot use an external harness; this module provides the
//! small subset we need: named groups, warmup, wall-clock sampling,
//! and a median/min/max report. Results are printed to stdout in a
//! stable one-line-per-bench format so regressions are easy to diff.

use std::hint::black_box;
use std::time::Instant;

/// One benchmark group, printed with a `group/name` prefix per bench.
pub struct Group {
    prefix: &'static str,
    samples: usize,
    iters_per_sample: u32,
}

impl Group {
    /// Creates a group with default sampling (20 samples).
    pub fn new(prefix: &'static str) -> Group {
        Group {
            prefix,
            samples: 20,
            iters_per_sample: 10,
        }
    }

    /// Overrides the number of timed samples.
    pub fn sample_size(mut self, samples: usize) -> Group {
        self.samples = samples.max(3);
        self
    }

    /// Overrides the iterations averaged inside each sample.
    pub fn iters(mut self, iters: u32) -> Group {
        self.iters_per_sample = iters.max(1);
        self
    }

    /// Times `f`, printing `prefix/name  median min max` in
    /// nanoseconds per iteration.
    pub fn bench<R>(&self, name: &str, mut f: impl FnMut() -> R) {
        // Warmup: one untimed sample.
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        let mut per_iter_ns: Vec<u128> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(f());
            }
            per_iter_ns.push(t0.elapsed().as_nanos() / u128::from(self.iters_per_sample));
        }
        per_iter_ns.sort_unstable();
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{}/{name:<24} median {median:>12} ns/iter  (min {min}, max {max})",
            self.prefix
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let g = Group::new("self").sample_size(3).iters(2);
        let mut calls = 0u32;
        g.bench("noop", || calls += 1);
        // warmup (2) + 3 samples x 2 iters
        assert_eq!(calls, 8);
    }
}
