//! Regenerates Table 3: microbenchmark performance in CPU cycles for
//! VM, nested VM, nested VM + DVH, L3 VM, and L3 VM + DVH.

use dvh_bench::harness::{table3, Table3Row, TABLE3_PAPER};

fn print_row(r: &Table3Row) {
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10}",
        r.config, r.hypercall, r.dev_notify, r.program_timer, r.send_ipi
    );
}

fn main() {
    println!("Table 3: Microbenchmark performance in CPU cycles");
    println!(
        "{:<18} {:>10} {:>10} {:>12} {:>10}",
        "config", "Hypercall", "DevNotify", "ProgramTimer", "SendIPI"
    );
    println!("--- measured (this simulator) ---");
    let rows = table3();
    for r in &rows {
        print_row(r);
    }
    println!("--- paper (Lim & Nieh, ASPLOS 2020) ---");
    for r in &TABLE3_PAPER {
        print_row(r);
    }
    println!("--- measured / paper ---");
    for (m, p) in rows.iter().zip(TABLE3_PAPER.iter()) {
        println!(
            "{:<18} {:>9.2}x {:>9.2}x {:>11.2}x {:>9.2}x",
            m.config,
            m.hypercall as f64 / p.hypercall as f64,
            m.dev_notify as f64 / p.dev_notify as f64,
            m.program_timer as f64 / p.program_timer as f64,
            m.send_ipi as f64 / p.send_ipi as f64,
        );
    }
}
