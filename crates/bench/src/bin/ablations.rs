//! Ablation studies over the design choices DESIGN.md calls out:
//!
//! 1. **VMCS shadowing** — the hardware assist the paper's testbed has;
//!    quantifies how much it helps and shows it cannot remove guest
//!    hypervisor interventions (§5: shadowing reduces the cost of
//!    guest hypervisor execution but does not avoid guest
//!    hypervisor interventions.
//! 2. **Hardware transition cost sensitivity** — scale the raw
//!    exit/entry costs and show the nested/VM *ratio* is insensitive:
//!    exit multiplication is structural, not a property of slow
//!    hardware.
//! 3. **World-switch footprint** — the number of trapping operations
//!    in the guest hypervisor's exit/entry path is the root cause;
//!    sweep it and watch L2 cost move linearly.
//! 4. **vmcs12 dirty-field tracking** — KVM's optimization of merging
//!    only changed fields on nested entries; turn it off (full-field
//!    merge) and measure the resume-path cost.

use dvh_arch::costs::CostModel;
use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::{World, WorldConfig};

fn main() {
    println!("== Ablation 1: VMCS shadowing ==");
    for shadowing in [true, false] {
        let mut cfg = MachineConfig::baseline(2);
        cfg.world.vmcs_shadowing = shadowing;
        let mut m = Machine::build(cfg);
        let c = m.hypercall(0).as_u64();
        let iv = m.world().stats.total_interventions();
        println!(
            "  shadowing {:<5} L2 hypercall = {c:>7} cycles, interventions = {iv}",
            shadowing
        );
    }
    println!("  -> shadowing cuts cost but interventions remain (DVH removes them).");

    println!("\n== Ablation 2: hardware transition cost sensitivity ==");
    for scale in [1u64, 2, 4] {
        let mut costs = CostModel::calibrated();
        costs.vmexit_to_root = costs.vmexit_to_root * scale;
        costs.vmentry_from_root = costs.vmentry_from_root * scale;
        let l1 = {
            let mut m = Machine::build(MachineConfig {
                world: WorldConfig::baseline(1),
                costs: costs.clone(),
            });
            m.hypercall(0).as_u64()
        };
        let l2 = {
            let mut m = Machine::build(MachineConfig {
                world: WorldConfig::baseline(2),
                costs: costs.clone(),
            });
            m.hypercall(0).as_u64()
        };
        println!(
            "  exit/entry x{scale}: L1 = {l1:>6}, L2 = {l2:>7}, ratio = {:.1}x",
            l2 as f64 / l1 as f64
        );
    }
    println!("  -> the ~24x blow-up is structural, not a slow-hardware artifact.");

    println!("\n== Ablation 3: guest hypervisor world-switch footprint ==");
    for extra_cold in [0usize, 4, 8] {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        for _ in 0..extra_cold {
            w.profile.cold_reads.push(dvh_arch::vmx::field::HOST_RIP);
        }
        let c = w.guest_hypercall(0).as_u64();
        println!("  +{extra_cold} cold VMCS reads per exit: L2 hypercall = {c:>7} cycles");
    }
    println!("  -> every additional trapping operation in the guest hypervisor's");
    println!("     handler costs a full L0 round trip; the footprint IS the overhead.");

    println!("\n== Ablation 4: timer interrupt delivery path ==");
    {
        let mut m = Machine::build(MachineConfig::dvh(2));
        let t0 = m.now(0);
        m.world_mut().fire_timer(0, true);
        let posted = (m.now(0) - t0).as_u64();
        let mut m2 = Machine::build(MachineConfig::baseline(2));
        let t0 = m2.now(0);
        m2.world_mut().fire_timer(0, false);
        let forwarded = (m2.now(0) - t0).as_u64();
        println!(
            "  DVH direct (posted) delivery: {posted} cycles | \
             forwarded through the guest hypervisor: {forwarded} cycles ({:.1}x)",
            forwarded as f64 / posted as f64
        );
    }
}
