//! The §4 migration experiment: live migration of nested VMs with
//! paravirtual I/O vs DVH, with and without the guest hypervisor, and
//! the passthrough impossibility result.

use dvh_bench::harness::migration_experiment;

fn main() {
    println!("Live migration of nested VMs (268 Mb/s, QEMU default cap)");
    println!(
        "{:<40} {:>10} {:>12} {:>8} {:>9}",
        "scenario", "total (s)", "downtime(ms)", "pages", "verified"
    );
    let (rows, note) = migration_experiment();
    for r in &rows {
        println!(
            "{:<40} {:>10.3} {:>12.2} {:>8} {:>9}",
            r.scenario, r.total_secs, r.downtime_ms, r.pages, r.verified
        );
    }
    println!("{note}");
}
