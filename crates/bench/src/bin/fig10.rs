//! Regenerates the paper's Figure 10: see `dvh_bench::harness`.

use dvh_bench::harness::{fig10, print_figure};

fn main() {
    print_figure(&fig10());
}
