//! Regenerates the paper's Figure 9: see `dvh_bench::harness`.

use dvh_bench::harness::{fig9, print_figure};

fn main() {
    print_figure(&fig9());
}
