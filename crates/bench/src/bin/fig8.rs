//! Regenerates the paper's Figure 8: see `dvh_bench::harness`.

use dvh_bench::harness::{fig8, print_figure};

fn main() {
    print_figure(&fig8());
}
