//! One-shot regeneration of the paper's entire evaluation: Table 3,
//! Figures 7–10, the migration experiment, and the recursion and
//! ablation extensions — everything EXPERIMENTS.md records, in one
//! run.

use dvh_bench::harness;
use dvh_bench::parallel;

fn main() {
    // Every experiment cell is an independent deterministic
    // simulation; fan them across host cores. Output is byte-identical
    // at any worker count.
    let workers = parallel::available_workers();
    println!("DVH reproduction — full evaluation (deterministic)\n");

    println!("Table 3: microbenchmarks (cycles; paper values in parentheses)");
    let rows = harness::table3_with_workers(workers);
    for (m, p) in rows.iter().zip(harness::TABLE3_PAPER.iter()) {
        println!(
            "  {:<18} hc {:>9} ({:>9})  dev {:>9} ({:>9})  timer {:>9} ({:>9})  ipi {:>7} ({:>7})",
            m.config,
            m.hypercall,
            p.hypercall,
            m.dev_notify,
            p.dev_notify,
            m.program_timer,
            p.program_timer,
            m.send_ipi,
            p.send_ipi
        );
    }
    println!();

    for n in [7, 8, 9, 10] {
        let fig = harness::figure_with_workers(n, workers).expect("figure is defined");
        harness::print_figure(&fig);
        println!();
    }

    println!("Migration (268 Mb/s):");
    let (rows, note) = harness::migration_experiment();
    for r in &rows {
        println!(
            "  {:<40} {:.3} s total, {:.2} ms downtime, {} pages, verified={}",
            r.scenario, r.total_secs, r.downtime_ms, r.pages, r.verified
        );
    }
    println!("  {note}\n");

    println!("Recursion (hypercall cycles by depth; DVH timer stays flat):");
    for r in harness::recursion_experiment(5) {
        println!(
            "  L{}: hypercall {:>12}  timer {:>12}  timer+DVH {:>6}",
            r.levels, r.hypercall, r.timer, r.timer_dvh
        );
    }
}
