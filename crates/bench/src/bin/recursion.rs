//! The §3.5 recursion experiment (extension beyond the paper's L3):
//! vanilla exit multiplication keeps compounding with depth, while
//! recursive DVH stays flat. Real KVM cannot run more than three
//! levels; the simulator can.

use dvh_bench::harness::recursion_experiment;

fn main() {
    println!("Exit multiplication vs recursive DVH (cycles)");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>10}",
        "levels", "Hypercall", "ProgramTimer", "Timer+DVH", "growth"
    );
    let rows = recursion_experiment(5);
    let mut prev = None;
    for r in &rows {
        let growth = prev
            .map(|p: u64| format!("{:.1}x", r.hypercall as f64 / p as f64))
            .unwrap_or_else(|| "-".into());
        println!(
            "L{:<7} {:>14} {:>14} {:>14} {:>10}",
            r.levels, r.hypercall, r.timer, r.timer_dvh, growth
        );
        prev = Some(r.hypercall);
    }
}
