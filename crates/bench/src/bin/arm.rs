//! The ARM experiment the paper ran but omitted for space (§4: "DVH-VP
//! also significantly improved performance on ARM since I/O models are
//! platform-agnostic, but we omit these results due to space
//! constraints") — reconstructed here: application performance with a
//! KVM/ARM guest hypervisor, paravirtual I/O vs passthrough vs DVH-VP.

use dvh_core::{Machine, MachineConfig};
use dvh_workloads::{run_app, run_micro, AppId};

fn main() {
    println!("ARM64 (KVM/ARM guest hypervisor, GICv4, generic timers)");
    println!("\nMicrobenchmarks (cycles):");
    for (name, cfg) in [
        ("VM", MachineConfig::arm_baseline(1)),
        ("nested VM", MachineConfig::arm_baseline(2)),
        ("nested + DVH-VP", MachineConfig::arm_dvh_vp(2)),
    ] {
        let mut m = Machine::build(cfg);
        let r = run_micro(&mut m, 3);
        println!(
            "  {name:<16} hvc={:>7} devnotify={:>7} timer={:>7} sgi={:>7}",
            r.hypercall, r.dev_notify, r.program_timer, r.send_ipi
        );
    }

    println!("\nApplication overhead vs native:");
    println!(
        "{:<16} {:>8} {:>8} {:>10} {:>10}",
        "app", "VM", "nested", "nested+PT", "DVH-VP"
    );
    for app in AppId::ALL {
        let mix = app.mix();
        let mut row = Vec::new();
        for cfg in [
            MachineConfig::arm_baseline(1),
            MachineConfig::arm_baseline(2),
            MachineConfig::arm_passthrough(2),
            MachineConfig::arm_dvh_vp(2),
        ] {
            let mut m = Machine::build(cfg);
            row.push(run_app(&mut m, &mix, 300).overhead);
        }
        println!(
            "{:<16} {:>7.2}x {:>7.2}x {:>9.2}x {:>9.2}x",
            mix.name, row[0], row[1], row[2], row[3]
        );
    }
    println!("\nI/O models are platform-agnostic: virtual-passthrough removes the");
    println!("guest hypervisor from the I/O path on ARM exactly as it does on x86.");
}
