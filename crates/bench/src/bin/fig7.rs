//! Regenerates the paper's Figure 7: see `dvh_bench::harness`.

use dvh_bench::harness::{fig7, print_figure};

fn main() {
    print_figure(&fig7());
}
