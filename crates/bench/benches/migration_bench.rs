//! Criterion benches for the migration engine (the §4 migration
//! experiment) and the recursion extension.

use criterion::{criterion_group, criterion_main, Criterion};
use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
use dvh_memory::Gpa;
use dvh_migration::{migrate_nested_vm, MigrationConfig};
use std::hint::black_box;

fn bench_migration(c: &mut Criterion) {
    let mut g = c.benchmark_group("migration");
    g.sample_size(20);
    for (name, include_hv) in [("nested_vm", false), ("nested_vm_with_hv", true)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::build(MachineConfig::dvh(2));
                for i in 0..32u64 {
                    m.world_mut().guest_write_memory(
                        0,
                        Gpa::from_pfn(LEAF_BUF_BASE_PFN + i % 60),
                        &[i as u8; 128],
                    );
                }
                let cfg = MigrationConfig {
                    include_guest_hypervisor: include_hv,
                    ..MigrationConfig::default()
                };
                black_box(migrate_nested_vm(m.world_mut(), cfg, |_| {}).unwrap())
            })
        });
    }
    g.finish();
}

fn bench_recursion(c: &mut Criterion) {
    let mut g = c.benchmark_group("recursion/hypercall");
    g.sample_size(10);
    for levels in 1..=4usize {
        let mut m = Machine::build(MachineConfig::baseline(levels));
        g.bench_function(format!("l{levels}"), |b| {
            b.iter(|| black_box(m.hypercall(0)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_migration, bench_recursion);
criterion_main!(benches);
