//! Benches for the migration engine (the §4 migration experiment) and
//! the recursion extension.

use dvh_bench::tinybench::Group;
use dvh_core::{Machine, MachineConfig};
use dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
use dvh_memory::Gpa;
use dvh_migration::{migrate_nested_vm, MigrationConfig};

fn main() {
    let migration = Group::new("migration").sample_size(20).iters(2);
    for (name, include_hv) in [("nested_vm", false), ("nested_vm_with_hv", true)] {
        migration.bench(name, || {
            let mut m = Machine::build(MachineConfig::dvh(2));
            for i in 0..32u64 {
                m.world_mut().guest_write_memory(
                    0,
                    Gpa::from_pfn(LEAF_BUF_BASE_PFN + i % 60),
                    &[i as u8; 128],
                );
            }
            let cfg = MigrationConfig {
                include_guest_hypervisor: include_hv,
                ..MigrationConfig::default()
            };
            migrate_nested_vm(m.world_mut(), cfg, |_| {}).unwrap()
        });
    }

    let recursion = Group::new("recursion/hypercall").sample_size(10);
    for levels in 1..=4usize {
        let mut m = Machine::build(MachineConfig::baseline(levels));
        recursion.bench(&format!("l{levels}"), || m.hypercall(0));
    }
}
