//! Benches over the Figure 7/8/9/10 application experiments: each
//! bench runs one application's transaction loop on one
//! configuration. The harness binaries print the paper-style overhead
//! tables; these track simulator throughput.

use dvh_bench::tinybench::Group;
use dvh_core::{Machine, MachineConfig};
use dvh_workloads::{run_app, AppId};

const TXNS: u32 = 50;

fn main() {
    let fig7 = Group::new("fig7/apache").sample_size(15).iters(2);
    let mix = AppId::Apache.mix();
    for (name, cfg) in [
        ("vm", MachineConfig::baseline(1)),
        ("nested", MachineConfig::baseline(2)),
        ("nested_pt", MachineConfig::passthrough(2)),
        ("dvh_vp", MachineConfig::dvh_vp(2)),
        ("dvh", MachineConfig::dvh(2)),
    ] {
        fig7.bench(name, || {
            let mut m = Machine::build(cfg.clone());
            run_app(&mut m, &mix, TXNS)
        });
    }

    let all_apps = Group::new("fig7/all_apps_dvh").sample_size(15).iters(2);
    for app in AppId::ALL {
        let mix = app.mix();
        all_apps.bench(mix.name, || {
            let mut m = Machine::build(MachineConfig::dvh(2));
            run_app(&mut m, &mix, TXNS)
        });
    }

    let fig9 = Group::new("fig9/memcached_l3").sample_size(10).iters(2);
    for (name, cfg) in [
        ("l3", MachineConfig::baseline(3)),
        ("l3_dvh", MachineConfig::dvh(3)),
    ] {
        fig9.bench(name, || {
            let mut m = Machine::build(cfg.clone());
            run_app(&mut m, &AppId::Memcached.mix(), TXNS)
        });
    }

    let fig10 = Group::new("fig10/xen").sample_size(15).iters(2);
    for (name, cfg) in [
        ("nested_xen", MachineConfig::baseline(2).with_xen_guest()),
        ("dvh_vp_xen", MachineConfig::dvh_vp(2).with_xen_guest()),
    ] {
        fig10.bench(name, || {
            let mut m = Machine::build(cfg.clone());
            run_app(&mut m, &AppId::Memcached.mix(), TXNS)
        });
    }
}
