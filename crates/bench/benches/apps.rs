//! Criterion benches over the Figure 7/8/9/10 application
//! experiments: each bench runs one application's transaction loop on
//! one configuration. The harness binaries print the paper-style
//! overhead tables; these track simulator throughput.

use criterion::{criterion_group, criterion_main, Criterion};
use dvh_core::{Machine, MachineConfig};
use dvh_workloads::{run_app, AppId};
use std::hint::black_box;

const TXNS: u32 = 50;

fn bench_fig7_configs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7/apache");
    let mix = AppId::Apache.mix();
    for (name, cfg) in [
        ("vm", MachineConfig::baseline(1)),
        ("nested", MachineConfig::baseline(2)),
        ("nested_pt", MachineConfig::passthrough(2)),
        ("dvh_vp", MachineConfig::dvh_vp(2)),
        ("dvh", MachineConfig::dvh(2)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::build(cfg.clone());
                black_box(run_app(&mut m, &mix, TXNS))
            })
        });
    }
    g.finish();
}

fn bench_all_apps_dvh(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7/all_apps_dvh");
    for app in AppId::ALL {
        let mix = app.mix();
        g.bench_function(mix.name, |b| {
            b.iter(|| {
                let mut m = Machine::build(MachineConfig::dvh(2));
                black_box(run_app(&mut m, &mix, TXNS))
            })
        });
    }
    g.finish();
}

fn bench_fig9_l3(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig9/memcached_l3");
    g.sample_size(10);
    for (name, cfg) in [
        ("l3", MachineConfig::baseline(3)),
        ("l3_dvh", MachineConfig::dvh(3)),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::build(cfg.clone());
                black_box(run_app(&mut m, &AppId::Memcached.mix(), TXNS))
            })
        });
    }
    g.finish();
}

fn bench_fig10_xen(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10/xen");
    for (name, cfg) in [
        ("nested_xen", MachineConfig::baseline(2).with_xen_guest()),
        ("dvh_vp_xen", MachineConfig::dvh_vp(2).with_xen_guest()),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut m = Machine::build(cfg.clone());
                black_box(run_app(&mut m, &AppId::Memcached.mix(), TXNS))
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_fig7_configs, bench_all_apps_dvh, bench_fig9_l3, bench_fig10_xen
}
criterion_main!(benches);
