//! Criterion benches over the Table 3 microbenchmark experiments: one
//! bench per (microbenchmark, configuration) cell, measuring the
//! simulator's execution of the full trap-and-emulate chain. Use the
//! `table3` harness binary for the paper-style cycle numbers; these
//! benches track simulator performance regressions.

use criterion::{criterion_group, criterion_main, Criterion};
use dvh_core::{Machine, MachineConfig};
use std::hint::black_box;

type ConfigSet = Vec<(&'static str, fn() -> MachineConfig)>;

fn configs() -> ConfigSet {
    vec![
        ("vm", || MachineConfig::baseline(1)),
        ("nested", || MachineConfig::baseline(2)),
        ("nested_dvh", || MachineConfig::dvh(2)),
        ("l3", || MachineConfig::baseline(3)),
        ("l3_dvh", || MachineConfig::dvh(3)),
    ]
}

fn bench_hypercall(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/hypercall");
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        g.bench_function(name, |b| b.iter(|| black_box(m.hypercall(0))));
    }
    g.finish();
}

fn bench_dev_notify(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/dev_notify");
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        g.bench_function(name, |b| b.iter(|| black_box(m.device_notify(0))));
    }
    g.finish();
}

fn bench_program_timer(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/program_timer");
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        g.bench_function(name, |b| b.iter(|| black_box(m.program_timer(0))));
    }
    g.finish();
}

fn bench_send_ipi(c: &mut Criterion) {
    let mut g = c.benchmark_group("table3/send_ipi");
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        g.bench_function(name, |b| b.iter(|| black_box(m.send_ipi(0, 1))));
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_hypercall, bench_dev_notify, bench_program_timer, bench_send_ipi
}
criterion_main!(benches);
