//! Benches over the Table 3 microbenchmark experiments: one bench per
//! (microbenchmark, configuration) cell, measuring the simulator's
//! execution of the full trap-and-emulate chain. Use the `table3`
//! harness binary for the paper-style cycle numbers; these benches
//! track simulator performance regressions.

use dvh_bench::tinybench::Group;
use dvh_core::{Machine, MachineConfig};

type ConfigSet = Vec<(&'static str, fn() -> MachineConfig)>;

fn configs() -> ConfigSet {
    vec![
        ("vm", || MachineConfig::baseline(1)),
        ("nested", || MachineConfig::baseline(2)),
        ("nested_dvh", || MachineConfig::dvh(2)),
        ("l3", || MachineConfig::baseline(3)),
        ("l3_dvh", || MachineConfig::dvh(3)),
    ]
}

fn main() {
    let hypercall = Group::new("table3/hypercall").sample_size(20);
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        hypercall.bench(name, || m.hypercall(0));
    }
    let dev_notify = Group::new("table3/dev_notify").sample_size(20);
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        dev_notify.bench(name, || m.device_notify(0));
    }
    let program_timer = Group::new("table3/program_timer").sample_size(20);
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        program_timer.bench(name, || m.program_timer(0));
    }
    let send_ipi = Group::new("table3/send_ipi").sample_size(20);
    for (name, cfg) in configs() {
        let mut m = Machine::build(cfg());
        send_ipi.bench(name, || m.send_ipi(0, 1));
    }
}
