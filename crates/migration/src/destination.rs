//! The destination side of a migration: resume the nested VM on a
//! second machine from the transferred memory image and device state.
//!
//! §3.6: "We assume the same type of host hypervisor is used at the
//! source and destination so that the encapsulated state can be
//! interpreted correctly at the destination." [`resume_on`] enforces
//! exactly that: the destination must run the same configuration, and
//! the restore is verified, not assumed.

use crate::precopy::{MigrationError, MigrationReport};
use dvh_core::{migration_cap, IoModel, World};

/// Why a destination resume failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ResumeError {
    /// The destination machine's configuration differs from the
    /// source's (different "type of host hypervisor", §3.6).
    ConfigMismatch {
        /// Description of the first difference found.
        what: String,
    },
    /// The device state could not be restored.
    DeviceRestore(MigrationError),
}

impl std::fmt::Display for ResumeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ResumeError::ConfigMismatch { what } => {
                write!(f, "destination configuration mismatch: {what}")
            }
            ResumeError::DeviceRestore(e) => write!(f, "device state restore failed: {e}"),
        }
    }
}

impl std::error::Error for ResumeError {}

/// Applies a migration's transferred state to destination machine
/// `dst` and resumes it. Returns the number of pages installed.
///
/// # Errors
///
/// See [`ResumeError`].
pub fn resume_on(
    dst: &mut World,
    src_config: &dvh_hypervisor::WorldConfig,
    report: &MigrationReport,
) -> Result<u64, ResumeError> {
    if dst.config != *src_config {
        return Err(ResumeError::ConfigMismatch {
            what: format!(
                "source {:?}/{} levels vs destination {:?}/{} levels",
                src_config.io_model, src_config.levels, dst.config.io_model, dst.config.levels
            ),
        });
    }
    // Install the memory image.
    let pfns = report.image.resident_pfns();
    for pfn in &pfns {
        report
            .image
            .with_page(*pfn, |p| dst.host_mem.write_page(*pfn, p));
    }
    // Restore the encapsulated device state, when the configuration
    // carries one.
    if let Some(state) = &report.device_state {
        if dst.config.io_model == IoModel::VirtualPassthrough {
            migration_cap::restore_device_state(dst, state).map_err(|_| {
                ResumeError::DeviceRestore(MigrationError::MissingMigrationCapability)
            })?;
            debug_assert!(migration_cap::state_matches(dst, state));
        }
    }
    dst.resume_all();
    Ok(pfns.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precopy::{migrate_nested_vm, MigrationConfig};
    use dvh_core::{Machine, MachineConfig};
    use dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
    use dvh_memory::Gpa;

    fn loaded_source() -> Machine {
        let mut m = Machine::build(MachineConfig::dvh(2));
        for i in 0..24u64 {
            let data: Vec<u8> = (0..128u32)
                .map(|b| (b as u64 * (i + 1) % 253) as u8)
                .collect();
            m.world_mut()
                .guest_write_memory(0, Gpa::from_pfn(LEAF_BUF_BASE_PFN + i), &data);
        }
        // Some device history so the captured state is non-trivial.
        m.net_tx(0, 2, 800);
        m
    }

    #[test]
    fn end_to_end_source_to_destination() {
        let mut src = loaded_source();
        let report =
            migrate_nested_vm(src.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        assert!(report.verified);

        let mut dst = Machine::build(MachineConfig::dvh(2));
        let installed = resume_on(dst.world_mut(), &src.world().config, &report).unwrap();
        assert!(installed >= 24);

        // Destination memory is bit-identical to the source.
        for i in 0..24u64 {
            let a = src
                .world()
                .guest_read_memory(Gpa::from_pfn(LEAF_BUF_BASE_PFN + i), 128);
            let b = dst
                .world()
                .guest_read_memory(Gpa::from_pfn(LEAF_BUF_BASE_PFN + i), 128);
            assert_eq!(a, b, "page {i}");
        }
        // Device state round-tripped: the destination's capture equals
        // the transferred one.
        let transferred = report.device_state.expect("VP captures device state");
        assert!(migration_cap::state_matches(dst.world_mut(), &transferred));
        // And the destination VM runs.
        assert!(dst.hypercall(0).as_u64() > 0);
    }

    #[test]
    fn mismatched_destination_rejected() {
        let mut src = loaded_source();
        let report =
            migrate_nested_vm(src.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        let mut dst = Machine::build(MachineConfig::baseline(2)); // wrong io model
        let err = resume_on(dst.world_mut(), &src.world().config, &report).unwrap_err();
        assert!(matches!(err, ResumeError::ConfigMismatch { .. }));
    }

    #[test]
    fn paravirtual_migration_resumes_without_device_blob() {
        let mut src = Machine::build(MachineConfig::baseline(2));
        src.world_mut()
            .guest_write_memory(0, Gpa::from_pfn(LEAF_BUF_BASE_PFN), &[9; 256]);
        let report =
            migrate_nested_vm(src.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        assert!(report.device_state.is_none());
        let mut dst = Machine::build(MachineConfig::baseline(2));
        resume_on(dst.world_mut(), &src.world().config, &report).unwrap();
        assert_eq!(
            dst.world()
                .guest_read_memory(Gpa::from_pfn(LEAF_BUF_BASE_PFN), 4),
            vec![9, 9, 9, 9]
        );
    }
}
