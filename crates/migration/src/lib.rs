//! # dvh-migration
//!
//! Pre-copy live migration for the DVH simulator, reproducing the
//! migration evaluation of §4 and the design of §3.6:
//!
//! * migrating a **VM** or a **nested VM** that uses paravirtual I/O or
//!   DVH virtual-passthrough works, and DVH migration times are
//!   "roughly the same" as paravirtual ones;
//! * migrating with **physical device passthrough does not work** (no
//!   I/O interposition: unknown device state, untracked DMA);
//! * migrating the L1 VM *with* its guest hypervisor moves roughly
//!   twice the memory, and is "roughly twice as expensive".
//!
//! The engine is a standard round-based pre-copy: copy all pages, then
//! repeatedly re-copy pages dirtied while copying (CPU writes and —
//! thanks to the §3.6 PCI migration capability — device DMA), until
//! the remaining set is small enough to stop the VM and cut over.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bandwidth;
pub mod destination;
pub mod precopy;

pub use bandwidth::Bandwidth;
pub use destination::{resume_on, ResumeError};
pub use precopy::{migrate_nested_vm, MigrationConfig, MigrationError, MigrationReport};
