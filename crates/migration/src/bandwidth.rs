//! The migration transfer-bandwidth model.
//!
//! The paper's setup uses QEMU's default migration bandwidth cap of
//! 268 Mbps "to avoid interference with the running workload" (§4).

use dvh_arch::Cycles;
use std::fmt;

/// A transfer-rate model in megabits per second.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bandwidth {
    mbps: u64,
}

impl Bandwidth {
    /// QEMU's default migration bandwidth cap.
    pub const QEMU_DEFAULT: Bandwidth = Bandwidth { mbps: 268 };

    /// Creates a bandwidth of `mbps` megabits per second.
    ///
    /// # Panics
    ///
    /// Panics if `mbps` is zero.
    pub fn mbps(mbps: u64) -> Bandwidth {
        assert!(mbps > 0, "bandwidth must be positive");
        Bandwidth { mbps }
    }

    /// The raw rate in Mb/s.
    pub fn as_mbps(self) -> u64 {
        self.mbps
    }

    /// Simulated time to transfer `bytes` at this rate.
    pub fn transfer_time(self, bytes: u64) -> Cycles {
        // bits / (mbps * 1e6) seconds; in nanoseconds:
        // bytes*8*1000 / mbps.
        Cycles::from_nanos(bytes.saturating_mul(8).saturating_mul(1000) / self.mbps)
    }
}

impl Default for Bandwidth {
    fn default() -> Bandwidth {
        Bandwidth::QEMU_DEFAULT
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} Mb/s", self.mbps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qemu_default_rate() {
        assert_eq!(Bandwidth::default().as_mbps(), 268);
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let bw = Bandwidth::mbps(268);
        let one = bw.transfer_time(1 << 20);
        let two = bw.transfer_time(2 << 20);
        let ratio = two.as_u64() as f64 / one.as_u64() as f64;
        assert!((ratio - 2.0).abs() < 0.01);
    }

    #[test]
    fn a_megabyte_at_268mbps_is_about_31ms() {
        let t = Bandwidth::mbps(268).transfer_time(1 << 20);
        let ms = t.as_secs_f64() * 1e3;
        assert!((ms - 31.3).abs() < 1.0, "got {ms} ms");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        Bandwidth::mbps(0);
    }
}
