//! The round-based pre-copy migration engine.

use crate::bandwidth::Bandwidth;
use dvh_core::migration_cap;
use dvh_core::{Cycles, IoModel, World};
use dvh_memory::sparse::SparseMemory;
use dvh_memory::PAGE_SIZE;
use std::fmt;

/// Configuration for one migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationConfig {
    /// Transfer bandwidth (QEMU default: 268 Mb/s).
    pub bandwidth: Bandwidth,
    /// Stop-and-copy threshold: when at most this many pages remain
    /// dirty, stop the VM and cut over.
    pub downtime_threshold_pages: u64,
    /// Give up (and force cut-over) after this many pre-copy rounds.
    pub max_rounds: u32,
    /// Whether the whole L1 VM (guest hypervisor included) migrates,
    /// rather than the nested VM alone. Roughly doubles the memory
    /// moved (§4).
    pub include_guest_hypervisor: bool,
}

impl Default for MigrationConfig {
    fn default() -> MigrationConfig {
        MigrationConfig {
            bandwidth: Bandwidth::QEMU_DEFAULT,
            downtime_threshold_pages: 8,
            max_rounds: 30,
            include_guest_hypervisor: false,
        }
    }
}

/// Why a migration could not start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationError {
    /// Physical device passthrough: the hypervisor has no view of the
    /// device state and no dirty tracking for its DMA ("Migration does
    /// not work using passthrough", §4).
    PassthroughNotMigratable,
    /// The virtual-passthrough device lacks the §3.6 migration
    /// capability.
    MissingMigrationCapability,
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::PassthroughNotMigratable => {
                write!(f, "physical passthrough devices cannot be migrated")
            }
            MigrationError::MissingMigrationCapability => {
                write!(f, "virtual device lacks the PCI migration capability")
            }
        }
    }
}

impl std::error::Error for MigrationError {}

/// One pre-copy round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Round {
    /// Pages transferred this round.
    pub pages: u64,
    /// Time spent transferring them.
    pub time: Cycles,
}

/// The outcome of a migration.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// Per-round page counts and times.
    pub rounds: Vec<Round>,
    /// Pages copied during the stop-and-copy phase.
    pub downtime_pages: u64,
    /// VM downtime (stop-and-copy transfer + device-state transfer).
    pub downtime: Cycles,
    /// Total wall time of the migration.
    pub total_time: Cycles,
    /// Total pages sent across all rounds.
    pub total_pages: u64,
    /// Encapsulated device-state bytes transferred during cut-over.
    pub device_state_bytes: u64,
    /// Whether pre-copy converged before `max_rounds`.
    pub converged: bool,
    /// Whether destination memory verified identical to the source.
    pub verified: bool,
    /// The transferred memory image (what arrived at the destination).
    pub image: SparseMemory,
    /// The encapsulated device state transferred at cut-over, if the
    /// configuration has one to capture.
    pub device_state: Option<migration_cap::DeviceState>,
}

/// Live-migrates the nested VM (or, with
/// [`MigrationConfig::include_guest_hypervisor`], the whole L1 VM)
/// running in `w`, while `workload` keeps executing between rounds and
/// dirtying memory.
///
/// The function really copies pages into a destination memory image and
/// verifies the result, so a faithful transfer is checked, not assumed.
///
/// # Errors
///
/// See [`MigrationError`].
pub fn migrate_nested_vm(
    w: &mut World,
    cfg: MigrationConfig,
    mut workload: impl FnMut(&mut World),
) -> Result<MigrationReport, MigrationError> {
    match w.config.io_model {
        IoModel::Passthrough => return Err(MigrationError::PassthroughNotMigratable),
        IoModel::VirtualPassthrough => {
            if w.virtio[0].pci().migration_cap().is_none() {
                return Err(MigrationError::MissingMigrationCapability);
            }
            migration_cap::enable_dirty_logging(w, 0xA000)
                .map_err(|_| MigrationError::MissingMigrationCapability)?;
        }
        IoModel::Virtio => {
            // The guest hypervisor interposes on all I/O itself; its
            // own logging suffices, no capability needed.
        }
    }

    let mut dest = SparseMemory::new();
    let mut rounds = Vec::new();
    let mut total_pages = 0u64;
    let mut total_time = Cycles::ZERO;

    // Round 0: the full working set (every resident page of the VM).
    // With the guest hypervisor included, its own memory goes too —
    // roughly doubling the transfer (§4).
    let resident = w.host_mem.resident_pfns();
    let hv_factor = if cfg.include_guest_hypervisor { 2 } else { 1 };
    let mut pending: Vec<u64> = resident;
    // Seed the first round even if the guest never touched memory yet.
    if pending.is_empty() {
        pending = vec![w.leaf_host_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN)];
    }
    let mut converged = false;

    for _ in 0..cfg.max_rounds {
        let page_count = pending.len() as u64 * hv_factor;
        let time = cfg.bandwidth.transfer_time(page_count * PAGE_SIZE);
        for pfn in &pending {
            w.host_mem.with_page(*pfn, |p| dest.write_page(*pfn, p));
        }
        rounds.push(Round {
            pages: page_count,
            time,
        });
        w.observe(|m| {
            use dvh_obs::metrics::names;
            use dvh_obs::MetricKey;
            m.observe(MetricKey::plain(names::PRECOPY_ROUND_PAGES), page_count);
            m.observe_cycles(MetricKey::plain(names::PRECOPY_ROUND_CYCLES), time);
        });
        total_pages += page_count;
        total_time += time;

        // The VM keeps running while we copied; harvest what it (and
        // its devices) dirtied.
        workload(w);
        let dirtied = harvest(w);
        let newly: Vec<u64> = dirtied
            .into_iter()
            .map(|leaf_pfn| w.leaf_host_pfn(leaf_pfn))
            .collect();
        if newly.len() as u64 <= cfg.downtime_threshold_pages {
            pending = newly;
            converged = true;
            break;
        }
        pending = newly;
    }

    // Stop-and-copy: the VM is paused (interrupts queue in its PI
    // descriptors, nothing is lost), the remaining dirty pages and the
    // device state move, and the VM resumes at the destination.
    w.pause_all();
    let (device_state, captured) = match w.config.io_model {
        IoModel::VirtualPassthrough => {
            let s = migration_cap::capture_device_state(w)
                .map_err(|_| MigrationError::MissingMigrationCapability)?;
            (s.len() as u64, Some(s))
        }
        _ => (256, None), // the owner hypervisor's own virtio state
    };
    for pfn in &pending {
        w.host_mem.with_page(*pfn, |p| dest.write_page(*pfn, p));
    }
    let downtime_pages = pending.len() as u64;
    let downtime = cfg
        .bandwidth
        .transfer_time(downtime_pages * PAGE_SIZE + device_state);
    total_pages += downtime_pages;
    total_time += downtime;

    w.resume_all();

    // Verify the destination image matches the source for every page
    // ever transferred.
    let verified = dest
        .resident_pfns()
        .iter()
        .all(|pfn| dest.with_page(*pfn, |a| w.host_mem.with_page(*pfn, |b| a == b)));

    Ok(MigrationReport {
        rounds,
        downtime_pages,
        downtime,
        total_time,
        total_pages,
        device_state_bytes: device_state,
        converged,
        verified,
        image: dest,
        device_state: captured,
    })
}

/// Harvests dirty leaf pages from whatever tracking the configuration
/// provides.
fn harvest(w: &mut World) -> Vec<u64> {
    match w.config.io_model {
        IoModel::VirtualPassthrough => migration_cap::harvest_dirty_pages(w).unwrap_or_default(),
        _ => w.leaf_dirty.harvest(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_core::{Machine, MachineConfig};
    use dvh_memory::Gpa;

    fn touch_some_memory(m: &mut Machine) {
        let base = dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
        for i in 0..16u64 {
            m.world_mut()
                .guest_write_memory(0, Gpa::from_pfn(base + i), &[i as u8; 64]);
        }
    }

    #[test]
    fn passthrough_cannot_migrate() {
        let mut m = Machine::build(MachineConfig::passthrough(2));
        let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |_| {});
        assert_eq!(r.unwrap_err(), MigrationError::PassthroughNotMigratable);
    }

    #[test]
    fn dvh_nested_vm_migrates_and_verifies() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        touch_some_memory(&mut m);
        let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        assert!(r.converged);
        assert!(r.verified);
        assert!(r.total_pages >= 16);
        assert!(r.device_state_bytes > 0);
    }

    #[test]
    fn paravirtual_nested_vm_migrates_too() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        touch_some_memory(&mut m);
        let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        assert!(r.converged && r.verified);
    }

    #[test]
    fn dvh_and_paravirtual_times_are_roughly_the_same() {
        // §4: "Migration times for nested VMs using DVH versus
        // paravirtual I/O were roughly the same."
        let mut dvh = Machine::build(MachineConfig::dvh(2));
        touch_some_memory(&mut dvh);
        let t_dvh = migrate_nested_vm(dvh.world_mut(), MigrationConfig::default(), |_| {})
            .unwrap()
            .total_time;

        let mut pv = Machine::build(MachineConfig::baseline(2));
        touch_some_memory(&mut pv);
        let t_pv = migrate_nested_vm(pv.world_mut(), MigrationConfig::default(), |_| {})
            .unwrap()
            .total_time;
        let (lo, hi) = if t_dvh < t_pv {
            (t_dvh, t_pv)
        } else {
            (t_pv, t_dvh)
        };
        assert!(
            hi.as_u64() <= lo.as_u64() * 12 / 10,
            "DVH {t_dvh} vs paravirtual {t_pv}"
        );
    }

    #[test]
    fn including_guest_hypervisor_doubles_cost() {
        // §4: migrating the nested VM with its guest hypervisor "was
        // roughly twice as expensive ... due to the extra memory".
        let mut a = Machine::build(MachineConfig::dvh(2));
        touch_some_memory(&mut a);
        let alone = migrate_nested_vm(a.world_mut(), MigrationConfig::default(), |_| {})
            .unwrap()
            .total_time;

        let mut b = Machine::build(MachineConfig::dvh(2));
        touch_some_memory(&mut b);
        let with_hv = migrate_nested_vm(
            b.world_mut(),
            MigrationConfig {
                include_guest_hypervisor: true,
                ..MigrationConfig::default()
            },
            |_| {},
        )
        .unwrap()
        .total_time;
        let ratio = with_hv.as_u64() as f64 / alone.as_u64() as f64;
        assert!((1.6..=2.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dirtying_workload_forces_extra_rounds() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        touch_some_memory(&mut m);
        let mut remaining = 3u32;
        let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |w| {
            // Keep dirtying pages for a few rounds, then stop.
            if remaining > 0 {
                remaining -= 1;
                for i in 0..20u64 {
                    w.guest_write_memory(
                        0,
                        Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN + i),
                        &[0xAB; 32],
                    );
                }
            }
        })
        .unwrap();
        assert!(r.rounds.len() >= 3, "rounds: {}", r.rounds.len());
        assert!(r.converged && r.verified);
    }

    #[test]
    fn non_converging_workload_hits_round_cap() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        touch_some_memory(&mut m);
        let cfg = MigrationConfig {
            max_rounds: 5,
            ..MigrationConfig::default()
        };
        let r = migrate_nested_vm(m.world_mut(), cfg, |w| {
            for i in 0..30u64 {
                w.guest_write_memory(
                    0,
                    Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN + i),
                    &[0xCD; 32],
                );
            }
        })
        .unwrap();
        assert!(!r.converged);
        assert_eq!(r.rounds.len(), 5);
        // Forced cut-over still transfers everything faithfully.
        assert!(r.verified);
    }

    #[test]
    fn metrics_capture_precopy_rounds() {
        use dvh_obs::metrics::names;
        use dvh_obs::MetricKey;
        let mut m = Machine::build(MachineConfig::dvh(2));
        m.world_mut().enable_metrics();
        touch_some_memory(&mut m);
        let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        let reg = m.world_mut().take_metrics().unwrap();
        let pages = reg
            .histogram(&MetricKey::plain(names::PRECOPY_ROUND_PAGES))
            .expect("round-size histogram populated");
        assert_eq!(pages.count() as usize, r.rounds.len());
        assert_eq!(pages.sum(), r.rounds.iter().map(|x| x.pages).sum::<u64>());
        let cycles = reg
            .histogram(&MetricKey::plain(names::PRECOPY_ROUND_CYCLES))
            .expect("round-time histogram populated");
        assert_eq!(cycles.count() as usize, r.rounds.len());
        assert!(pages.is_consistent() && cycles.is_consistent());
    }

    #[test]
    fn downtime_is_a_small_fraction_of_total() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        for i in 0..200u64 {
            m.world_mut().guest_write_memory(
                0,
                Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN + (i % 60)),
                &[1; 128],
            );
        }
        let r = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |_| {}).unwrap();
        assert!(r.downtime.as_u64() * 4 < r.total_time.as_u64());
    }
}
