//! The metrics registry: counters, gauges, and fixed-bucket
//! histograms keyed by (name, level, reason, tag).
//!
//! Everything is deterministic: keys order lexicographically
//! (`BTreeMap`), histogram buckets are the fixed geometric ladder of
//! [`CYCLE_BUCKET_BOUNDS`], and [`MetricsRegistry::snapshot`] renders
//! one sorted line per metric — two identical runs produce
//! byte-identical snapshots, so `diff` is a regression test.

use dvh_arch::cycles::{cycle_bucket_index, CYCLE_BUCKET_BOUNDS};
use dvh_arch::vmx::ExitReason;
use dvh_arch::Cycles;
use std::collections::BTreeMap;
use std::fmt;

/// Metric name vocabulary. Fixed strings so keys are comparable across
/// crates without allocation; the snapshot format and DESIGN.md §10
/// document each.
pub mod names {
    /// Histogram, keyed (level, reason): simulated cycles attributed
    /// to each *outermost* exit — the metrics twin of
    /// `RunStats::cycles_by_reason`, which the checker proves it
    /// conserves against.
    pub const EXIT_CYCLES: &str = "exit_cycles";
    /// Histogram, keyed (level): end-to-end latency of delivering one
    /// exit to a guest hypervisor at that level (reflection through
    /// re-entry, nested traps included).
    pub const INTERVENTION_CYCLES: &str = "intervention_cycles";
    /// Counter, tagged by mechanism: exits a DVH extension handled
    /// entirely at L0.
    pub const DVH_INTERCEPTS: &str = "dvh_intercepts";
    /// Counter, tagged `posted` or `injected`: leaf interrupt
    /// deliveries by path.
    pub const IRQ_DELIVERIES: &str = "irq_deliveries";
    /// Histogram: cycles a halted vCPU had been idle when an interrupt
    /// woke it.
    pub const IRQ_WAKE_IDLE_CYCLES: &str = "irq_wake_idle_cycles";
    /// Histogram: pages transferred per pre-copy round (bucketed on
    /// the same ladder; a page count, not cycles).
    pub const PRECOPY_ROUND_PAGES: &str = "precopy_round_pages";
    /// Histogram: simulated cycles per pre-copy round.
    pub const PRECOPY_ROUND_CYCLES: &str = "precopy_round_cycles";
    /// Counter, tagged by queue: lifetime doorbell kicks.
    pub const VIRTQUEUE_KICKS: &str = "virtqueue_kicks";
    /// Counter, tagged by queue: lifetime completion interrupts.
    pub const VIRTQUEUE_INTERRUPTS: &str = "virtqueue_interrupts";
    /// Gauge, tagged by queue: descriptors currently in flight.
    pub const VIRTQUEUE_IN_FLIGHT: &str = "virtqueue_in_flight";
    /// Counter, tagged by device: vhost TX packets.
    pub const VHOST_TX_PACKETS: &str = "vhost_tx_packets";
    /// Counter, tagged by device: vhost RX packets.
    pub const VHOST_RX_PACKETS: &str = "vhost_rx_packets";
    /// Counter, tagged by device: vhost TX bytes.
    pub const VHOST_TX_BYTES: &str = "vhost_tx_bytes";
    /// Counter, tagged by device: vhost RX bytes.
    pub const VHOST_RX_BYTES: &str = "vhost_rx_bytes";
    /// Counter, tagged by device: frames vhost dropped.
    pub const VHOST_DROPPED: &str = "vhost_dropped";
}

/// A metric key: a fixed name plus the optional dimensions the engine
/// attributes by. Ordering (and therefore snapshot order) is
/// lexicographic on (name, level, reason, tag).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name from [`names`].
    pub name: &'static str,
    /// Virtualization level, where the metric is per-level.
    pub level: Option<usize>,
    /// Architectural exit reason, where the metric is per-reason.
    pub reason: Option<ExitReason>,
    /// Free-form static tag (mechanism, queue, delivery path).
    pub tag: Option<&'static str>,
}

impl MetricKey {
    /// A key with no dimensions.
    pub const fn plain(name: &'static str) -> MetricKey {
        MetricKey {
            name,
            level: None,
            reason: None,
            tag: None,
        }
    }

    /// A per-level key.
    pub const fn at_level(name: &'static str, level: usize) -> MetricKey {
        MetricKey {
            name,
            level: Some(level),
            reason: None,
            tag: None,
        }
    }

    /// A per-(level, reason) key — the exit-attribution shape.
    pub const fn exit(name: &'static str, level: usize, reason: ExitReason) -> MetricKey {
        MetricKey {
            name,
            level: Some(level),
            reason: Some(reason),
            tag: None,
        }
    }

    /// A tagged key.
    pub const fn tagged(name: &'static str, tag: &'static str) -> MetricKey {
        MetricKey {
            name,
            level: None,
            reason: None,
            tag: Some(tag),
        }
    }
}

impl fmt::Display for MetricKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)?;
        if self.level.is_none() && self.reason.is_none() && self.tag.is_none() {
            return Ok(());
        }
        write!(f, "{{")?;
        let mut sep = "";
        if let Some(level) = self.level {
            write!(f, "level={level}")?;
            sep = ",";
        }
        if let Some(reason) = self.reason {
            write!(f, "{sep}reason={reason}")?;
            sep = ",";
        }
        if let Some(tag) = self.tag {
            write!(f, "{sep}tag={tag}")?;
        }
        write!(f, "}}")
    }
}

/// Index of the explicit overflow bucket: where every observation
/// above the top ladder bound (2^23 cycles) lands. The overflow bucket
/// participates in `count` like any other bucket (so
/// [`Histogram::is_consistent`] and the checker's conservation lints
/// account for it), and percentile math reports ranks falling there as
/// [`crate::percentiles::OVERFLOW_VALUE`] rather than inventing a
/// finite bound.
pub const OVERFLOW_BUCKET: usize = CYCLE_BUCKET_BOUNDS.len();

/// Bucket count of every histogram: one per bound plus the overflow
/// bucket.
pub const HISTOGRAM_BUCKETS: usize = CYCLE_BUCKET_BOUNDS.len() + 1;

/// A fixed-bucket histogram over the shared cycle ladder.
///
/// `sum` is exact (saturating only at `u64::MAX`, like [`Cycles`]
/// arithmetic), which is what lets the checker prove histogram totals
/// conserve against the engine's attribution ledger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[cycle_bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Exact sum of observed values.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Per-bucket counts (last entry is the overflow bucket).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Observations above the top ladder bound (2^23 cycles) — the
    /// explicit overflow bucket's count.
    pub fn overflow(&self) -> u64 {
        self.buckets[OVERFLOW_BUCKET]
    }

    /// Whether the bucket counts add up to `count` — the structural
    /// invariant the checker's metrics pass verifies.
    pub fn is_consistent(&self) -> bool {
        self.buckets.iter().sum::<u64>() == self.count
    }

    /// Adds every bucket, count, and sum of `other` into this
    /// histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// The registry: every metric the instrumented crates feed.
///
/// Purely host-side state — recording never advances simulated time —
/// and deterministic: iteration and snapshots follow `BTreeMap` key
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<MetricKey, u64>,
    gauges: BTreeMap<MetricKey, i64>,
    histograms: BTreeMap<MetricKey, Histogram>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Increments a counter by one.
    pub fn inc(&mut self, key: MetricKey) {
        self.add(key, 1);
    }

    /// Increments a counter by `n`.
    pub fn add(&mut self, key: MetricKey, n: u64) {
        *self.counters.entry(key).or_insert(0) += n;
    }

    /// Sets a counter to an absolute value (for exporting lifetime
    /// counters maintained elsewhere, e.g. virtqueue kick counts).
    pub fn set_counter(&mut self, key: MetricKey, value: u64) {
        self.counters.insert(key, value);
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, key: MetricKey, value: i64) {
        self.gauges.insert(key, value);
    }

    /// Records a histogram observation.
    pub fn observe(&mut self, key: MetricKey, value: u64) {
        self.histograms.entry(key).or_default().observe(value);
    }

    /// Records a cycle-valued histogram observation.
    pub fn observe_cycles(&mut self, key: MetricKey, value: Cycles) {
        self.observe(key, value.as_u64());
    }

    /// Attributes `spent` cycles to the outermost exit (level, reason)
    /// — the engine's per-exit instrumentation point.
    pub fn observe_exit(&mut self, level: usize, reason: ExitReason, spent: Cycles) {
        self.observe_cycles(MetricKey::exit(names::EXIT_CYCLES, level, reason), spent);
    }

    /// Records one guest-hypervisor intervention latency at `level`.
    pub fn observe_intervention(&mut self, level: usize, spent: Cycles) {
        self.observe_cycles(
            MetricKey::at_level(names::INTERVENTION_CYCLES, level),
            spent,
        );
    }

    /// Counts one DVH interception by `mechanism`.
    pub fn record_dvh(&mut self, mechanism: &'static str) {
        self.inc(MetricKey::tagged(names::DVH_INTERCEPTS, mechanism));
    }

    /// A counter's value (0 when never touched).
    pub fn counter(&self, key: &MetricKey) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }

    /// A gauge's value, if set.
    pub fn gauge(&self, key: &MetricKey) -> Option<i64> {
        self.gauges.get(key).copied()
    }

    /// A histogram, if any observation was recorded under `key`.
    pub fn histogram(&self, key: &MetricKey) -> Option<&Histogram> {
        self.histograms.get(key)
    }

    /// Iterates every histogram in key order.
    pub fn histograms(&self) -> impl Iterator<Item = (&MetricKey, &Histogram)> {
        self.histograms.iter()
    }

    /// Iterates every counter in key order.
    pub fn counters(&self) -> impl Iterator<Item = (&MetricKey, u64)> {
        self.counters.iter().map(|(k, &v)| (k, v))
    }

    /// Iterates every gauge in key order.
    pub fn gauges(&self) -> impl Iterator<Item = (&MetricKey, i64)> {
        self.gauges.iter().map(|(k, &v)| (k, v))
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The per-(level, reason) cycle totals of the
    /// [`names::EXIT_CYCLES`] histograms — shaped exactly like the
    /// engine's `cycles_by_reason` ledger so the checker can compare
    /// them entry by entry.
    pub fn exit_cycle_totals(&self) -> BTreeMap<(usize, ExitReason), Cycles> {
        self.histograms
            .iter()
            .filter(|(k, _)| k.name == names::EXIT_CYCLES)
            .filter_map(|(k, h)| {
                let (level, reason) = (k.level?, k.reason?);
                Some(((level, reason), Cycles::new(h.sum())))
            })
            .collect()
    }

    /// Adds every metric of `other` into this registry (sweep-cell
    /// aggregation). Gauges take the other registry's value.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(*k, *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(*k).or_default().merge(h);
        }
    }

    /// Renders the deterministic snapshot: one line per metric, sorted
    /// by kind then key, buckets inline. Identical runs produce
    /// byte-identical snapshots.
    pub fn snapshot(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        for (k, v) in &self.counters {
            let _ = writeln!(out, "counter {k} {v}");
        }
        for (k, v) in &self.gauges {
            let _ = writeln!(out, "gauge {k} {v}");
        }
        for (k, h) in &self.histograms {
            let _ = write!(
                out,
                "histogram {k} count={} sum={} buckets=",
                h.count, h.sum
            );
            for (i, b) in h.buckets.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_sum() {
        let mut h = Histogram::default();
        h.observe(100); // bucket 0 (<= 256)
        h.observe(300); // bucket 1 (<= 512)
        h.observe(u64::MAX); // overflow bucket, saturating sum
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), u64::MAX);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[1], 1);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 1], 1);
        assert!(h.is_consistent());
    }

    #[test]
    fn overflow_boundary_is_exact() {
        // The ladder's top bound is inclusive: exactly 2^23 is the last
        // bounded bucket; one more cycle is overflow. Both are counted
        // (is_consistent holds), so conservation lints see every
        // observation regardless of magnitude.
        let mut h = Histogram::default();
        h.observe(1 << 23);
        assert_eq!(h.overflow(), 0);
        assert_eq!(h.buckets()[HISTOGRAM_BUCKETS - 2], 1);
        h.observe((1 << 23) + 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.buckets()[OVERFLOW_BUCKET], 1);
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), (1 << 24) + 1);
        assert!(h.is_consistent());
    }

    #[test]
    fn overflow_merges_like_any_bucket() {
        let mut a = Histogram::default();
        a.observe(u64::MAX);
        let mut b = Histogram::default();
        b.observe((1 << 23) + 7);
        a.merge(&b);
        assert_eq!(a.overflow(), 2);
        assert!(a.is_consistent());
    }

    #[test]
    fn exit_totals_mirror_ledger_shape() {
        let mut m = MetricsRegistry::new();
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(100));
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(50));
        m.observe_exit(1, ExitReason::Hlt, Cycles::new(7));
        let totals = m.exit_cycle_totals();
        assert_eq!(totals[&(2, ExitReason::Vmcall)], Cycles::new(150));
        assert_eq!(totals[&(1, ExitReason::Hlt)], Cycles::new(7));
        assert_eq!(totals.len(), 2);
    }

    #[test]
    fn snapshot_is_deterministic_and_sorted() {
        let mut a = MetricsRegistry::new();
        a.record_dvh("vtimer");
        a.observe_exit(2, ExitReason::MsrWrite, Cycles::new(1000));
        a.set_gauge(MetricKey::tagged(names::VIRTQUEUE_IN_FLIGHT, "net-tx"), 3);
        let mut b = MetricsRegistry::new();
        // Same data, different insertion order.
        b.set_gauge(MetricKey::tagged(names::VIRTQUEUE_IN_FLIGHT, "net-tx"), 3);
        b.observe_exit(2, ExitReason::MsrWrite, Cycles::new(1000));
        b.record_dvh("vtimer");
        assert_eq!(a.snapshot(), b.snapshot());
        let snap = a.snapshot();
        assert!(
            snap.contains("counter dvh_intercepts{tag=vtimer} 1"),
            "{snap}"
        );
        assert!(
            snap.contains("histogram exit_cycles{level=2,reason=MsrWrite}"),
            "{snap}"
        );
        assert!(
            snap.contains("gauge virtqueue_in_flight{tag=net-tx} 3"),
            "{snap}"
        );
    }

    #[test]
    fn merge_adds_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        a.observe_exit(2, ExitReason::Vmcall, Cycles::new(10));
        a.inc(MetricKey::tagged(names::IRQ_DELIVERIES, "posted"));
        let mut b = MetricsRegistry::new();
        b.observe_exit(2, ExitReason::Vmcall, Cycles::new(5));
        b.inc(MetricKey::tagged(names::IRQ_DELIVERIES, "posted"));
        a.merge(&b);
        assert_eq!(
            a.exit_cycle_totals()[&(2, ExitReason::Vmcall)],
            Cycles::new(15)
        );
        assert_eq!(
            a.counter(&MetricKey::tagged(names::IRQ_DELIVERIES, "posted")),
            2
        );
        let h = a
            .histogram(&MetricKey::exit(names::EXIT_CYCLES, 2, ExitReason::Vmcall))
            .unwrap();
        assert_eq!(h.count(), 2);
        assert!(h.is_consistent());
    }

    #[test]
    fn key_display_formats_dimensions() {
        assert_eq!(MetricKey::plain("x").to_string(), "x");
        assert_eq!(MetricKey::at_level("x", 2).to_string(), "x{level=2}");
        assert_eq!(
            MetricKey::exit("x", 2, ExitReason::Hlt).to_string(),
            "x{level=2,reason=Hlt}"
        );
        assert_eq!(MetricKey::tagged("x", "t").to_string(), "x{tag=t}");
    }
}
