//! A minimal JSON value model: parse and canonical serialization.
//!
//! The workspace is dependency-free by design, so trace export cannot
//! lean on serde; this module is the round-trip half of the contract —
//! anything the chrome exporter emits parses back into an identical
//! [`Value`], which is how tests and the checker certify exported
//! traces instead of trusting the string builder.
//!
//! Numbers that look integral and fit `i64` parse as [`Value::Int`]
//! (cycle counts — the common case — round-trip exactly); everything
//! else falls back to [`Value::Float`]. Object members keep insertion
//! order, so serialize→parse→serialize is the identity on exporter
//! output.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integral number that fits `i64`.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; members keep insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a member of an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn items(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serializes canonically (no whitespace, members in stored
    /// order).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        use fmt::Write as _;
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Value::Float(x) => {
                // `{}` on f64 is the shortest round-tripping form; JSON
                // has no NaN/Inf, so clamp those to null. Integral
                // floats keep one decimal place so they parse back as
                // Float, not Int.
                if !x.is_finite() {
                    out.push_str("null");
                } else if x.fract() == 0.0 {
                    let _ = write!(out, "{x:.1}");
                } else {
                    let _ = write!(out, "{x}");
                }
            }
            Value::Str(s) => write_escaped(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Value::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset for malformed input or
/// trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = std::str::from_utf8(hex)
                                .ok()
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or(format!("bad \\u escape at byte {start}"))?;
                            // Surrogates are not produced by our
                            // exporter; map unpaired ones to the
                            // replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {start}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = text.chars().next().ok_or("unterminated string")?;
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        if integral {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exporter_shapes() {
        let v = Value::Obj(vec![
            (
                "traceEvents".into(),
                Value::Arr(vec![Value::Obj(vec![
                    ("name".into(), Value::Str("exit L2 Vmcall".into())),
                    ("ph".into(), Value::Str("X".into())),
                    ("ts".into(), Value::Int(123_456)),
                    ("dur".into(), Value::Int(789)),
                    (
                        "args".into(),
                        Value::Obj(vec![("outermost".into(), Value::Bool(true))]),
                    ),
                ])]),
            ),
            ("displayTimeUnit".into(), Value::Str("ns".into())),
        ]);
        let text = v.to_json();
        let back = parse(&text).unwrap();
        assert_eq!(back, v);
        // serialize -> parse -> serialize is the identity.
        assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parses_numbers_strings_escapes() {
        let v = parse(r#"{"a": -12, "b": 3.5, "c": "q\"\nA", "d": [true, false, null]}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_int(), Some(-12));
        assert_eq!(v.get("b").unwrap(), &Value::Float(3.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("q\"\nA"));
        assert_eq!(
            v.get("d").unwrap().items().unwrap(),
            &[Value::Bool(true), Value::Bool(false), Value::Null]
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn floats_stay_floats() {
        let v = Value::Float(2.0);
        assert_eq!(v.to_json(), "2.0");
        assert_eq!(parse("2.0").unwrap(), Value::Float(2.0));
        // Large integers beyond i64 fall back to float parsing.
        assert!(matches!(
            parse("99999999999999999999").unwrap(),
            Value::Float(_)
        ));
    }

    #[test]
    fn unicode_passes_through() {
        let v = Value::Str("cpu0 → L2 ✓".into());
        assert_eq!(parse(&v.to_json()).unwrap(), v);
    }
}
