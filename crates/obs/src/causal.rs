//! The causality layer: rebuilding the full causal tree of every
//! outermost exit from a trace event stream.
//!
//! The paper's central claim is *exit multiplication* — one L2 exit
//! fanning out into ~24x L1 handler traps per level (Table 3) — and
//! that fan-out is exactly a tree: the L2 exit is the root, each
//! reflected L1 handler operation is a child, and each L0 round trip
//! those operations cause is a grandchild. The engine's trace gives
//! every exit an exact interval (`Exit` opens it; `Returned` closes a
//! nested exit, `Completed` the outermost), and on one CPU those
//! intervals nest without overlapping, so the tree is recoverable with
//! a per-CPU stack and nothing else.
//!
//! Two conservation properties make the forest trustworthy rather than
//! merely plausible (both certified by the checker's causal pass):
//!
//! 1. **Root conservation** — a root's interval is taken verbatim from
//!    its `Completed` event (`[at - spent, at]`), so summing root spans
//!    per (level, reason) reproduces the engine's
//!    `RunStats::cycles_by_reason` ledger *bit for bit*.
//! 2. **Partition** — children lie inside their parent and do not
//!    overlap, so `self_cycles = span - Σ child spans` is exact and
//!    non-negative, and the folded-stack output ([`Forest::folded`])
//!    sums back to the root totals with no cycles lost or invented.
//!
//! The builder is deliberately tolerant of truncated traces (the
//! bounded buffer may have evicted opens or closes); everything it
//! could not pair is counted in [`Forest::incomplete`] so a consumer
//! can refuse to certify a lossy reconstruction.

use dvh_arch::vmx::ExitReason;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One exit in a causal tree: its (level, reason) identity, its exact
/// simulated interval, and the nested exits its handling caused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalNode {
    /// Level the exit came from.
    pub level: usize,
    /// Architectural reason.
    pub reason: ExitReason,
    /// Simulated time the exit occurred.
    pub start: u64,
    /// Simulated time its handling finished (return / resume).
    pub end: u64,
    /// Nested exits caused by handling this one, in time order.
    pub children: Vec<CausalNode>,
}

impl CausalNode {
    /// The exit's end-to-end cost in cycles.
    pub fn span(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// Cycles spent in this exit's own handling, excluding nested
    /// exits: `span - Σ child spans`. Exact (children partition a
    /// slice of the parent's interval), saturating only against
    /// truncated-trace pathologies.
    pub fn self_cycles(&self) -> u64 {
        let nested: u64 = self.children.iter().map(CausalNode::span).sum();
        self.span().saturating_sub(nested)
    }

    /// Exits in this subtree, this node included.
    pub fn count(&self) -> u64 {
        1 + self.children.iter().map(CausalNode::count).sum::<u64>()
    }

    /// Longest root-to-leaf chain, this node included.
    pub fn depth(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(CausalNode::depth)
            .max()
            .unwrap_or(0)
    }

    /// The node's flamegraph frame label.
    pub fn frame(&self) -> String {
        format!("L{} {}", self.level, self.reason)
    }

    fn add_counts(&self, per_level: &mut BTreeMap<usize, u64>) {
        *per_level.entry(self.level).or_insert(0) += 1;
        for c in &self.children {
            c.add_counts(per_level);
        }
    }

    fn fold_into(&self, path: &mut String, lines: &mut BTreeMap<String, u64>) {
        let rollback = path.len();
        if !path.is_empty() {
            path.push(';');
        }
        path.push_str(&self.frame());
        let own = self.self_cycles();
        if own > 0 {
            *lines.entry(path.clone()).or_insert(0) += own;
        }
        for c in &self.children {
            c.fold_into(path, lines);
        }
        path.truncate(rollback);
    }
}

/// One outermost exit's causal tree, tagged with the CPU it ran on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CausalTree {
    /// CPU the whole chain executed on.
    pub cpu: usize,
    /// The outermost exit.
    pub root: CausalNode,
}

/// Every causal tree of a traced run, in completion order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Forest {
    /// One tree per outermost exit (per `Completed` event).
    pub trees: Vec<CausalTree>,
    /// Exits the builder could not pair (stray closes, opens with no
    /// close, closes with no open) — nonzero only for truncated or
    /// malformed traces. A certifying consumer must require zero.
    pub incomplete: usize,
}

impl Forest {
    /// Per-(level, reason) sums of root spans — shaped exactly like
    /// `RunStats::cycles_by_reason`, and equal to it bit for bit for
    /// any untruncated trace (the checker's causal pass proves this).
    pub fn root_cycle_totals(&self) -> BTreeMap<(usize, ExitReason), u64> {
        let mut totals = BTreeMap::new();
        for t in &self.trees {
            *totals.entry((t.root.level, t.root.reason)).or_insert(0u64) += t.root.span();
        }
        totals
    }

    /// Total exits across every tree (roots included).
    pub fn total_exits(&self) -> u64 {
        self.trees.iter().map(|t| t.root.count()).sum()
    }

    /// The emergent per-level exit-multiplication factors, grouped by
    /// root level: how many hardware exits one outermost exit at that
    /// level fans out into, and where (per level) they land. Nothing
    /// here is configured — the numbers fall out of the recursion the
    /// trace recorded, which is the point of checking them against the
    /// paper's Table 3.
    pub fn multiplication_factors(&self) -> Vec<MultiplicationFactor> {
        let mut by_root: BTreeMap<usize, MultiplicationFactor> = BTreeMap::new();
        for t in &self.trees {
            let f = by_root
                .entry(t.root.level)
                .or_insert_with(|| MultiplicationFactor {
                    root_level: t.root.level,
                    roots: 0,
                    total_exits: 0,
                    per_level: BTreeMap::new(),
                    factor: 0.0,
                });
            f.roots += 1;
            f.total_exits += t.root.count();
            t.root.add_counts(&mut f.per_level);
        }
        let mut out: Vec<MultiplicationFactor> = by_root.into_values().collect();
        for f in &mut out {
            f.factor = f.total_exits as f64 / f.roots as f64;
        }
        out
    }

    /// Folded-stack flamegraph output: one line per distinct causal
    /// path, `frame;frame;... self_cycles`, sorted by path. Feed it to
    /// any `flamegraph.pl`-compatible renderer. Per-path self times
    /// partition each tree exactly, so summing the lines that share a
    /// root frame reproduces that root's total — cycles conserve all
    /// the way through the visualization.
    pub fn folded(&self) -> String {
        let mut lines: BTreeMap<String, u64> = BTreeMap::new();
        for t in &self.trees {
            let mut path = String::new();
            t.root.fold_into(&mut path, &mut lines);
        }
        let mut out = String::new();
        for (path, cycles) in lines {
            let _ = writeln!(out, "{path} {cycles}");
        }
        out
    }
}

/// The emergent exit multiplication of one root level (see
/// [`Forest::multiplication_factors`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiplicationFactor {
    /// Level of the outermost exits this row aggregates.
    pub root_level: usize,
    /// Outermost exits (trees) observed at that level.
    pub roots: u64,
    /// Hardware exits across those trees, roots included.
    pub total_exits: u64,
    /// Exit counts broken out by the level they came from.
    pub per_level: BTreeMap<usize, u64>,
    /// `total_exits / roots` — the multiplication itself.
    pub factor: f64,
}

/// An exit that is open while scanning the stream: identity, start
/// time, and the children collected so far.
struct Pending {
    level: usize,
    reason: ExitReason,
    start: u64,
    children: Vec<CausalNode>,
}

impl Pending {
    fn close(self, end: u64) -> CausalNode {
        CausalNode {
            level: self.level,
            reason: self.reason,
            start: self.start,
            end,
            children: self.children,
        }
    }
}

/// Streaming forest builder: feed `exit`/`returned`/`completed` in
/// trace order, then [`CausalBuilder::finish`].
pub struct CausalBuilder {
    stacks: Vec<Vec<Pending>>,
    forest: Forest,
}

impl CausalBuilder {
    /// A builder for a trace from `num_cpus` CPUs (more CPUs appearing
    /// in the stream are accommodated on the fly).
    pub fn new(num_cpus: usize) -> CausalBuilder {
        CausalBuilder {
            stacks: (0..num_cpus).map(|_| Vec::new()).collect(),
            forest: Forest::default(),
        }
    }

    /// Grows the per-CPU stacks so `self.stacks[cpu]` is addressable
    /// (a plain field borrow, leaving `self.forest` free to update).
    fn ensure_cpu(&mut self, cpu: usize) {
        while self.stacks.len() <= cpu {
            self.stacks.push(Vec::new());
        }
    }

    /// A hardware exit occurred.
    pub fn exit(&mut self, cpu: usize, at: u64, level: usize, reason: ExitReason) {
        self.ensure_cpu(cpu);
        self.stacks[cpu].push(Pending {
            level,
            reason,
            start: at,
            children: Vec::new(),
        });
    }

    /// A nested exit's handling finished: close the deepest open exit
    /// and attach it to its parent. A `returned` that would close the
    /// outermost open (or arrives with nothing open) only happens in
    /// truncated traces; the orphan is dropped and counted.
    pub fn returned(&mut self, cpu: usize, at: u64) {
        self.ensure_cpu(cpu);
        let stack = &mut self.stacks[cpu];
        match stack.pop() {
            Some(p) => {
                let node = p.close(at);
                match stack.last_mut() {
                    Some(parent) => parent.children.push(node),
                    None => self.forest.incomplete += 1,
                }
            }
            None => self.forest.incomplete += 1,
        }
    }

    /// The outermost exit finished. The root interval comes verbatim
    /// from the completion (`[at - spent, at]`), never from the
    /// recorded open — that keeps root spans equal to the attribution
    /// ledger even when the trace buffer evicted the opening `Exit`.
    pub fn completed(&mut self, cpu: usize, at: u64, level: usize, reason: ExitReason, spent: u64) {
        self.ensure_cpu(cpu);
        let stack = &mut self.stacks[cpu];
        // Unreturned inner exits above the outermost (their `Returned`
        // was evicted): close them at the resume instant and count
        // them, keeping whatever subtree structure survived.
        while stack.len() > 1 {
            let node = stack.pop().expect("len checked above").close(at);
            stack
                .last_mut()
                .expect("len checked above")
                .children
                .push(node);
            self.forest.incomplete += 1;
        }
        let children = match stack.pop() {
            Some(p) => p.children,
            None => {
                // The opening Exit itself was evicted; the tree's
                // internal structure is lost but its root (and thus
                // conservation) is not.
                self.forest.incomplete += 1;
                Vec::new()
            }
        };
        self.forest.trees.push(CausalTree {
            cpu,
            root: CausalNode {
                level,
                reason,
                start: at.saturating_sub(spent),
                end: at,
                children,
            },
        });
    }

    /// Finishes the scan: anything still open never completed (the
    /// trace ended mid-exit) and is counted, not invented.
    pub fn finish(mut self) -> Forest {
        for stack in &mut self.stacks {
            self.forest.incomplete += stack.len();
            stack.clear();
        }
        self.forest
    }
}

/// Renders the multiplication table `dvh profile` prints: one row per
/// root level with the factor and the per-level breakdown.
pub fn render_multiplication(factors: &[MultiplicationFactor]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>8} {:>12} {:>8}  per level",
        "root", "roots", "total exits", "factor"
    );
    for f in factors {
        let per: Vec<String> = f
            .per_level
            .iter()
            .map(|(l, n)| format!("L{l}:{n}"))
            .collect();
        let _ = writeln!(
            out,
            "L{:<5} {:>8} {:>12} {:>8.2}  {}",
            f.root_level,
            f.roots,
            f.total_exits,
            f.factor,
            per.join(" ")
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // A hand-built chain: one outermost L2 Vmcall [100, 1100] with two
    // nested exits — an L1 Vmread [200, 300] and an L1 Vmresume
    // [400, 900] that itself contains an L1 ApicWrite [500, 600].
    fn sample() -> Forest {
        let mut b = CausalBuilder::new(1);
        b.exit(0, 100, 2, ExitReason::Vmcall);
        b.exit(0, 200, 1, ExitReason::Vmread);
        b.returned(0, 300);
        b.exit(0, 400, 1, ExitReason::Vmresume);
        b.exit(0, 500, 1, ExitReason::ApicWrite);
        b.returned(0, 600);
        b.returned(0, 900);
        b.completed(0, 1100, 2, ExitReason::Vmcall, 1000);
        b.finish()
    }

    #[test]
    fn builder_recovers_the_tree() {
        let f = sample();
        assert_eq!(f.incomplete, 0);
        assert_eq!(f.trees.len(), 1);
        let root = &f.trees[0].root;
        assert_eq!((root.level, root.reason), (2, ExitReason::Vmcall));
        assert_eq!((root.start, root.end), (100, 1100));
        assert_eq!(root.children.len(), 2);
        assert_eq!(root.children[1].children.len(), 1);
        assert_eq!(root.count(), 4);
        assert_eq!(root.depth(), 3);
    }

    #[test]
    fn self_cycles_partition_the_root_span() {
        let f = sample();
        let root = &f.trees[0].root;
        // span 1000, children 100 + 500 => self 400.
        assert_eq!(root.self_cycles(), 400);
        // Vmresume: span 500, child 100 => self 400.
        assert_eq!(root.children[1].self_cycles(), 400);
        // Total self times across the tree equal the root span.
        fn total(n: &CausalNode) -> u64 {
            n.self_cycles() + n.children.iter().map(total).sum::<u64>()
        }
        assert_eq!(total(root), root.span());
    }

    #[test]
    fn folded_lines_conserve_the_root_total() {
        let f = sample();
        let folded = f.folded();
        let mut sum = 0u64;
        for line in folded.lines() {
            let (path, cycles) = line.rsplit_once(' ').unwrap();
            assert!(path.starts_with("L2 Vmcall"), "{line}");
            sum += cycles.parse::<u64>().unwrap();
        }
        assert_eq!(sum, f.trees[0].root.span());
        assert!(
            folded.contains("L2 Vmcall;L1 Vmresume;L1 ApicWrite 100"),
            "{folded}"
        );
    }

    #[test]
    fn root_totals_and_multiplication() {
        let f = sample();
        assert_eq!(
            f.root_cycle_totals().get(&(2, ExitReason::Vmcall)).copied(),
            Some(1000)
        );
        assert_eq!(f.total_exits(), 4);
        let mult = f.multiplication_factors();
        assert_eq!(mult.len(), 1);
        assert_eq!(mult[0].root_level, 2);
        assert_eq!(mult[0].roots, 1);
        assert_eq!(mult[0].total_exits, 4);
        assert!((mult[0].factor - 4.0).abs() < 1e-12);
        assert_eq!(mult[0].per_level.get(&1).copied(), Some(3));
        assert_eq!(mult[0].per_level.get(&2).copied(), Some(1));
        assert!(render_multiplication(&mult).contains("L2"));
    }

    #[test]
    fn truncated_opens_and_closes_are_counted_not_invented() {
        // A stray return with nothing open.
        let mut b = CausalBuilder::new(1);
        b.returned(0, 50);
        // A completion whose open was evicted: the root still carries
        // the ledger's exact interval.
        b.completed(0, 500, 2, ExitReason::Hlt, 400);
        // An open that never closes.
        b.exit(0, 600, 1, ExitReason::Vmcall);
        let f = b.finish();
        assert_eq!(f.incomplete, 3);
        assert_eq!(f.trees.len(), 1);
        assert_eq!(f.trees[0].root.start, 100);
        assert_eq!(
            f.root_cycle_totals().get(&(2, ExitReason::Hlt)).copied(),
            Some(400)
        );
    }

    #[test]
    fn per_cpu_stacks_are_independent() {
        let mut b = CausalBuilder::new(2);
        b.exit(0, 10, 2, ExitReason::Vmcall);
        b.exit(1, 20, 2, ExitReason::Hlt);
        b.completed(1, 120, 2, ExitReason::Hlt, 100);
        b.completed(0, 210, 2, ExitReason::Vmcall, 200);
        let f = b.finish();
        assert_eq!(f.incomplete, 0);
        assert_eq!(f.trees.len(), 2);
        assert_eq!(f.trees[0].cpu, 1);
        assert_eq!(f.trees[1].cpu, 0);
    }
}
