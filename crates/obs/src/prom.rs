//! Prometheus text-format exporter for the metrics registry.
//!
//! Renders every counter, gauge, and histogram in the standard
//! exposition format (`# TYPE` headers, `dvh_` namespace, key
//! dimensions as labels, cumulative `_bucket{le=...}` series ending in
//! `+Inf`). The registry iterates in `BTreeMap` key order, so identical
//! runs produce byte-identical exports — scrape-ready output that is
//! also diffable in tests and CI.

use crate::metrics::{Histogram, MetricKey, MetricsRegistry};
use dvh_arch::cycles::CYCLE_BUCKET_BOUNDS;
use std::fmt::Write as _;

/// Renders the registry in Prometheus text exposition format.
pub fn prometheus(reg: &MetricsRegistry) -> String {
    let mut out = String::new();

    let mut last_type_for: Option<String> = None;
    for (key, value) in reg.counters() {
        type_header(&mut out, &mut last_type_for, key.name, "counter");
        let _ = writeln!(out, "dvh_{}{} {value}", metric_name(key.name), labels(key));
    }
    last_type_for = None;
    for (key, value) in reg.gauges() {
        type_header(&mut out, &mut last_type_for, key.name, "gauge");
        let _ = writeln!(out, "dvh_{}{} {value}", metric_name(key.name), labels(key));
    }
    last_type_for = None;
    for (key, h) in reg.histograms() {
        type_header(&mut out, &mut last_type_for, key.name, "histogram");
        histogram_series(&mut out, key, h);
    }
    out
}

/// Emits a `# TYPE` line once per metric name (keys are iterated in
/// name-major order, so a simple change detector suffices).
fn type_header(out: &mut String, last: &mut Option<String>, name: &str, kind: &str) {
    if last.as_deref() != Some(name) {
        let _ = writeln!(out, "# TYPE dvh_{} {kind}", metric_name(name));
        *last = Some(name.to_string());
    }
}

fn histogram_series(out: &mut String, key: &MetricKey, h: &Histogram) {
    let name = metric_name(key.name);
    let mut cumulative = 0u64;
    for (i, &bound) in CYCLE_BUCKET_BOUNDS.iter().enumerate() {
        cumulative += h.buckets()[i];
        let _ = writeln!(
            out,
            "dvh_{name}_bucket{} {cumulative}",
            labels_with(key, Some(("le", &bound.to_string())))
        );
    }
    let _ = writeln!(
        out,
        "dvh_{name}_bucket{} {}",
        labels_with(key, Some(("le", "+Inf"))),
        h.count()
    );
    let _ = writeln!(out, "dvh_{name}_sum{} {}", labels(key), h.sum());
    let _ = writeln!(out, "dvh_{name}_count{} {}", labels(key), h.count());
}

/// Key dimensions as Prometheus labels, e.g. `{level="2",reason="Vmcall"}`.
fn labels(key: &MetricKey) -> String {
    labels_with(key, None)
}

fn labels_with(key: &MetricKey, extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = Vec::new();
    if let Some(level) = key.level {
        pairs.push(format!("level=\"{level}\""));
    }
    if let Some(reason) = key.reason {
        pairs.push(format!("reason=\"{reason}\""));
    }
    if let Some(tag) = key.tag {
        pairs.push(format!("tag=\"{tag}\""));
    }
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{v}\""));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Sanitizes a metric name into the Prometheus charset.
fn metric_name(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::names;
    use dvh_arch::vmx::ExitReason;
    use dvh_arch::Cycles;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.inc(MetricKey::tagged(names::IRQ_DELIVERIES, "posted"));
        m.inc(MetricKey::tagged(names::IRQ_DELIVERIES, "posted"));
        m.set_gauge(MetricKey::tagged(names::VIRTQUEUE_IN_FLIGHT, "tx"), 4);
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(1_000));
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(40_000));
        m
    }

    #[test]
    fn exports_typed_series_with_labels() {
        let text = prometheus(&sample());
        assert!(text.contains("# TYPE dvh_irq_deliveries counter"), "{text}");
        assert!(
            text.contains("dvh_irq_deliveries{tag=\"posted\"} 2"),
            "{text}"
        );
        assert!(
            text.contains("# TYPE dvh_virtqueue_in_flight gauge"),
            "{text}"
        );
        assert!(text.contains("# TYPE dvh_exit_cycles histogram"), "{text}");
        assert!(
            text.contains("dvh_exit_cycles_sum{level=\"2\",reason=\"Vmcall\"} 41000"),
            "{text}"
        );
        assert!(
            text.contains("dvh_exit_cycles_count{level=\"2\",reason=\"Vmcall\"} 2"),
            "{text}"
        );
    }

    #[test]
    fn buckets_are_cumulative_and_end_at_inf() {
        let text = prometheus(&sample());
        // Cumulative: by le="65536" both observations are inside.
        assert!(text.contains("le=\"65536\"} 2"), "{text}");
        // The +Inf bucket equals the count.
        assert!(text.contains("le=\"+Inf\"} 2"), "{text}");
        // One le= line per ladder bound plus +Inf.
        let bucket_lines = text
            .lines()
            .filter(|l| l.starts_with("dvh_exit_cycles_bucket"))
            .count();
        assert_eq!(bucket_lines, CYCLE_BUCKET_BOUNDS.len() + 1);
    }

    #[test]
    fn type_header_appears_once_per_name() {
        let mut m = sample();
        m.observe_exit(1, ExitReason::Vmread, Cycles::new(500));
        let text = prometheus(&m);
        let headers = text
            .lines()
            .filter(|l| *l == "# TYPE dvh_exit_cycles histogram")
            .count();
        assert_eq!(headers, 1, "{text}");
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(prometheus(&sample()), prometheus(&sample()));
    }
}
