//! A Chrome trace-event JSON builder (the `about:tracing` / Perfetto
//! "JSON Object Format": a `traceEvents` array of `ph`-typed records).
//!
//! The builder is generic over what the spans mean; the hypervisor's
//! trace exporter maps simulated CPUs to `pid`s and virtualization
//! levels to `tid`s, so nested exit multiplication renders as nested
//! spans on per-CPU/level tracks. Timestamps are simulated cycles
//! written verbatim into `ts`/`dur` — the viewer displays them as
//! microseconds, but only relative magnitude matters and cycles keep
//! the export exact (see DESIGN.md §10).

use crate::json::Value;

/// Builds a trace-event document.
#[derive(Debug, Default)]
pub struct ChromeTrace {
    events: Vec<Value>,
}

/// Span/instant argument payloads: (key, value) pairs rendered into
/// the event's `args` object.
pub type Args = Vec<(String, Value)>;

impl ChromeTrace {
    /// An empty trace.
    pub fn new() -> ChromeTrace {
        ChromeTrace::default()
    }

    fn meta(&mut self, name: &str, pid: usize, tid: Option<usize>, value: &str) {
        let mut members = vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("ph".to_string(), Value::Str("M".to_string())),
            ("pid".to_string(), Value::Int(pid as i64)),
        ];
        if let Some(tid) = tid {
            members.push(("tid".to_string(), Value::Int(tid as i64)));
        }
        members.push((
            "args".to_string(),
            Value::Obj(vec![("name".to_string(), Value::Str(value.to_string()))]),
        ));
        self.events.push(Value::Obj(members));
    }

    /// Names a process track (one per simulated CPU).
    pub fn set_process_name(&mut self, pid: usize, name: &str) {
        self.meta("process_name", pid, None, name);
    }

    /// Names a thread track (one per level within a CPU).
    pub fn set_thread_name(&mut self, pid: usize, tid: usize, name: &str) {
        self.meta("thread_name", pid, Some(tid), name);
    }

    /// Adds a complete ("X") span.
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        name: &str,
        cat: &str,
        pid: usize,
        tid: usize,
        ts: u64,
        dur: u64,
        args: Args,
    ) {
        self.events.push(Value::Obj(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("cat".to_string(), Value::Str(cat.to_string())),
            ("ph".to_string(), Value::Str("X".to_string())),
            ("ts".to_string(), Value::Int(ts as i64)),
            ("dur".to_string(), Value::Int(dur as i64)),
            ("pid".to_string(), Value::Int(pid as i64)),
            ("tid".to_string(), Value::Int(tid as i64)),
            ("args".to_string(), Value::Obj(args)),
        ]));
    }

    /// Adds an instant ("i") event.
    pub fn instant(&mut self, name: &str, cat: &str, pid: usize, tid: usize, ts: u64, args: Args) {
        self.events.push(Value::Obj(vec![
            ("name".to_string(), Value::Str(name.to_string())),
            ("cat".to_string(), Value::Str(cat.to_string())),
            ("ph".to_string(), Value::Str("i".to_string())),
            ("s".to_string(), Value::Str("t".to_string())),
            ("ts".to_string(), Value::Int(ts as i64)),
            ("pid".to_string(), Value::Int(pid as i64)),
            ("tid".to_string(), Value::Int(tid as i64)),
            ("args".to_string(), Value::Obj(args)),
        ]));
    }

    /// Events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The complete document as a [`Value`].
    pub fn into_value(self) -> Value {
        Value::Obj(vec![
            ("traceEvents".to_string(), Value::Arr(self.events)),
            ("displayTimeUnit".to_string(), Value::Str("ns".to_string())),
        ])
    }

    /// Serializes the complete document.
    pub fn to_json(self) -> String {
        self.into_value().to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn document_round_trips() {
        let mut t = ChromeTrace::new();
        t.set_process_name(0, "cpu0");
        t.set_thread_name(0, 2, "L2");
        t.span(
            "exit L2 Vmcall",
            "exit",
            0,
            2,
            1000,
            250,
            vec![("outermost".to_string(), Value::Bool(true))],
        );
        t.instant("DVH vtimer", "dvh", 0, 0, 1100, vec![]);
        assert_eq!(t.len(), 4);
        let text = t.to_json();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.to_json(), text);
        let events = v.get("traceEvents").unwrap().items().unwrap();
        assert_eq!(events.len(), 4);
        assert_eq!(events[2].get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(events[2].get("dur").unwrap().as_int(), Some(250));
        assert_eq!(
            events[2].get("args").unwrap().get("outermost").unwrap(),
            &Value::Bool(true)
        );
    }
}
