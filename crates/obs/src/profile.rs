//! Top-N cycle-attribution profiles: where did the simulated time go,
//! by (level, reason)?
//!
//! The rows come from the [`names::EXIT_CYCLES`] histograms, i.e. the
//! same numbers the checker proves conserve against the engine's
//! attribution ledger — a profile is a sorted view of certified data,
//! not a second opinion.

use crate::metrics::{names, MetricsRegistry};

/// One profile row: an outermost-exit population and its cycle cost.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Level the exits came from.
    pub level: usize,
    /// Architectural reason, rendered.
    pub reason: String,
    /// Outermost exits attributed.
    pub count: u64,
    /// Total cycles attributed.
    pub cycles: u64,
    /// Share of all attributed cycles, in percent.
    pub percent: f64,
}

/// Builds the top-`n` rows by attributed cycles (ties break by
/// (level, reason) key order, so the table is deterministic).
pub fn exit_profile(reg: &MetricsRegistry, n: usize) -> Vec<ProfileRow> {
    let mut rows: Vec<(crate::metrics::MetricKey, ProfileRow)> = Vec::new();
    let mut total: u64 = 0;
    for (key, h) in reg.histograms() {
        if key.name != names::EXIT_CYCLES {
            continue;
        }
        let (Some(level), Some(reason)) = (key.level, key.reason) else {
            continue;
        };
        total = total.saturating_add(h.sum());
        rows.push((
            *key,
            ProfileRow {
                level,
                reason: reason.to_string(),
                count: h.count(),
                cycles: h.sum(),
                percent: 0.0,
            },
        ));
    }
    for (_, row) in &mut rows {
        row.percent = if total == 0 {
            0.0
        } else {
            row.cycles as f64 * 100.0 / total as f64
        };
    }
    // Cycles descending; exact ties break by `MetricKey` order (NOT by
    // the rendered reason string, whose collation can differ), so the
    // table is deterministic regardless of sort stability.
    rows.sort_by(|(ka, a), (kb, b)| b.cycles.cmp(&a.cycles).then_with(|| ka.cmp(kb)));
    rows.truncate(n);
    rows.into_iter().map(|(_, row)| row).collect()
}

/// Renders rows as an aligned table with a totals footer.
pub fn render_profile(rows: &[ProfileRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>10} {:>14} {:>7}",
        "level", "reason", "count", "cycles", "%"
    );
    let mut count = 0u64;
    let mut cycles = 0u64;
    let mut percent = 0.0f64;
    for r in rows {
        let _ = writeln!(
            out,
            "L{:<5} {:<20} {:>10} {:>14} {:>6.1}%",
            r.level, r.reason, r.count, r.cycles, r.percent
        );
        count += r.count;
        cycles = cycles.saturating_add(r.cycles);
        percent += r.percent;
    }
    let _ = writeln!(
        out,
        "{:<6} {:<20} {:>10} {:>14} {:>6.1}%",
        "total", "", count, cycles, percent
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::vmx::ExitReason;
    use dvh_arch::Cycles;

    fn sample() -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(6000));
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(1000));
        m.observe_exit(2, ExitReason::MsrWrite, Cycles::new(2000));
        m.observe_exit(1, ExitReason::Hlt, Cycles::new(1000));
        m
    }

    #[test]
    fn rows_sorted_by_cycles_with_percent() {
        let rows = exit_profile(&sample(), 10);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].reason, "Vmcall");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].cycles, 7000);
        assert!((rows[0].percent - 70.0).abs() < 1e-9);
        assert_eq!(rows[1].reason, "MsrWrite");
        assert_eq!(rows[2].level, 1);
    }

    #[test]
    fn top_n_truncates() {
        let rows = exit_profile(&sample(), 1);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].cycles, 7000);
    }

    #[test]
    fn render_has_header_and_total() {
        let text = render_profile(&exit_profile(&sample(), 10));
        assert!(text.starts_with("level"), "{text}");
        assert!(text.contains("Vmcall"));
        assert!(text.lines().last().unwrap().starts_with("total"));
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn equal_cycle_rows_order_by_key() {
        // Three populations with identical cycle totals: the order must
        // be the `MetricKey` order (level, then reason's architectural
        // order), run after run, truncation or not.
        let mut m = MetricsRegistry::new();
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(5_000));
        m.observe_exit(1, ExitReason::Hlt, Cycles::new(5_000));
        m.observe_exit(2, ExitReason::MsrWrite, Cycles::new(5_000));
        let rows = exit_profile(&m, 10);
        assert_eq!(rows.len(), 3);
        assert_eq!((rows[0].level, rows[0].reason.as_str()), (1, "Hlt"));
        assert_eq!(rows[1].level, 2);
        assert_eq!(rows[2].level, 2);
        // Reasons at the same level follow key order too, and top-N
        // truncation picks the same winner every time.
        let key = |r: ExitReason| crate::metrics::MetricKey::exit(names::EXIT_CYCLES, 2, r);
        assert!(key(ExitReason::Vmcall) < key(ExitReason::MsrWrite));
        assert_eq!(rows[1].reason, "Vmcall");
        let top = exit_profile(&m, 1);
        assert_eq!((top[0].level, top[0].reason.as_str()), (1, "Hlt"));
    }

    #[test]
    fn empty_registry_profiles_cleanly() {
        let rows = exit_profile(&MetricsRegistry::new(), 5);
        assert!(rows.is_empty());
        let text = render_profile(&rows);
        assert!(text.contains("total"));
    }
}
