//! Latency percentiles from the fixed power-of-two bucket ladder.
//!
//! Every cycle-valued histogram shares the geometric ladder of
//! [`CYCLE_BUCKET_BOUNDS`], so a quantile is a deterministic walk of
//! the cumulative bucket counts: the reported value is the inclusive
//! upper bound of the bucket containing the requested rank — an upper
//! bound on the true quantile that is exact to the ladder's resolution
//! and, crucially, identical across runs, levels, and merged sweep
//! cells. Observations that landed in the overflow bucket (above
//! 2^23 cycles) have no finite bound; a quantile that falls there is
//! reported as [`OVERFLOW_VALUE`] and rendered `>2^23`.

use crate::metrics::{names, Histogram, MetricsRegistry, OVERFLOW_BUCKET};
use dvh_arch::cycles::CYCLE_BUCKET_BOUNDS;
use std::fmt;

/// The sentinel a quantile returns when the requested rank lands in
/// the overflow bucket: the true value is known only to exceed the top
/// bucket bound.
pub const OVERFLOW_VALUE: u64 = u64::MAX;

/// The standard latency summary: p50 / p95 / p99 / p999.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Percentiles {
    /// Median (cycles, bucket upper bound).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl Percentiles {
    /// Computes the summary from a histogram; `None` when it is empty.
    pub fn of(h: &Histogram) -> Option<Percentiles> {
        Some(Percentiles {
            p50: quantile(h, 0.50)?,
            p95: quantile(h, 0.95)?,
            p99: quantile(h, 0.99)?,
            p999: quantile(h, 0.999)?,
        })
    }
}

impl fmt::Display for Percentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "p50={} p95={} p99={} p999={}",
            render_value(self.p50),
            render_value(self.p95),
            render_value(self.p99),
            render_value(self.p999)
        )
    }
}

/// Renders a quantile value, spelling the overflow sentinel out.
pub fn render_value(v: u64) -> String {
    if v == OVERFLOW_VALUE {
        ">2^23".to_string()
    } else {
        v.to_string()
    }
}

/// The `q`-quantile (0 < q <= 1) of `h`, as the inclusive upper bound
/// of the bucket holding rank `ceil(q * count)`; `None` when the
/// histogram is empty, [`OVERFLOW_VALUE`] when the rank lands in the
/// overflow bucket.
pub fn quantile(h: &Histogram, q: f64) -> Option<u64> {
    if h.count() == 0 {
        return None;
    }
    let rank = ((q * h.count() as f64).ceil() as u64).clamp(1, h.count());
    let mut seen = 0u64;
    for (i, &n) in h.buckets().iter().enumerate() {
        seen += n;
        if seen >= rank {
            return Some(if i == OVERFLOW_BUCKET {
                OVERFLOW_VALUE
            } else {
                CYCLE_BUCKET_BOUNDS[i]
            });
        }
    }
    // Unreachable for a consistent histogram (Σ buckets == count); be
    // conservative if one is not.
    Some(OVERFLOW_VALUE)
}

/// Outermost-exit latency percentiles from a registry's
/// [`names::EXIT_CYCLES`] histograms: the all-levels aggregate first
/// (`level: None`), then one row per level. Merging is bucket-by-bucket
/// on the shared ladder, so the aggregate is exact.
pub fn exit_percentiles(reg: &MetricsRegistry) -> Vec<(Option<usize>, Percentiles)> {
    let mut all = Histogram::default();
    let mut by_level: std::collections::BTreeMap<usize, Histogram> = Default::default();
    for (key, h) in reg.histograms() {
        if key.name != names::EXIT_CYCLES {
            continue;
        }
        let Some(level) = key.level else { continue };
        all.merge(h);
        by_level.entry(level).or_default().merge(h);
    }
    let mut out = Vec::new();
    if let Some(p) = Percentiles::of(&all) {
        out.push((None, p));
    }
    for (level, h) in &by_level {
        if let Some(p) = Percentiles::of(h) {
            out.push((Some(*level), p));
        }
    }
    out
}

/// Renders [`exit_percentiles`] rows as an aligned table.
pub fn render_percentiles(rows: &[(Option<usize>, Percentiles)]) -> String {
    use fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<6} {:>10} {:>10} {:>10} {:>10}",
        "level", "p50", "p95", "p99", "p999"
    );
    for (level, p) in rows {
        let label = match level {
            None => "all".to_string(),
            Some(l) => format!("L{l}"),
        };
        let _ = writeln!(
            out,
            "{:<6} {:>10} {:>10} {:>10} {:>10}",
            label,
            render_value(p.p50),
            render_value(p.p95),
            render_value(p.p99),
            render_value(p.p999)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::vmx::ExitReason;
    use dvh_arch::Cycles;

    #[test]
    fn quantiles_walk_the_ladder() {
        let mut h = Histogram::default();
        // 100 observations: 50 in bucket 0 (<=256), 45 in bucket 2
        // (<=1024), 5 in bucket 4 (<=4096).
        for _ in 0..50 {
            h.observe(100);
        }
        for _ in 0..45 {
            h.observe(1000);
        }
        for _ in 0..5 {
            h.observe(4000);
        }
        assert_eq!(quantile(&h, 0.50), Some(256));
        assert_eq!(quantile(&h, 0.95), Some(1024));
        assert_eq!(quantile(&h, 0.99), Some(4096));
        assert_eq!(quantile(&h, 0.999), Some(4096));
        let p = Percentiles::of(&h).unwrap();
        assert_eq!((p.p50, p.p95, p.p99, p.p999), (256, 1024, 4096, 4096));
    }

    #[test]
    fn overflow_rank_reports_the_sentinel() {
        let mut h = Histogram::default();
        h.observe(100);
        h.observe((1 << 23) + 1); // overflow bucket
        assert_eq!(quantile(&h, 0.50), Some(256));
        assert_eq!(quantile(&h, 0.99), Some(OVERFLOW_VALUE));
        assert_eq!(render_value(OVERFLOW_VALUE), ">2^23");
        // The top *bounded* bucket is still finite.
        let mut top = Histogram::default();
        top.observe(1 << 23);
        assert_eq!(quantile(&top, 0.99), Some(1 << 23));
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        assert_eq!(Percentiles::of(&Histogram::default()), None);
        assert!(exit_percentiles(&MetricsRegistry::new()).is_empty());
    }

    #[test]
    fn exit_percentiles_aggregate_then_split_by_level() {
        let mut m = MetricsRegistry::new();
        m.observe_exit(1, ExitReason::Vmcall, Cycles::new(200));
        m.observe_exit(2, ExitReason::Vmcall, Cycles::new(40_000));
        let rows = exit_percentiles(&m);
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].0, None);
        assert_eq!(
            rows[1],
            (
                Some(1),
                Percentiles::of(&{
                    let mut h = Histogram::default();
                    h.observe(200);
                    h
                })
                .unwrap()
            )
        );
        // The aggregate median spans both observations.
        assert_eq!(rows[0].1.p50, 256);
        assert_eq!(rows[0].1.p99, 65536);
        let text = render_percentiles(&rows);
        assert!(text.contains("all") && text.contains("L2"), "{text}");
    }
}
