//! # dvh-obs
//!
//! Observability for the DVH nested-virtualization simulator: the
//! layer that turns the engine's cycle-accurate bookkeeping into
//! things a human (or a dashboard) can look at.
//!
//! The paper's whole argument is an attribution story — Table 3 and
//! Fig. 7 are per-level, per-exit-reason cycle breakdowns — so the
//! subsystem is built around *attribution-preserving* exports:
//!
//! * [`metrics`] — a registry of counters, gauges, and histograms with
//!   fixed cycle-bucket boundaries
//!   ([`dvh_arch::cycles::CYCLE_BUCKET_BOUNDS`]). Keys carry the
//!   (level, reason) structure of the engine's ledgers, and the
//!   deterministic snapshot serializer means two runs diff cleanly.
//! * [`chrome`] — a Chrome trace-event (`about:tracing` / Perfetto)
//!   JSON builder, used by the hypervisor's trace export to lay exit
//!   multiplication out as nested spans, one track per simulated
//!   CPU/level.
//! * [`json`] — a minimal JSON value model with a parser and a
//!   canonical serializer, so exported traces can be round-tripped and
//!   verified without external dependencies.
//! * [`profile`] — top-N (level, reason) → cycles/count/percent tables
//!   from a registry, the `dvh profile` backend.
//! * [`causal`] — reconstructs the causal forest of outermost exits
//!   from trace events: every nested trap becomes a child interval of
//!   the exit that caused it, which yields emergent per-level exit
//!   multiplication factors (Table 3), folded-stack flamegraph lines,
//!   and exact self-cycle attribution that conserves against
//!   `cycles_by_reason`.
//! * [`percentiles`] — p50/p95/p99/p999 outermost-exit latency from
//!   the fixed bucket ladder, deterministic across runs and mergeable
//!   across sweep cells.
//! * [`diff`] — snapshot documents plus a differential analyzer with
//!   per-metric relative thresholds and directionality, the
//!   `dvh obs diff` backend CI gates on.
//! * [`prom`] — Prometheus text exposition format for the registry.
//!
//! The registry itself is passive: the hypervisor's `World` owns one
//! behind the same enabled-flag pattern as its tracer, so a disabled
//! registry costs one predicted branch per instrumentation point and
//! nothing else. Feeding it never touches simulated time — enabling
//! metrics cannot change any pinned ledger.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal;
pub mod chrome;
pub mod diff;
pub mod json;
pub mod metrics;
pub mod percentiles;
pub mod profile;
pub mod prom;

pub use metrics::{Histogram, MetricKey, MetricsRegistry};
