//! Differential analysis of observability snapshots.
//!
//! A *snapshot* is a small JSON document ([`snapshot_value`]) capturing
//! the derived health metrics of one run: outermost exit counts, the
//! attributed-cycle exit rate, the per-level latency percentiles, and
//! the raw counter/gauge/histogram values. [`diff`] compares two
//! snapshots metric by metric with per-metric *relative* thresholds and
//! directionality — exit rate regresses when it drops, latency
//! percentiles regress when they grow — so CI can gate on
//! `dvh obs diff baseline.json current.json` without hard-coding
//! absolute cycle numbers that shift whenever the cost model is tuned.
//!
//! Percentiles that land in the histogram overflow bucket are stored as
//! the string `">2^23"` (the snapshot has no finite value to report)
//! and compared as +∞: overflow vs overflow is "no change", finite vs
//! overflow is a regression of unbounded size.

use crate::json::Value;
use crate::metrics::{names, MetricsRegistry};
use crate::percentiles::{exit_percentiles, OVERFLOW_VALUE};
use dvh_arch::Cycles;
use std::fmt::Write as _;

/// Schema tag every snapshot carries; [`diff`] refuses documents that
/// do not declare it.
pub const SNAPSHOT_SCHEMA: &str = "dvh-obs-snapshot/v1";

/// Schema tag of the JSON diff report.
pub const DIFF_SCHEMA: &str = "dvh-obs-diff/v1";

/// Which direction of change counts against the current run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// A drop beyond the threshold is a regression (throughput-like).
    LowerIsWorse,
    /// A rise beyond the threshold is a regression (latency-like).
    HigherIsWorse,
    /// Reported for context, never gated.
    Informational,
}

/// Thresholds for [`diff`].
#[derive(Debug, Clone, Copy)]
pub struct DiffConfig {
    /// Relative change (fraction, not percent) beyond which a gated
    /// metric counts as a regression.
    pub threshold: f64,
}

impl Default for DiffConfig {
    fn default() -> DiffConfig {
        DiffConfig { threshold: 0.25 }
    }
}

/// One compared metric.
#[derive(Debug, Clone)]
pub struct DiffEntry {
    /// Metric name, e.g. `exit_rate` or `all.p99`.
    pub metric: String,
    /// Direction that counts against the current run.
    pub direction: Direction,
    /// Baseline value (+∞ encodes an overflow percentile).
    pub baseline: f64,
    /// Current value (+∞ encodes an overflow percentile).
    pub current: f64,
    /// Relative change `(current - baseline) / baseline`.
    pub change: f64,
    /// Whether this entry trips the gate.
    pub regression: bool,
}

/// The result of comparing two snapshots.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Threshold the gated metrics were held to.
    pub threshold: f64,
    /// Every compared metric, gated entries first.
    pub entries: Vec<DiffEntry>,
}

impl DiffReport {
    /// The entries that tripped the gate.
    pub fn regressions(&self) -> Vec<&DiffEntry> {
        self.entries.iter().filter(|e| e.regression).collect()
    }

    /// Renders the human-readable report.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "obs diff (threshold {:.0}%)", self.threshold * 100.0);
        let _ = writeln!(
            out,
            "{:<24} {:>14} {:>14} {:>9}",
            "metric", "baseline", "current", "change"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<24} {:>14} {:>14} {:>9}{}",
                e.metric,
                fmt_value(e.baseline),
                fmt_value(e.current),
                fmt_change(e.change),
                if e.regression {
                    "  REGRESSION"
                } else if e.direction == Direction::Informational {
                    "  (info)"
                } else {
                    ""
                }
            );
        }
        let n = self.regressions().len();
        let _ = writeln!(
            out,
            "{n} regression(s) beyond {:.0}%",
            self.threshold * 100.0
        );
        out
    }

    /// Renders the machine-readable report.
    pub fn to_json(&self) -> Value {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::Obj(vec![
                    ("metric".into(), Value::Str(e.metric.clone())),
                    ("baseline".into(), num_value(e.baseline)),
                    ("current".into(), num_value(e.current)),
                    ("change".into(), num_value(e.change)),
                    (
                        "gated".into(),
                        Value::Bool(e.direction != Direction::Informational),
                    ),
                    ("regression".into(), Value::Bool(e.regression)),
                ])
            })
            .collect();
        Value::Obj(vec![
            ("schema".into(), Value::Str(DIFF_SCHEMA.into())),
            ("threshold".into(), Value::Float(self.threshold)),
            (
                "regressions".into(),
                Value::Int(self.regressions().len() as i64),
            ),
            ("entries".into(), Value::Arr(entries)),
        ])
    }
}

/// Builds the snapshot document for a finished run's registry.
///
/// `exits` / `exit_cycles_total` summarize the [`names::EXIT_CYCLES`]
/// histograms (outermost exits only, matching the engine ledger), and
/// `exit_rate` is exits per *attributed* second — a purely simulated,
/// deterministic quantity.
pub fn snapshot_value(reg: &MetricsRegistry, workload: &str) -> Value {
    let mut exits = 0u64;
    let mut cycles = 0u64;
    for (key, h) in reg.histograms() {
        if key.name == names::EXIT_CYCLES {
            exits += h.count();
            cycles = cycles.saturating_add(h.sum());
        }
    }
    let exit_rate = if cycles == 0 {
        0.0
    } else {
        exits as f64 * Cycles::FREQ_HZ as f64 / cycles as f64
    };

    let percentiles = exit_percentiles(reg)
        .into_iter()
        .map(|(level, p)| {
            let label = match level {
                None => "all".to_string(),
                Some(l) => format!("L{l}"),
            };
            let row = Value::Obj(vec![
                ("p50".into(), pct_value(p.p50)),
                ("p95".into(), pct_value(p.p95)),
                ("p99".into(), pct_value(p.p99)),
                ("p999".into(), pct_value(p.p999)),
            ]);
            (label, row)
        })
        .collect();

    let counters = reg
        .counters()
        .map(|(k, v)| (k.to_string(), Value::Int(v as i64)))
        .collect();
    let gauges = reg
        .gauges()
        .map(|(k, v)| (k.to_string(), Value::Int(v)))
        .collect();
    let histograms = reg
        .histograms()
        .map(|(k, h)| {
            let buckets = h.buckets().iter().map(|&b| Value::Int(b as i64)).collect();
            let obj = Value::Obj(vec![
                ("count".into(), Value::Int(h.count() as i64)),
                ("sum".into(), Value::Int(h.sum() as i64)),
                ("buckets".into(), Value::Arr(buckets)),
            ]);
            (k.to_string(), obj)
        })
        .collect();

    Value::Obj(vec![
        ("schema".into(), Value::Str(SNAPSHOT_SCHEMA.into())),
        ("workload".into(), Value::Str(workload.into())),
        ("exits".into(), Value::Int(exits as i64)),
        ("exit_cycles_total".into(), Value::Int(cycles as i64)),
        ("exit_rate".into(), Value::Float(exit_rate)),
        ("percentiles".into(), Value::Obj(percentiles)),
        ("counters".into(), Value::Obj(counters)),
        ("gauges".into(), Value::Obj(gauges)),
        ("histograms".into(), Value::Obj(histograms)),
    ])
}

/// [`snapshot_value`] serialized canonically.
pub fn snapshot_json(reg: &MetricsRegistry, workload: &str) -> String {
    snapshot_value(reg, workload).to_json()
}

/// Compares two snapshot documents.
///
/// Gated metrics: `exit_rate` (lower is worse) and every percentile
/// present in both snapshots (higher is worse). `exits`,
/// `exit_cycles_total`, and changed counters are reported for context
/// but never gate.
pub fn diff(baseline: &Value, current: &Value, cfg: DiffConfig) -> Result<DiffReport, String> {
    check_schema(baseline, "baseline")?;
    check_schema(current, "current")?;
    let mut entries = Vec::new();

    let rate_b = field_num(baseline, "exit_rate")?;
    let rate_c = field_num(current, "exit_rate")?;
    entries.push(entry(
        "exit_rate",
        Direction::LowerIsWorse,
        rate_b,
        rate_c,
        cfg.threshold,
    ));

    let pb = baseline
        .get("percentiles")
        .ok_or("baseline missing 'percentiles'")?;
    let pc = current
        .get("percentiles")
        .ok_or("current missing 'percentiles'")?;
    if let (Value::Obj(groups_b), Value::Obj(_)) = (pb, pc) {
        for (label, row_b) in groups_b {
            let Some(row_c) = pc.get(label) else { continue };
            for q in ["p50", "p95", "p99", "p999"] {
                let (Some(vb), Some(vc)) = (row_b.get(q), row_c.get(q)) else {
                    continue;
                };
                entries.push(entry(
                    &format!("{label}.{q}"),
                    Direction::HigherIsWorse,
                    num(vb).ok_or_else(|| format!("bad percentile {label}.{q}"))?,
                    num(vc).ok_or_else(|| format!("bad percentile {label}.{q}"))?,
                    cfg.threshold,
                ));
            }
        }
    }

    for name in ["exits", "exit_cycles_total"] {
        let b = field_num(baseline, name)?;
        let c = field_num(current, name)?;
        entries.push(entry(name, Direction::Informational, b, c, cfg.threshold));
    }
    if let (Some(Value::Obj(cb)), Some(cc)) = (baseline.get("counters"), current.get("counters")) {
        for (key, vb) in cb {
            let (Some(b), Some(c)) = (num(vb), cc.get(key).and_then(num)) else {
                continue;
            };
            if b != c {
                entries.push(entry(
                    &format!("counter {key}"),
                    Direction::Informational,
                    b,
                    c,
                    cfg.threshold,
                ));
            }
        }
    }

    Ok(DiffReport {
        threshold: cfg.threshold,
        entries,
    })
}

fn check_schema(doc: &Value, which: &str) -> Result<(), String> {
    match doc.get("schema").and_then(Value::as_str) {
        Some(SNAPSHOT_SCHEMA) => Ok(()),
        Some(other) => Err(format!("{which}: unknown schema '{other}'")),
        None => Err(format!("{which}: not a dvh-obs snapshot (no schema field)")),
    }
}

fn entry(metric: &str, direction: Direction, baseline: f64, current: f64, thr: f64) -> DiffEntry {
    let change = rel_change(baseline, current);
    let regression = match direction {
        Direction::LowerIsWorse => change < -thr,
        Direction::HigherIsWorse => change > thr,
        Direction::Informational => false,
    };
    DiffEntry {
        metric: metric.to_string(),
        direction,
        baseline,
        current,
        change,
        regression,
    }
}

/// Relative change with the overflow (+∞) cases pinned down: equal
/// values (including ∞ vs ∞) are zero change, finite→∞ is +∞ change,
/// ∞→finite is a full recovery (−1).
fn rel_change(baseline: f64, current: f64) -> f64 {
    if baseline == current {
        0.0
    } else if baseline.is_infinite() {
        -1.0
    } else if baseline == 0.0 {
        if current > 0.0 {
            f64::INFINITY
        } else {
            f64::NEG_INFINITY
        }
    } else {
        (current - baseline) / baseline
    }
}

/// A snapshot number: integers, floats, or the `">2^23"` overflow
/// marker (read as +∞).
fn num(v: &Value) -> Option<f64> {
    match v {
        Value::Int(n) => Some(*n as f64),
        Value::Float(x) => Some(*x),
        Value::Str(s) if s == ">2^23" => Some(f64::INFINITY),
        _ => None,
    }
}

fn field_num(doc: &Value, name: &str) -> Result<f64, String> {
    doc.get(name)
        .and_then(num)
        .ok_or_else(|| format!("missing or non-numeric field '{name}'"))
}

fn pct_value(v: u64) -> Value {
    if v == OVERFLOW_VALUE {
        Value::Str(">2^23".into())
    } else {
        Value::Int(v as i64)
    }
}

fn num_value(x: f64) -> Value {
    if x.is_infinite() {
        Value::Str(if x > 0.0 { ">2^23" } else { "-inf" }.into())
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        Value::Int(x as i64)
    } else {
        Value::Float(x)
    }
}

fn fmt_value(x: f64) -> String {
    if x.is_infinite() {
        ">2^23".to_string()
    } else if x.fract() == 0.0 && x.abs() < 9e15 {
        format!("{}", x as i64)
    } else {
        format!("{x:.1}")
    }
}

fn fmt_change(x: f64) -> String {
    if x.is_infinite() {
        format!("{}inf%", if x > 0.0 { "+" } else { "-" })
    } else {
        format!("{:+.1}%", x * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::vmx::ExitReason;
    use dvh_arch::Cycles;

    fn reg_with(obs: &[(usize, u64)]) -> MetricsRegistry {
        let mut m = MetricsRegistry::new();
        for &(level, cycles) in obs {
            m.observe_exit(level, ExitReason::Vmcall, Cycles::new(cycles));
        }
        m
    }

    #[test]
    fn self_diff_reports_zero_regressions() {
        let m = reg_with(&[(1, 500), (2, 4_000), (2, 9_000)]);
        let snap = crate::json::parse(&snapshot_json(&m, "t")).unwrap();
        let report = diff(&snap, &snap, DiffConfig::default()).unwrap();
        assert!(report.regressions().is_empty(), "{}", report.to_text());
        assert!(report.entries.iter().all(|e| e.change == 0.0));
        assert!(report.to_text().contains("0 regression(s)"));
    }

    #[test]
    fn injected_regression_is_flagged() {
        // Baseline: 100 cheap exits. Current: five of them became 50x
        // more expensive — the p99 jumps ladder rungs and the exit
        // rate (exits per attributed second) drops well past 30%.
        let base = reg_with(&(0..100).map(|_| (2, 1_000)).collect::<Vec<_>>());
        let mut cur_obs: Vec<(usize, u64)> = (0..95).map(|_| (2, 1_000)).collect();
        cur_obs.extend((0..5).map(|_| (2, 50_000)));
        let cur = reg_with(&cur_obs);
        let snap_b = crate::json::parse(&snapshot_json(&base, "t")).unwrap();
        let snap_c = crate::json::parse(&snapshot_json(&cur, "t")).unwrap();
        let report = diff(&snap_b, &snap_c, DiffConfig::default()).unwrap();
        let names: Vec<&str> = report
            .regressions()
            .iter()
            .map(|e| e.metric.as_str())
            .collect();
        assert!(names.contains(&"exit_rate"), "{names:?}");
        assert!(names.contains(&"all.p99"), "{names:?}");
        // The JSON report agrees with the text report.
        let json = report.to_json();
        assert_eq!(
            json.get("regressions").unwrap().as_int().unwrap() as usize,
            report.regressions().len()
        );
    }

    #[test]
    fn overflow_percentiles_compare_as_equal() {
        let m = reg_with(&[(2, (1 << 23) + 5)]);
        let snap = crate::json::parse(&snapshot_json(&m, "t")).unwrap();
        // The snapshot stores the overflow marker as a string…
        assert_eq!(
            snap.get("percentiles")
                .and_then(|p| p.get("all"))
                .and_then(|r| r.get("p99"))
                .and_then(Value::as_str),
            Some(">2^23")
        );
        // …and ∞ vs ∞ diffs to zero change.
        let report = diff(&snap, &snap, DiffConfig::default()).unwrap();
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn schema_mismatch_is_an_error() {
        let bogus = crate::json::parse(r#"{"schema": "something-else"}"#).unwrap();
        let m = reg_with(&[(1, 500)]);
        let snap = crate::json::parse(&snapshot_json(&m, "t")).unwrap();
        assert!(diff(&bogus, &snap, DiffConfig::default()).is_err());
        assert!(diff(&snap, &bogus, DiffConfig::default()).is_err());
    }

    #[test]
    fn diff_report_json_round_trips() {
        let base = reg_with(&[(1, 500)]);
        let cur = reg_with(&[(1, 700)]);
        let snap_b = crate::json::parse(&snapshot_json(&base, "t")).unwrap();
        let snap_c = crate::json::parse(&snapshot_json(&cur, "t")).unwrap();
        let report = diff(&snap_b, &snap_c, DiffConfig::default()).unwrap();
        let text = report.to_json().to_json();
        let back = crate::json::parse(&text).unwrap();
        assert_eq!(back.to_json(), text);
        assert_eq!(back.get("schema").unwrap().as_str(), Some(DIFF_SCHEMA));
    }
}
