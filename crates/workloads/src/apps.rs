//! The application benchmark catalog (Table 2), as transaction mixes.
//!
//! Native baselines come from §4: "The native execution results were
//! 45,578 trans/s for Netperf RR, 9,413 Mb/s for Netperf STREAM, 9,414
//! Mb/s for Netperf MAERTS, 15,469 trans/s for Apache, 354,132 trans/s
//! for Memcached, 4.45 s for MySQL, and 10.36 s for Hackbench." At the
//! testbed's 2.2 GHz these convert to the `native_cycles` below.
//!
//! Event counts per transaction are behavioural estimates of what each
//! workload's kernel path does (doorbells after virtio batching,
//! interrupts after NIC coalescing, scheduler IPIs, TCP/epoll timer
//! reprogramming, idle transitions on request boundaries); they are
//! identical across configurations — only the per-event *cost* differs.

use crate::runner::{MixKind, TxnMix};

/// Identifies one of the paper's seven application benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AppId {
    /// netperf TCP_RR: 1-byte request/response latency.
    NetperfRr,
    /// netperf TCP_STREAM: client-to-server bulk throughput.
    NetperfStream,
    /// netperf TCP_MAERTS: server-to-client bulk throughput.
    NetperfMaerts,
    /// ApacheBench serving the 41 KB GCC manual page.
    Apache,
    /// memcached driven by memtier.
    Memcached,
    /// MySQL with SysBench OLTP, 200 parallel transactions.
    Mysql,
    /// hackbench, 100 process groups over Unix domain sockets.
    Hackbench,
}

impl AppId {
    /// All seven, in the paper's figure order.
    pub const ALL: [AppId; 7] = [
        AppId::NetperfRr,
        AppId::NetperfStream,
        AppId::NetperfMaerts,
        AppId::Apache,
        AppId::Memcached,
        AppId::Mysql,
        AppId::Hackbench,
    ];

    /// Parses a CLI application name (`rr`, `stream`, `maerts`,
    /// `apache`, `memcached`, `mysql`, `hackbench`).
    pub fn parse(name: &str) -> Option<AppId> {
        Some(match name {
            "rr" => AppId::NetperfRr,
            "stream" => AppId::NetperfStream,
            "maerts" => AppId::NetperfMaerts,
            "apache" => AppId::Apache,
            "memcached" => AppId::Memcached,
            "mysql" => AppId::Mysql,
            "hackbench" => AppId::Hackbench,
            _ => return None,
        })
    }

    /// The CLI name accepted by [`AppId::parse`].
    pub fn cli_name(self) -> &'static str {
        match self {
            AppId::NetperfRr => "rr",
            AppId::NetperfStream => "stream",
            AppId::NetperfMaerts => "maerts",
            AppId::Apache => "apache",
            AppId::Memcached => "memcached",
            AppId::Mysql => "mysql",
            AppId::Hackbench => "hackbench",
        }
    }

    /// The transaction mix for this benchmark.
    pub fn mix(self) -> TxnMix {
        match self {
            // 45,578 trans/s native -> ~48.3 us -> ~106k cycles; per
            // transaction the server takes one packet, replies with
            // one, reprograms TCP timers, and goes idle waiting for
            // the next request.
            AppId::NetperfRr => TxnMix {
                name: "Netperf RR",
                kind: MixKind::Latency,
                native_cycles: 106_000,
                compute: 30_000,
                rx_packets: 1.0,
                rx_irqs: 1.0,
                rx_bytes: 64,
                tx_packets: 1.0,
                tx_kicks: 1.0,
                tx_bytes: 64,
                ipis: 0.0,
                timers: 4.0,
                idles: 1.5,
                blk_ops: 0.0,
                blk_bytes: 0,
            },
            // One transaction = one 64 KB receive window: ~43 MTU
            // frames, heavily coalesced (2 interrupts), ACKs batched
            // into one kick. Wire time 64KB at 9.4 Gb/s ~ 123k cycles.
            AppId::NetperfStream => TxnMix {
                name: "Netperf STREAM",
                kind: MixKind::Throughput,
                native_cycles: 130_000,
                compute: 55_000,
                rx_packets: 43.0,
                rx_irqs: 1.0,
                rx_bytes: 1500,
                tx_packets: 11.0,
                tx_kicks: 0.5,
                tx_bytes: 64,
                ipis: 0.0,
                timers: 0.3,
                idles: 0.1,
                blk_ops: 0.0,
                blk_bytes: 0,
            },
            // The transmit direction: ~43 frames sent per 64 KB in
            // several kicks (TSO batches), ACK receive coalesced.
            AppId::NetperfMaerts => TxnMix {
                name: "Netperf MAERTS",
                kind: MixKind::Throughput,
                native_cycles: 130_000,
                compute: 55_000,
                rx_packets: 11.0,
                rx_irqs: 1.0,
                rx_bytes: 64,
                tx_packets: 43.0,
                tx_kicks: 6.0,
                tx_bytes: 1500,
                ipis: 0.0,
                timers: 0.5,
                idles: 0.1,
                blk_ops: 0.0,
                blk_bytes: 0,
            },
            // 15,469 trans/s -> ~142k cycles per request; the 41 KB
            // response is ~28 frames in a few kicks; worker wakeups
            // send scheduler IPIs; epoll/TCP timers churn.
            AppId::Apache => TxnMix {
                name: "Apache",
                kind: MixKind::Throughput,
                native_cycles: 142_000,
                compute: 100_000,
                rx_packets: 2.0,
                rx_irqs: 1.0,
                rx_bytes: 300,
                tx_packets: 28.0,
                tx_kicks: 5.0,
                tx_bytes: 1500,
                ipis: 2.0,
                timers: 4.0,
                idles: 0.5,
                blk_ops: 0.1, // access logs, amortized
                blk_bytes: 4096,
            },
            // 354,132 ops/s -> ~6.2k cycles/op; memtier pipelines, so
            // doorbells/interrupts amortize over ~8 operations.
            AppId::Memcached => TxnMix {
                name: "Memcached",
                kind: MixKind::Throughput,
                native_cycles: 6_213,
                compute: 3_800,
                rx_packets: 1.0,
                rx_irqs: 0.3,
                rx_bytes: 200,
                tx_packets: 1.0,
                tx_kicks: 0.3,
                tx_bytes: 300,
                ipis: 0.05,
                timers: 0.1,
                idles: 0.02,
                blk_ops: 0.0,
                blk_bytes: 0,
            },
            // SysBench OLTP: 10k transactions in 4.45 s native ->
            // ~980k cycles each; network round trips to the client,
            // InnoDB log writes (block I/O modelled as large TX),
            // thread wakeup IPIs, timer churn.
            AppId::Mysql => TxnMix {
                name: "MySQL",
                kind: MixKind::Throughput,
                native_cycles: 980_000,
                compute: 700_000,
                rx_packets: 5.0,
                rx_irqs: 3.0,
                rx_bytes: 400,
                tx_packets: 7.0,
                tx_kicks: 3.0,
                tx_bytes: 1200,
                ipis: 12.0,
                timers: 6.0,
                idles: 2.0,
                blk_ops: 2.0, // InnoDB log + data writes
                blk_bytes: 16 * 1024,
            },
            // Pure scheduler workload, no network I/O: sender/receiver
            // pairs ping-ponging over Unix sockets -> IPIs and idle
            // churn only. 10.36 s for 100 groups x 500 loops -> one
            // "transaction" = one group-loop ~ 456k cycles.
            AppId::Hackbench => TxnMix {
                name: "Hackbench",
                kind: MixKind::Throughput,
                native_cycles: 456_000,
                compute: 380_000,
                rx_packets: 0.0,
                rx_irqs: 0.0,
                rx_bytes: 0,
                tx_packets: 0.0,
                tx_kicks: 0.0,
                tx_bytes: 0,
                ipis: 9.0,
                timers: 1.5,
                idles: 2.0,
                blk_ops: 0.0,
                blk_bytes: 0,
            },
        }
    }

    /// The paper's reported native baseline, as a display string.
    pub fn native_baseline(self) -> &'static str {
        match self {
            AppId::NetperfRr => "45,578 trans/s",
            AppId::NetperfStream => "9,413 Mb/s",
            AppId::NetperfMaerts => "9,414 Mb/s",
            AppId::Apache => "15,469 trans/s",
            AppId::Memcached => "354,132 trans/s",
            AppId::Mysql => "4.45 s",
            AppId::Hackbench => "10.36 s",
        }
    }

    /// Whether the benchmark exercises network I/O at all (hackbench
    /// does not, which is why Fig. 7 shows it identical across I/O
    /// models).
    pub fn uses_io(self) -> bool {
        self != AppId::Hackbench
    }
}

/// All application mixes in figure order.
pub fn all_apps() -> Vec<TxnMix> {
    AppId::ALL.iter().map(|a| a.mix()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_benchmarks() {
        assert_eq!(all_apps().len(), 7);
    }

    #[test]
    fn cli_names_round_trip() {
        for app in AppId::ALL {
            assert_eq!(AppId::parse(app.cli_name()), Some(app));
        }
        assert_eq!(AppId::parse("no-such-app"), None);
    }

    #[test]
    fn compute_never_exceeds_native() {
        for app in AppId::ALL {
            let m = app.mix();
            assert!(
                m.compute <= m.native_cycles,
                "{}: compute {} > native {}",
                m.name,
                m.compute,
                m.native_cycles
            );
        }
    }

    #[test]
    fn hackbench_has_no_io() {
        let m = AppId::Hackbench.mix();
        assert_eq!(m.rx_packets, 0.0);
        assert_eq!(m.tx_packets, 0.0);
        assert!(!AppId::Hackbench.uses_io());
        assert!(AppId::Apache.uses_io());
    }

    #[test]
    fn every_mix_has_some_events() {
        for app in AppId::ALL {
            assert!(app.mix().events_per_txn() > 0.0, "{app:?}");
        }
    }
}
