//! # dvh-workloads
//!
//! Workload models for the DVH paper's evaluation (§4): the four
//! microbenchmarks of Table 1 and the seven application benchmarks of
//! Table 2, expressed as per-transaction mixes of
//! virtualization-visible events.
//!
//! The paper normalizes all application results to native execution.
//! What separates the configurations in Figs. 7–10 is therefore the
//! per-transaction count of trapping events (doorbells, interrupts,
//! timer programming, IPIs, idle transitions, data copies) multiplied
//! by the per-configuration cost of each event. The mixes here encode
//! those counts, calibrated against the paper's reported native
//! throughput numbers; the per-event costs come from the simulator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod micro;
pub mod runner;

pub use apps::{all_apps, AppId};
pub use micro::{run_micro, MicroResults};
pub use runner::{run_app, run_app_smp, MixKind, TxnMix, WorkloadResult};
