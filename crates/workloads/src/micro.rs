//! The Table 1 microbenchmarks, runnable on any machine
//! configuration; together with the configurations of §4 they
//! regenerate Table 3.

use dvh_core::Machine;

/// Results of one microbenchmark sweep, in CPU cycles (the unit
/// Table 3 reports).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroResults {
    /// Hypercall: VM ↔ hypervisor round trip with no work.
    pub hypercall: u64,
    /// DevNotify: virtio doorbell MMIO write.
    pub dev_notify: u64,
    /// ProgramTimer: LAPIC timer write in TSC-deadline mode.
    pub program_timer: u64,
    /// SendIPI: IPI to an idle destination vCPU, send + receive.
    pub send_ipi: u64,
}

/// Runs the four microbenchmarks on `m`, `iters` iterations each,
/// reporting the mean cost in cycles.
pub fn run_micro(m: &mut Machine, iters: u32) -> MicroResults {
    assert!(iters > 0, "need at least one iteration");
    let mut hypercall = 0u64;
    let mut dev_notify = 0u64;
    let mut program_timer = 0u64;
    let mut send_ipi = 0u64;
    for _ in 0..iters {
        hypercall += m.hypercall(0).as_u64();
        dev_notify += m.device_notify(0).as_u64();
        program_timer += m.program_timer(0).as_u64();
        send_ipi += m.send_ipi(0, 1).as_u64();
    }
    MicroResults {
        hypercall: hypercall / iters as u64,
        dev_notify: dev_notify / iters as u64,
        program_timer: program_timer / iters as u64,
        send_ipi: send_ipi / iters as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_core::MachineConfig;

    /// Paper Table 3, for reference in assertions.
    const PAPER_VM: MicroResults = MicroResults {
        hypercall: 1_575,
        dev_notify: 4_984,
        program_timer: 2_005,
        send_ipi: 3_273,
    };

    fn within(measured: u64, paper: u64, pct: u64) -> bool {
        let hi = paper + paper * pct / 100;
        let lo = paper - paper * pct / 100;
        (lo..=hi).contains(&measured)
    }

    #[test]
    fn vm_column_matches_paper_within_5_percent() {
        let mut m = Machine::build(MachineConfig::baseline(1));
        let r = run_micro(&mut m, 10);
        assert!(within(r.hypercall, PAPER_VM.hypercall, 5), "{r:?}");
        assert!(within(r.dev_notify, PAPER_VM.dev_notify, 5), "{r:?}");
        assert!(within(r.program_timer, PAPER_VM.program_timer, 5), "{r:?}");
        assert!(within(r.send_ipi, PAPER_VM.send_ipi, 5), "{r:?}");
    }

    #[test]
    fn nested_column_matches_paper_within_15_percent() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        let r = run_micro(&mut m, 5);
        assert!(within(r.hypercall, 37_733, 15), "{r:?}");
        assert!(within(r.dev_notify, 48_390, 15), "{r:?}");
        assert!(within(r.program_timer, 43_359, 15), "{r:?}");
        assert!(within(r.send_ipi, 39_456, 15), "{r:?}");
    }

    #[test]
    fn dvh_column_matches_paper_within_20_percent() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        let r = run_micro(&mut m, 5);
        // DVH does not help hypercalls (paper: 38,743, slightly worse
        // than vanilla nested).
        assert!(r.hypercall >= 35_000, "{r:?}");
        assert!(within(r.dev_notify, 13_815, 20), "{r:?}");
        assert!(within(r.program_timer, 3_247, 20), "{r:?}");
        assert!(within(r.send_ipi, 5_116, 20), "{r:?}");
    }

    #[test]
    fn l3_dvh_stays_flat() {
        // Table 3: DVH at L3 is within a few percent of DVH at L2 —
        // "DVH achieves performance close to non-nested virtualization
        // performance regardless of nested virtualization level."
        let mut l2 = Machine::build(MachineConfig::dvh(2));
        let r2 = run_micro(&mut l2, 3);
        let mut l3 = Machine::build(MachineConfig::dvh(3));
        let r3 = run_micro(&mut l3, 3);
        for (a, b) in [
            (r2.program_timer, r3.program_timer),
            (r2.send_ipi, r3.send_ipi),
            (r2.dev_notify, r3.dev_notify),
        ] {
            assert!(b.abs_diff(a) * 10 <= a, "L2 {a} vs L3 {b}");
        }
    }

    #[test]
    fn repeated_micro_runs_are_stable() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        let a = run_micro(&mut m, 3);
        let b = run_micro(&mut m, 3);
        assert_eq!(a.hypercall, b.hypercall);
        assert_eq!(a.program_timer, b.program_timer);
    }
}
