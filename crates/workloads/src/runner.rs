//! The workload runner: drives a [`Machine`] with a transaction mix
//! and reports overhead relative to native execution.

use dvh_core::{Cycles, Machine};
use std::fmt;

/// How a benchmark turns CPU cost into a reported score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MixKind {
    /// Latency-bound (netperf RR): every extra cycle on the
    /// request path lengthens the measured round trip, so
    /// `overhead = (native_latency - compute + busy) / native_latency`.
    Latency,
    /// Throughput-bound (everything else): the score only degrades
    /// once per-transaction CPU time exceeds the native
    /// inter-transaction budget, so
    /// `overhead = max(1, busy / native_budget)`.
    Throughput,
}

/// A per-transaction mix of virtualization-visible events.
///
/// Event counts may be fractional (e.g. one coalesced RX interrupt
/// per eight operations); the runner uses deterministic accumulators,
/// so results are exactly reproducible.
#[derive(Debug, Clone, PartialEq)]
pub struct TxnMix {
    /// Human-readable benchmark name.
    pub name: &'static str,
    /// Score semantics.
    pub kind: MixKind,
    /// Cycles a native transaction takes end to end (from the paper's
    /// native throughput/runtime numbers at 2.2 GHz): the full round
    /// trip for latency benchmarks, the per-vCPU budget for throughput
    /// benchmarks.
    pub native_cycles: u64,
    /// In-guest compute per transaction (the work itself; identical
    /// under every configuration).
    pub compute: u64,
    /// RX data packets per transaction (copies at each interposing
    /// level).
    pub rx_packets: f64,
    /// RX interrupts per transaction (after NIC/NAPI coalescing).
    pub rx_irqs: f64,
    /// Bytes per RX packet.
    pub rx_bytes: u32,
    /// TX packets per transaction.
    pub tx_packets: f64,
    /// TX doorbell kicks per transaction (virtio batches packets per
    /// kick).
    pub tx_kicks: f64,
    /// Bytes per TX packet.
    pub tx_bytes: u32,
    /// Inter-processor interrupts per transaction (task wakeups).
    pub ipis: f64,
    /// LAPIC timer reprogramming operations per transaction.
    pub timers: f64,
    /// Idle (halt + wake) rounds per transaction.
    pub idles: f64,
    /// Block I/O operations per transaction (log writes, reads).
    pub blk_ops: f64,
    /// Bytes per block operation.
    pub blk_bytes: u32,
}

impl TxnMix {
    /// Total per-transaction event count (for sanity checks).
    pub fn events_per_txn(&self) -> f64 {
        self.rx_irqs + self.tx_kicks + self.ipis + self.timers + self.idles + self.blk_ops
    }
}

/// The outcome of running a workload on one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadResult {
    /// Cycles of guest CPU time consumed per transaction (including
    /// all virtualization overhead, excluding idle waiting).
    pub cycles_per_txn: f64,
    /// Overhead relative to native execution (1.0 = native speed);
    /// this is the y-axis of Figs. 7–10.
    pub overhead: f64,
    /// Transactions simulated.
    pub txns: u32,
}

impl fmt::Display for WorkloadResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.2}x ({:.0} cycles/txn)",
            self.overhead, self.cycles_per_txn
        )
    }
}

/// Deterministic fractional-event accumulator.
#[derive(Debug, Default, Clone, Copy)]
struct Acc(f64);

impl Acc {
    /// Adds `rate` and returns how many whole events fire this round.
    fn step(&mut self, rate: f64) -> u32 {
        self.0 += rate;
        let n = self.0.floor();
        self.0 -= n;
        n as u32
    }
}

/// Runs `txns` transactions of `mix` on `m`, serialized on vCPU 0
/// (IPIs target vCPU 1). Returns the measured overhead.
pub fn run_app(m: &mut Machine, mix: &TxnMix, txns: u32) -> WorkloadResult {
    assert!(txns > 0, "need at least one transaction");
    let cpu = 0;
    let ipi_dest = 1.min(m.vcpus() - 1);
    let mut rx = Acc::default();
    let mut rxp = Acc::default();
    let mut tx = Acc::default();
    let mut txp = Acc::default();
    let mut ipi = Acc::default();
    let mut tim = Acc::default();
    let mut idl = Acc::default();
    let mut blk = Acc::default();

    let mut busy = Cycles::ZERO;
    for _ in 0..txns {
        let t0 = m.now(cpu);
        m.compute(cpu, Cycles::new(mix.compute));
        // TX side: packets accumulate, kicks flush them.
        let pkts = txp.step(mix.tx_packets);
        let kicks = tx.step(mix.tx_kicks);
        if kicks > 0 {
            let per_kick = (pkts.max(1) / kicks.max(1)).max(1);
            for _ in 0..kicks {
                m.net_tx(cpu, per_kick, mix.tx_bytes);
            }
        } else if pkts > 0 {
            // Packets queued under notification suppression: charge
            // driver-side work only via a zero-kick transmit (the
            // next kick will flush them); approximate with compute.
            m.compute(cpu, Cycles::new(120) * pkts as u64);
        }
        // RX side: coalesced bursts.
        let irqs = rx.step(mix.rx_irqs);
        let rpkts = rxp.step(mix.rx_packets);
        if irqs > 0 {
            let per_irq = (rpkts.max(1) / irqs.max(1)).max(1);
            for _ in 0..irqs {
                m.net_rx_burst(cpu, per_irq, mix.rx_bytes);
            }
        }
        if ipi_dest != cpu {
            for _ in 0..ipi.step(mix.ipis) {
                m.send_ipi(cpu, ipi_dest);
            }
        }
        for _ in 0..tim.step(mix.timers) {
            m.program_timer(cpu);
        }
        for _ in 0..idl.step(mix.idles) {
            m.idle_round(cpu);
        }
        for _ in 0..blk.step(mix.blk_ops) {
            m.blk_io(cpu, mix.blk_bytes, true);
        }
        busy += m.now(cpu) - t0;
    }
    let cycles_per_txn = busy.as_u64() as f64 / txns as f64;
    let native = mix.native_cycles as f64;
    let overhead = match mix.kind {
        MixKind::Latency => (native - mix.compute as f64 + cycles_per_txn) / native,
        MixKind::Throughput => (cycles_per_txn / native).max(1.0),
    };
    WorkloadResult {
        cycles_per_txn,
        overhead,
        txns,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_core::MachineConfig;

    fn mix() -> TxnMix {
        TxnMix {
            name: "test",
            kind: MixKind::Latency,
            native_cycles: 100_000,
            compute: 40_000,
            rx_packets: 1.0,
            rx_irqs: 1.0,
            rx_bytes: 64,
            tx_packets: 1.0,
            tx_kicks: 1.0,
            tx_bytes: 64,
            ipis: 0.5,
            timers: 1.0,
            idles: 0.5,
            blk_ops: 0.0,
            blk_bytes: 0,
        }
    }

    #[test]
    fn overhead_at_least_one() {
        let mut m = Machine::build(MachineConfig::baseline(1));
        let r = run_app(&mut m, &mix(), 50);
        assert!(r.overhead >= 1.0);
        assert!(
            r.overhead < 2.0,
            "L1 overhead should be modest: {}",
            r.overhead
        );
    }

    #[test]
    fn nested_overhead_exceeds_vm_overhead() {
        let mut l1 = Machine::build(MachineConfig::baseline(1));
        let o1 = run_app(&mut l1, &mix(), 50).overhead;
        let mut l2 = Machine::build(MachineConfig::baseline(2));
        let o2 = run_app(&mut l2, &mix(), 50).overhead;
        assert!(o2 > 1.5 * o1, "L2 {o2} vs L1 {o1}");
    }

    #[test]
    fn dvh_brings_nested_near_vm() {
        let mut l1 = Machine::build(MachineConfig::baseline(1));
        let o1 = run_app(&mut l1, &mix(), 50).overhead;
        let mut dvh = Machine::build(MachineConfig::dvh(2));
        let od = run_app(&mut dvh, &mix(), 50).overhead;
        assert!(od < o1 * 1.6, "DVH L2 ({od}) should approach VM ({o1})");
    }

    #[test]
    fn runs_are_deterministic() {
        let mut a = Machine::build(MachineConfig::baseline(2));
        let ra = run_app(&mut a, &mix(), 30);
        let mut b = Machine::build(MachineConfig::baseline(2));
        let rb = run_app(&mut b, &mix(), 30);
        assert_eq!(ra, rb);
    }

    #[test]
    fn fractional_accumulator_is_exact() {
        let mut a = Acc::default();
        let total: u32 = (0..1000).map(|_| a.step(0.25)).sum();
        assert_eq!(total, 250);
    }

    #[test]
    fn single_vcpu_machine_runs_without_self_ipis() {
        let mut cfg = MachineConfig::baseline(2);
        cfg.world.leaf_vcpus = 1;
        let mut m = Machine::build(cfg);
        let r = run_app(&mut m, &mix(), 30);
        assert!(r.overhead >= 1.0);
        assert!(
            !m.world().is_halted(0),
            "the lone vCPU must still be running"
        );
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_txns_rejected() {
        let mut m = Machine::build(MachineConfig::baseline(1));
        run_app(&mut m, &mix(), 0);
    }
}

/// Runs `txns` transactions of `mix` distributed round-robin across
/// every leaf vCPU, as the paper's multi-core guests do (4 vCPUs, one
/// netperf/apache worker per core). IPIs target the next vCPU in the
/// ring. Overhead is the aggregate busy time over the aggregate native
/// budget.
pub fn run_app_smp(m: &mut Machine, mix: &TxnMix, txns: u32) -> WorkloadResult {
    assert!(txns > 0, "need at least one transaction");
    let vcpus = m.vcpus();
    let mut accs: Vec<[Acc; 7]> = vec![[Acc::default(); 7]; vcpus];
    let mut busy = Cycles::ZERO;
    for i in 0..txns {
        let cpu = (i as usize) % vcpus;
        let ipi_dest = (cpu + 1) % vcpus;
        let send_ipis = ipi_dest != cpu;
        let a = &mut accs[cpu];
        let t0 = m.now(cpu);
        m.compute(cpu, Cycles::new(mix.compute));
        let pkts = a[0].step(mix.tx_packets);
        let kicks = a[1].step(mix.tx_kicks);
        if kicks > 0 {
            let per_kick = (pkts.max(1) / kicks.max(1)).max(1);
            for _ in 0..kicks {
                m.net_tx(cpu, per_kick, mix.tx_bytes);
            }
        }
        let irqs = a[2].step(mix.rx_irqs);
        let rpkts = a[3].step(mix.rx_packets);
        if irqs > 0 {
            let per_irq = (rpkts.max(1) / irqs.max(1)).max(1);
            for _ in 0..irqs {
                m.net_rx_burst(cpu, per_irq, mix.rx_bytes);
            }
        }
        if send_ipis {
            for _ in 0..a[4].step(mix.ipis) {
                m.send_ipi(cpu, ipi_dest);
            }
        }
        for _ in 0..a[5].step(mix.timers) {
            m.program_timer(cpu);
        }
        for _ in 0..a[6].step(mix.idles) {
            m.idle_round(cpu);
        }
        busy += m.now(cpu) - t0;
    }
    let cycles_per_txn = busy.as_u64() as f64 / txns as f64;
    let native = mix.native_cycles as f64;
    let overhead = match mix.kind {
        MixKind::Latency => (native - mix.compute as f64 + cycles_per_txn) / native,
        MixKind::Throughput => (cycles_per_txn / native).max(1.0),
    };
    WorkloadResult {
        cycles_per_txn,
        overhead,
        txns,
    }
}

#[cfg(test)]
mod smp_tests {
    use super::*;
    use crate::apps::AppId;
    use dvh_core::MachineConfig;

    #[test]
    fn smp_spreads_work_over_all_vcpus() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        run_app_smp(&mut m, &AppId::Apache.mix(), 80);
        for cpu in 0..m.vcpus() {
            assert!(m.now(cpu).as_u64() > 0, "cpu{cpu} never ran");
        }
    }

    #[test]
    fn smp_overhead_tracks_single_cpu_overhead() {
        let mix = AppId::Memcached.mix();
        let mut a = Machine::build(MachineConfig::baseline(2));
        let single = run_app(&mut a, &mix, 200).overhead;
        let mut b = Machine::build(MachineConfig::baseline(2));
        let smp = run_app_smp(&mut b, &mix, 200).overhead;
        let ratio = smp / single;
        assert!((0.8..1.25).contains(&ratio), "smp {smp} vs single {single}");
    }

    #[test]
    fn smp_is_deterministic() {
        let mix = AppId::Mysql.mix();
        let mut a = Machine::build(MachineConfig::dvh(2));
        let ra = run_app_smp(&mut a, &mix, 60);
        let mut b = Machine::build(MachineConfig::dvh(2));
        let rb = run_app_smp(&mut b, &mix, 60);
        assert_eq!(ra, rb);
    }
}
