//! The trace linter: structural invariants of the exit engine, proved
//! over a recorded [`TraceEvent`] log.
//!
//! Invariants (one rule id each):
//!
//! - `trace-truncated` — the bounded trace buffer evicted events; a
//!   truncated log proves nothing, so linting refuses it.
//! - `exit-nesting` — every `Intervention` happens inside an open exit
//!   and delivers to a hypervisor *below* the exiting level.
//! - `time-monotone` — per-CPU simulated time never goes backwards
//!   (engine events only; `IrqDelivered` carries the sender's clock).
//! - `reflection-depth` — exits come from levels `1..=leaf_level` and
//!   reflections target levels `1..leaf_level`: reflection never
//!   recurses past the hierarchy.
//! - `completed-balance` — every outermost exit is closed by exactly
//!   one matching `Completed`, and none is left open at the end.
//! - `return-balance` — every `Returned` closes the deepest open
//!   *nested* exit (matching level and reason) and never the outermost
//!   one, which only `Completed` may close: the events nest like
//!   brackets, which is what lets `dvh_obs::causal` rebuild exact
//!   causal trees.
//! - `cycle-attribution` — each `Completed.spent` equals exactly the
//!   simulated time between its exit and its completion.
//! - `cycle-conservation` — cycles charged during top-level exits
//!   (summed from `Completed`) equal the cycles attributed in
//!   [`RunStats::cycles_by_reason`], key by key.
//! - `shadow-bypass` — with VMCS shadowing on, no L1 `vmread`/`vmwrite`
//!   of a shadowed field ever exits (shadow hardware should have
//!   absorbed it).
//! - `dvh-reflected` — a `DvhIntercept` is never followed by a
//!   reflection of the same exit (DVH handled it; reflecting too would
//!   double-charge the guest hypervisor).

use crate::{Pass, Violation};
use dvh_arch::vmx::{ExitReason, ShadowFieldSet};
use dvh_arch::Cycles;
use dvh_hypervisor::{RunStats, TraceEvent, World};
use std::collections::BTreeMap;

/// Everything the linter needs to know about the world that produced
/// the trace.
pub struct TraceContext<'a> {
    /// Deepest virtualization level of the producing world.
    pub leaf_level: usize,
    /// The shadowed field set, when VMCS shadowing is in effect
    /// (`None` disables the `shadow-bypass` rule).
    pub shadow: Option<&'a ShadowFieldSet>,
    /// Events evicted from the bounded trace buffer.
    pub dropped: u64,
    /// The statistics ledger covering the same window as the trace
    /// (`None` disables the `cycle-conservation` rule).
    pub stats: Option<&'a RunStats>,
}

impl<'a> TraceContext<'a> {
    /// Builds the context straight from a world (the common case: the
    /// trace was recorded by `w` from a [`World::reset_stats`] onward).
    pub fn for_world(w: &'a World) -> TraceContext<'a> {
        TraceContext {
            leaf_level: w.leaf_level(),
            shadow: (w.config.vmcs_shadowing && w.profile.uses_shadowing)
                .then(|| w.shadow_fields()),
            dropped: w.trace_dropped(),
            stats: Some(&w.stats),
        }
    }
}

#[derive(Default)]
struct CpuState {
    /// Open exits: every `Exit` since the last `Completed`. The bottom
    /// entry is the outermost exit; deeper entries are the nested
    /// traps its handling caused.
    stack: Vec<(usize, ExitReason, Cycles)>,
    last_at: Option<Cycles>,
    /// Whether the most recent engine event was a `DvhIntercept`.
    last_was_dvh: bool,
}

fn violation(rule: &'static str, idx: usize, e: &TraceEvent, detail: String) -> Violation {
    Violation {
        pass: Pass::Trace,
        rule,
        location: format!("event #{idx} ({e})"),
        detail,
    }
}

/// Lints `events` against the exit-engine invariants. Returns every
/// violation found (empty = the trace is certified).
pub fn lint_trace(events: &[TraceEvent], ctx: &TraceContext) -> Vec<Violation> {
    let mut out = Vec::new();
    if ctx.dropped > 0 {
        out.push(Violation {
            pass: Pass::Trace,
            rule: "trace-truncated",
            location: "trace buffer".into(),
            detail: format!(
                "{} events were evicted; a truncated trace cannot be certified \
                 (enlarge the capacity passed to enable_tracing)",
                ctx.dropped
            ),
        });
        return out;
    }

    let mut cpus: BTreeMap<usize, CpuState> = BTreeMap::new();
    let mut attributed: BTreeMap<(usize, ExitReason), Cycles> = BTreeMap::new();

    for (idx, e) in events.iter().enumerate() {
        let st = cpus.entry(e.cpu()).or_default();
        if !matches!(e, TraceEvent::IrqDelivered { .. }) {
            if let Some(last) = st.last_at {
                if e.at() < last {
                    out.push(violation(
                        "time-monotone",
                        idx,
                        e,
                        format!("timestamp went backwards (previous event was at {last})"),
                    ));
                }
            }
            st.last_at = Some(e.at());
        }
        match e {
            TraceEvent::Exit {
                at,
                from_level,
                reason,
                vmcs_field,
                ..
            } => {
                if *from_level < 1 || *from_level > ctx.leaf_level {
                    out.push(violation(
                        "reflection-depth",
                        idx,
                        e,
                        format!(
                            "exit from level {from_level} outside 1..={}",
                            ctx.leaf_level
                        ),
                    ));
                }
                if let (1, Some(f), Some(shadow)) = (*from_level, *vmcs_field, ctx.shadow) {
                    let covered = match reason {
                        ExitReason::Vmread => shadow.covers_read(f),
                        ExitReason::Vmwrite => shadow.covers_write(f),
                        _ => false,
                    };
                    if covered {
                        out.push(violation(
                            "shadow-bypass",
                            idx,
                            e,
                            format!(
                                "L1 {reason} of field {f:#06x} exited although the field \
                                 is covered by the VMCS shadow"
                            ),
                        ));
                    }
                }
                st.stack.push((*from_level, *reason, *at));
                st.last_was_dvh = false;
            }
            TraceEvent::Completed {
                at,
                from_level,
                reason,
                spent,
                ..
            } => {
                match st.stack.first().copied() {
                    None => out.push(violation(
                        "completed-balance",
                        idx,
                        e,
                        "completion with no open exit on this CPU".into(),
                    )),
                    Some((fl, r, t0)) => {
                        if fl != *from_level || r != *reason {
                            out.push(violation(
                                "completed-balance",
                                idx,
                                e,
                                format!(
                                    "completion does not match the outermost open exit \
                                     (L{fl} {r})"
                                ),
                            ));
                        } else if *at < t0 || *at - t0 != *spent {
                            out.push(violation(
                                "cycle-attribution",
                                idx,
                                e,
                                format!(
                                    "spent {spent} but the exit opened at {t0} and \
                                     completed at {at}"
                                ),
                            ));
                        }
                    }
                }
                // The outermost exit closing also closes every nested
                // exit its handling caused.
                st.stack.clear();
                st.last_was_dvh = false;
                *attributed
                    .entry((*from_level, *reason))
                    .or_insert(Cycles::ZERO) += *spent;
            }
            TraceEvent::Returned {
                from_level, reason, ..
            } => {
                match st.stack.len() {
                    0 => out.push(violation(
                        "return-balance",
                        idx,
                        e,
                        "return with no open exit on this CPU".into(),
                    )),
                    1 => out.push(violation(
                        "return-balance",
                        idx,
                        e,
                        "return would close the outermost exit, which only a \
                         completion may close"
                            .into(),
                    )),
                    _ => {
                        let (fl, r, _) = st.stack.pop().expect("len checked above");
                        if fl != *from_level || r != *reason {
                            out.push(violation(
                                "return-balance",
                                idx,
                                e,
                                format!("return does not match the deepest open exit (L{fl} {r})"),
                            ));
                        }
                    }
                }
                // A return after a DVH intercept is normal unwinding,
                // not a reflection of the intercepted exit.
                st.last_was_dvh = false;
            }
            TraceEvent::Intervention { hv_level, .. } => {
                if *hv_level < 1 || *hv_level >= ctx.leaf_level.max(1) {
                    out.push(violation(
                        "reflection-depth",
                        idx,
                        e,
                        format!(
                            "reflection to level {hv_level} outside 1..{}",
                            ctx.leaf_level
                        ),
                    ));
                }
                match st.stack.last() {
                    None => out.push(violation(
                        "exit-nesting",
                        idx,
                        e,
                        "intervention outside any open exit".into(),
                    )),
                    Some((fl, _, _)) if hv_level >= fl => out.push(violation(
                        "exit-nesting",
                        idx,
                        e,
                        format!(
                            "intervention at level {hv_level} not below the exiting \
                             level {fl}"
                        ),
                    )),
                    Some(_) => {}
                }
                if st.last_was_dvh {
                    out.push(violation(
                        "dvh-reflected",
                        idx,
                        e,
                        "exit was DVH-intercepted and then reflected anyway".into(),
                    ));
                }
            }
            TraceEvent::DvhIntercept { .. } => st.last_was_dvh = true,
            TraceEvent::IrqDelivered { .. } => {}
        }
    }

    for (cpu, st) in &cpus {
        if let Some((fl, r, t0)) = st.stack.first() {
            out.push(Violation {
                pass: Pass::Trace,
                rule: "completed-balance",
                location: format!("cpu{cpu} end of trace"),
                detail: format!("exit L{fl} {r} opened at {t0} never completed"),
            });
        }
    }

    if let Some(stats) = ctx.stats {
        if attributed != stats.cycles_by_reason {
            let keys: std::collections::BTreeSet<_> = attributed
                .keys()
                .chain(stats.cycles_by_reason.keys())
                .collect();
            let diffs: Vec<String> = keys
                .into_iter()
                .filter(|k| attributed.get(k) != stats.cycles_by_reason.get(k))
                .map(|(l, r)| {
                    format!(
                        "(L{l}, {r}): trace {} vs ledger {}",
                        attributed.get(&(*l, *r)).copied().unwrap_or(Cycles::ZERO),
                        stats
                            .cycles_by_reason
                            .get(&(*l, *r))
                            .copied()
                            .unwrap_or(Cycles::ZERO),
                    )
                })
                .collect();
            out.push(Violation {
                pass: Pass::Trace,
                rule: "cycle-conservation",
                location: "stats ledger".into(),
                detail: format!(
                    "cycles charged during top-level exits diverge from \
                     RunStats::attribute_cycles: {}",
                    diffs.join("; ")
                ),
            });
        }
    }

    out
}
