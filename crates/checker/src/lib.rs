//! # dvh-checker
//!
//! Static analysis and invariant verification for the DVH simulator's
//! exit engine. Four passes, all runnable from `dvh check` and from
//! the test suite:
//!
//! 1. **VM-entry consistency** ([`vmentry`]): every simulated VM entry
//!    validates the entered VMCS against Intel SDM §26-style rules
//!    (posted-interrupt descriptor and vector, shadow-VMCS link
//!    pointer, secondary-control activation, EPT pointer, DVH
//!    capability gating), reporting violations with the owning level
//!    and field encoding.
//! 2. **Trace linting** ([`trace_lint`]): a pass over the
//!    [`dvh_hypervisor::TraceEvent`] log proving structural invariants
//!    of the exit engine — well-formed exit/intervention nesting,
//!    per-CPU time monotonicity, bounded reflection depth, exact cycle
//!    conservation against the [`dvh_hypervisor::RunStats`] ledger, no
//!    reflection of shadowed VMCS accesses, and no reflection after a
//!    DVH interception.
//! 3. **Source linting** ([`source_lint`]): std-only lints over
//!    `crates/*/src` for project-specific hazards — load-bearing
//!    `debug_assert!` in exit-path code, raw VMCS container indexing
//!    that bypasses the tracked accessors, and unchecked level-keyed
//!    indexing in hypervisor dispatch paths.
//! 4. **Metrics conservation** ([`metrics_lint`]): certifies the
//!    dvh-obs observability layer against the engine's own ledgers —
//!    the registry's per-(level, reason) exit cycle totals must equal
//!    [`dvh_hypervisor::RunStats::cycles_by_reason`] key for key in
//!    both directions, every histogram must be internally consistent,
//!    and the serialized Chrome trace export must round-trip with
//!    outermost span durations summing to the same ledger.
//! 5. **Causal conservation** ([`causal_lint`]): certifies the
//!    causality layer (`dvh_obs::causal`) that rebuilds each outermost
//!    exit's tree of nested traps — root spans must reproduce the
//!    attribution ledger bit for bit, tree geometry must partition
//!    (children inside parents, siblings non-overlapping), the forest
//!    must hold exactly one node per counted hardware exit, and the
//!    folded flamegraph text must re-parse to the same totals.
//!
//! The [`harness`] module ties the first two passes to representative
//! workloads (the paper's Fig. 7 configurations) for `dvh check`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod causal_lint;
pub mod harness;
pub mod metrics_lint;
pub mod source_lint;
pub mod trace_lint;
pub mod vmentry;

use std::fmt;

/// Which checker pass produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Pass {
    /// VM-entry consistency checking.
    Vmentry,
    /// Trace-log invariant linting.
    Trace,
    /// Source-code linting.
    Source,
    /// Pinned-fixture certification (simulated results must be
    /// bit-for-bit identical to the pre-optimization engine's).
    Fixture,
    /// Metrics-conservation certification (the dvh-obs registry and
    /// trace export must agree with the engine's attribution ledger).
    Metrics,
    /// Causal-conservation certification (the causal forest rebuilt
    /// from the trace must reproduce the attribution ledger and
    /// partition exactly).
    Causal,
}

impl fmt::Display for Pass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pass::Vmentry => "vmentry",
            Pass::Trace => "trace",
            Pass::Source => "source",
            Pass::Fixture => "fixture",
            Pass::Metrics => "metrics",
            Pass::Causal => "causal",
        })
    }
}

/// One invariant violation found by any pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The pass that found it.
    pub pass: Pass,
    /// Stable kebab-case rule identifier.
    pub rule: &'static str,
    /// Where: "L1 cpu0 field 0x2016", "event #42", or "file:line".
    pub location: String,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}/{}] {}: {}",
            self.pass, self.rule, self.location, self.detail
        )
    }
}

/// The combined result of a checker run.
#[derive(Debug, Default)]
pub struct Report {
    /// One human-readable line per pass/workload executed.
    pub ran: Vec<String>,
    /// Everything found, in discovery order.
    pub violations: Vec<Violation>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Report {
        Report::default()
    }

    /// Whether every pass came back clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Records that a pass ran, with its violations; `scope` prefixes
    /// each violation's location so reports from multiple workloads
    /// stay attributable.
    pub fn add(&mut self, ran: String, scope: &str, violations: Vec<Violation>) {
        self.ran.push(ran);
        self.violations.extend(violations.into_iter().map(|mut v| {
            if !scope.is_empty() {
                v.location = format!("{scope}: {}", v.location);
            }
            v
        }));
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.ran {
            writeln!(f, "  {line}")?;
        }
        if self.is_clean() {
            writeln!(f, "dvh-checker: all invariants hold")
        } else {
            for v in &self.violations {
                writeln!(f, "{v}")?;
            }
            writeln!(
                f,
                "dvh-checker: {} violation(s) found",
                self.violations.len()
            )
        }
    }
}
