//! The checker harness: runs representative workloads with VM-entry
//! checking and tracing enabled, then runs every pass. This is what
//! `dvh check` executes.

use crate::causal_lint::lint_causal;
use crate::metrics_lint::{lint_chrome_export, lint_metrics};
use crate::source_lint::lint_sources;
use crate::trace_lint::{lint_trace, TraceContext};
use crate::{Report, Violation};
use dvh_core::{Machine, MachineConfig};
use std::path::Path;

/// Trace capacity used by the harness — large enough that no harness
/// workload ever truncates (truncation is itself a violation).
pub const TRACE_CAPACITY: usize = 1 << 20;

/// The paper's Fig. 7 configuration matrix (the default `dvh check`
/// workload set).
pub fn fig7_configs() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("fig7/vm", MachineConfig::baseline(1)),
        ("fig7/vm-pt", MachineConfig::passthrough(1)),
        ("fig7/nested", MachineConfig::baseline(2)),
        ("fig7/nested-pt", MachineConfig::passthrough(2)),
        ("fig7/nested-dvh-vp", MachineConfig::dvh_vp(2)),
        ("fig7/nested-dvh", MachineConfig::dvh(2)),
    ]
}

/// A workload that touches every mechanism the invariants speak about:
/// hypercalls (reflection), timers and IPIs (DVH interception), MMIO
/// doorbells (I/O cascade), network and block I/O, and idle rounds
/// (halt chains and wakeups).
pub fn exercise(m: &mut Machine) {
    m.hypercall(0);
    m.program_timer(0);
    if m.vcpus() > 1 {
        m.send_ipi(0, 1);
    }
    m.device_notify(0);
    m.net_tx(0, 4, 1500);
    m.net_rx(0, 1500);
    m.blk_io(0, 4096, true);
    m.idle_round(0);
    m.timer_sleep_round(0);
    m.hypercall(0);
}

/// One pinned ledger row: what [`exercise`] must produce on a fresh
/// machine of the named Fig. 7 configuration.
#[derive(Debug, Clone, Copy)]
pub struct PinnedFixture {
    /// Configuration name (matches [`fig7_configs`]).
    pub name: &'static str,
    /// Total hardware exits.
    pub exits: u64,
    /// Total guest-hypervisor interventions.
    pub interventions: u64,
    /// Total DVH interceptions.
    pub dvh: u64,
    /// Total cycles attributed to outermost exits.
    pub cycles: u64,
    /// CPU 0's simulated clock after the workload.
    pub now0: u64,
}

/// The ledger [`exercise`] produced on every Fig. 7 configuration
/// *before* the engine's storage/dispatch optimizations (dense VMCS
/// slots, dense exit ledger, lazy tracing) landed. The optimizations
/// claim to change how fast the simulator runs and nothing else; this
/// pass holds them to it, bit for bit. A mismatch means an
/// "optimization" changed simulated behavior — reject it.
pub const PINNED_FIG7: [PinnedFixture; 6] = [
    PinnedFixture {
        name: "fig7/vm",
        exits: 10,
        interventions: 0,
        dvh: 0,
        cycles: 31_761,
        now0: 35_483,
    },
    PinnedFixture {
        name: "fig7/vm-pt",
        exits: 8,
        interventions: 0,
        dvh: 0,
        cycles: 19_211,
        now0: 22_388,
    },
    PinnedFixture {
        name: "fig7/nested",
        exits: 160,
        interventions: 13,
        dvh: 0,
        cycles: 518_027,
        now0: 490_974,
    },
    PinnedFixture {
        name: "fig7/nested-pt",
        exits: 122,
        interventions: 10,
        dvh: 0,
        cycles: 384_742,
        now0: 355_089,
    },
    PinnedFixture {
        name: "fig7/nested-dvh-vp",
        exits: 119,
        interventions: 10,
        dvh: 0,
        cycles: 378_336,
        now0: 350_378,
    },
    PinnedFixture {
        name: "fig7/nested-dvh",
        exits: 32,
        interventions: 2,
        dvh: 3,
        cycles: 112_981,
        now0: 116_703,
    },
];

/// Runs [`exercise`] on a fresh machine per configuration (checking
/// and tracing off — exactly how the fixture was captured) and
/// compares every ledger total against [`PINNED_FIG7`].
pub fn check_pinned_fixture() -> Vec<Violation> {
    let mut out = Vec::new();
    let configs = fig7_configs();
    for pinned in PINNED_FIG7 {
        let Some((_, config)) = configs.iter().find(|(n, _)| *n == pinned.name) else {
            out.push(Violation {
                pass: crate::Pass::Fixture,
                rule: "pinned-config-exists",
                location: pinned.name.to_string(),
                detail: "pinned fixture has no matching fig7 configuration".into(),
            });
            continue;
        };
        let mut m = Machine::build(config.clone());
        exercise(&mut m);
        let w = m.world_mut();
        let got = [
            ("exits", w.stats.total_exits(), pinned.exits),
            (
                "interventions",
                w.stats.total_interventions(),
                pinned.interventions,
            ),
            ("dvh", w.stats.total_dvh_intercepts(), pinned.dvh),
            (
                "cycles",
                w.stats.total_attributed_cycles().as_u64(),
                pinned.cycles,
            ),
            ("now0", w.now(0).as_u64(), pinned.now0),
        ];
        for (what, actual, expected) in got {
            if actual != expected {
                out.push(Violation {
                    pass: crate::Pass::Fixture,
                    rule: "ledger-matches-pinned",
                    location: pinned.name.to_string(),
                    detail: format!(
                        "{what} = {actual}, pinned pre-optimization fixture says {expected}"
                    ),
                });
            }
        }
    }
    out
}

/// Builds a machine for `config`, arms checking, tracing, and metrics,
/// runs the standard workload, and returns all vmentry-, trace-,
/// metrics-, and causal-pass violations (empty = certified).
pub fn check_machine(config: MachineConfig) -> Vec<Violation> {
    let mut m = Machine::build(config);
    {
        let w = m.world_mut();
        w.enable_tracing(TRACE_CAPACITY);
        w.enable_metrics();
        w.enable_vmentry_checks();
        // Stats, trace, and metrics must cover the same window for
        // cycle conservation to be exact.
        w.reset_stats();
    }
    exercise(&mut m);
    let w = m.world_mut();
    let mut out = crate::vmentry::check_world(w);
    let ctx = TraceContext::for_world(w);
    out.extend(lint_trace(w.trace_events(), &ctx));
    if let Some(reg) = w.metrics() {
        out.extend(lint_metrics(reg, &w.stats));
    }
    out.extend(lint_chrome_export(
        w.trace_events(),
        w.num_cpus(),
        w.leaf_level(),
        &w.stats,
    ));
    out.extend(lint_causal(
        w.trace_events(),
        w.num_cpus(),
        w.trace_dropped(),
        &w.stats,
    ));
    out
}

/// Runs every pass: vmentry, trace, and metrics over each Fig. 7
/// configuration, the pinned fixture, and the source lint over
/// `source_root` when given (pass the repo root; `None` skips the
/// source pass, e.g. when running from an installed binary with no
/// checkout around).
pub fn run_all(source_root: Option<&Path>) -> std::io::Result<Report> {
    let mut report = Report::new();
    for (name, config) in fig7_configs() {
        let violations = check_machine(config);
        report.add(
            format!(
                "vmentry+trace+metrics+causal {name}: {} violation(s)",
                violations.len()
            ),
            name,
            violations,
        );
    }
    let pinned = check_pinned_fixture();
    report.add(
        format!(
            "pinned fixture: {} configuration(s), {} violation(s)",
            PINNED_FIG7.len(),
            pinned.len()
        ),
        "pinned-fixture",
        pinned,
    );
    if let Some(root) = source_root {
        let outcome = lint_sources(root)?;
        report.add(
            format!(
                "source lint: {} files, {} violation(s)",
                outcome.files_scanned,
                outcome.violations.len()
            ),
            "",
            outcome.violations,
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fig7_config_is_certified() {
        for (name, config) in fig7_configs() {
            let violations = check_machine(config);
            assert!(violations.is_empty(), "{name}: {:?}", violations);
        }
    }

    #[test]
    fn engine_matches_pinned_pre_optimization_fixture() {
        let violations = check_pinned_fixture();
        assert!(violations.is_empty(), "{violations:?}");
    }
}
