//! The checker harness: runs representative workloads with VM-entry
//! checking and tracing enabled, then runs every pass. This is what
//! `dvh check` executes.

use crate::source_lint::lint_sources;
use crate::trace_lint::{lint_trace, TraceContext};
use crate::{Report, Violation};
use dvh_core::{Machine, MachineConfig};
use std::path::Path;

/// Trace capacity used by the harness — large enough that no harness
/// workload ever truncates (truncation is itself a violation).
pub const TRACE_CAPACITY: usize = 1 << 20;

/// The paper's Fig. 7 configuration matrix (the default `dvh check`
/// workload set).
pub fn fig7_configs() -> Vec<(&'static str, MachineConfig)> {
    vec![
        ("fig7/vm", MachineConfig::baseline(1)),
        ("fig7/vm-pt", MachineConfig::passthrough(1)),
        ("fig7/nested", MachineConfig::baseline(2)),
        ("fig7/nested-pt", MachineConfig::passthrough(2)),
        ("fig7/nested-dvh-vp", MachineConfig::dvh_vp(2)),
        ("fig7/nested-dvh", MachineConfig::dvh(2)),
    ]
}

/// A workload that touches every mechanism the invariants speak about:
/// hypercalls (reflection), timers and IPIs (DVH interception), MMIO
/// doorbells (I/O cascade), network and block I/O, and idle rounds
/// (halt chains and wakeups).
pub fn exercise(m: &mut Machine) {
    m.hypercall(0);
    m.program_timer(0);
    if m.vcpus() > 1 {
        m.send_ipi(0, 1);
    }
    m.device_notify(0);
    m.net_tx(0, 4, 1500);
    m.net_rx(0, 1500);
    m.blk_io(0, 4096, true);
    m.idle_round(0);
    m.timer_sleep_round(0);
    m.hypercall(0);
}

/// Builds a machine for `config`, arms checking and tracing, runs the
/// standard workload, and returns all vmentry- and trace-pass
/// violations (empty = certified).
pub fn check_machine(config: MachineConfig) -> Vec<Violation> {
    let mut m = Machine::build(config);
    {
        let w = m.world_mut();
        w.enable_tracing(TRACE_CAPACITY);
        w.enable_vmentry_checks();
        // Stats and trace must cover the same window for cycle
        // conservation to be exact.
        w.reset_stats();
    }
    exercise(&mut m);
    let w = m.world_mut();
    let mut out = crate::vmentry::check_world(w);
    let ctx = TraceContext::for_world(w);
    out.extend(lint_trace(w.trace_events(), &ctx));
    out
}

/// Runs all three passes: the vmentry and trace passes over every
/// Fig. 7 configuration, and the source lint over `source_root` when
/// given (pass the repo root; `None` skips the source pass, e.g. when
/// running from an installed binary with no checkout around).
pub fn run_all(source_root: Option<&Path>) -> std::io::Result<Report> {
    let mut report = Report::new();
    for (name, config) in fig7_configs() {
        let violations = check_machine(config);
        report.add(
            format!("vmentry+trace {name}: {} violation(s)", violations.len()),
            name,
            violations,
        );
    }
    if let Some(root) = source_root {
        let outcome = lint_sources(root)?;
        report.add(
            format!(
                "source lint: {} files, {} violation(s)",
                outcome.files_scanned,
                outcome.violations.len()
            ),
            "",
            outcome.violations,
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_fig7_config_is_certified() {
        for (name, config) in fig7_configs() {
            let violations = check_machine(config);
            assert!(violations.is_empty(), "{name}: {:?}", violations);
        }
    }
}
