//! The causal-conservation pass: certifies `dvh_obs::causal` — the
//! layer that turns a flat trace into causal trees of exits — against
//! the engine's own ledgers.
//!
//! The causality layer is where the paper's exit-multiplication story
//! is *derived* rather than asserted: one outermost exit's tree shows
//! every nested trap its handling caused. That derivation is only
//! trustworthy if it conserves, so this pass proves, on a complete
//! (untruncated) trace:
//!
//! - `causal-roots-conserved`: the forest's per-(level, reason) root
//!   spans equal [`RunStats::cycles_by_reason`] in both directions —
//!   the tree view attributes exactly what the engine attributed, key
//!   for key, bit for bit.
//! - `causal-well-formed`: every node's interval is ordered, every
//!   child lies inside its parent, and siblings do not overlap — the
//!   geometry that makes `self_cycles` (span minus children) exact.
//! - `causal-balance`: nothing was orphaned during reconstruction; a
//!   complete trace must build a complete forest.
//! - `causal-exit-count`: the forest holds exactly one node per
//!   hardware exit the engine counted ([`RunStats::total_exits`]).
//! - `folded-conserved`: the folded flamegraph rendering, re-parsed
//!   from its own text output, sums per root frame to the same root
//!   totals — what a flamegraph viewer would display conserves too.

use crate::{Pass, Violation};
use dvh_hypervisor::{RunStats, TraceEvent};
use dvh_obs::causal::{CausalNode, Forest};
use std::collections::BTreeMap;

fn violation(rule: &'static str, location: String, detail: String) -> Violation {
    Violation {
        pass: Pass::Causal,
        rule,
        location,
        detail,
    }
}

/// Lints the causal forest reconstructed from `events` against the
/// engine ledger. `dropped` is the trace buffer's eviction count; a
/// truncated trace cannot be certified and short-circuits like the
/// trace pass does.
pub fn lint_causal(
    events: &[TraceEvent],
    num_cpus: usize,
    dropped: u64,
    stats: &RunStats,
) -> Vec<Violation> {
    let mut out = Vec::new();
    if dropped > 0 {
        out.push(violation(
            "trace-truncated",
            "trace buffer".into(),
            format!(
                "{dropped} events were evicted; a truncated trace cannot certify \
                 causal conservation"
            ),
        ));
        return out;
    }
    let forest = dvh_hypervisor::trace_export::causal_forest(events, num_cpus);

    if forest.incomplete > 0 {
        out.push(violation(
            "causal-balance",
            "causal forest".into(),
            format!(
                "{} exits could not be placed in a tree although the trace is complete",
                forest.incomplete
            ),
        ));
    }

    let roots = forest.root_cycle_totals();
    let ledger = &stats.cycles_by_reason;
    for ((level, reason), cycles) in ledger {
        match roots.get(&(*level, *reason)) {
            None => out.push(violation(
                "causal-roots-conserved",
                format!("L{level} {reason}"),
                format!(
                    "ledger attributes {} cycles but the forest has no root",
                    cycles.as_u64()
                ),
            )),
            Some(got) if *got != cycles.as_u64() => out.push(violation(
                "causal-roots-conserved",
                format!("L{level} {reason}"),
                format!(
                    "root spans sum to {got} cycles, ledger says {}",
                    cycles.as_u64()
                ),
            )),
            Some(_) => {}
        }
    }
    for ((level, reason), got) in &roots {
        if !ledger.contains_key(&(*level, *reason)) {
            out.push(violation(
                "causal-roots-conserved",
                format!("L{level} {reason}"),
                format!("forest has {got} root cycles for a key the ledger never attributed"),
            ));
        }
    }

    let total = forest.total_exits();
    if total != stats.total_exits() {
        out.push(violation(
            "causal-exit-count",
            "causal forest".into(),
            format!(
                "forest holds {total} exits, engine counted {}",
                stats.total_exits()
            ),
        ));
    }

    for tree in &forest.trees {
        check_node(&tree.root, tree.cpu, &mut out);
    }

    out.extend(lint_folded(&forest));
    out
}

/// Recursively checks interval geometry: ordered spans, containment,
/// and non-overlapping siblings.
fn check_node(node: &CausalNode, cpu: usize, out: &mut Vec<Violation>) {
    let here = format!("cpu{cpu} {} [{}, {}]", node.frame(), node.start, node.end);
    if node.start > node.end {
        out.push(violation(
            "causal-well-formed",
            here.clone(),
            "node interval is reversed".into(),
        ));
    }
    let mut prev_end = node.start;
    for child in &node.children {
        if child.start < node.start || child.end > node.end {
            out.push(violation(
                "causal-well-formed",
                here.clone(),
                format!(
                    "child {} [{}, {}] escapes its parent",
                    child.frame(),
                    child.start,
                    child.end
                ),
            ));
        }
        if child.start < prev_end {
            out.push(violation(
                "causal-well-formed",
                here.clone(),
                format!(
                    "child {} [{}, {}] overlaps its preceding sibling",
                    child.frame(),
                    child.start,
                    child.end
                ),
            ));
        }
        prev_end = child.end.max(prev_end);
        check_node(child, cpu, out);
    }
}

/// Re-parses the folded flamegraph text and proves the per-root-frame
/// sums equal the forest's root totals.
fn lint_folded(forest: &Forest) -> Vec<Violation> {
    let mut out = Vec::new();
    let mut by_root: BTreeMap<String, u64> = BTreeMap::new();
    for line in forest.folded().lines() {
        let Some((path, cycles)) = line.rsplit_once(' ') else {
            out.push(violation(
                "folded-conserved",
                "folded output".into(),
                format!("unparseable folded line: '{line}'"),
            ));
            continue;
        };
        let Ok(cycles) = cycles.parse::<u64>() else {
            out.push(violation(
                "folded-conserved",
                "folded output".into(),
                format!("non-numeric cycle count: '{line}'"),
            ));
            continue;
        };
        let root = path.split(';').next().unwrap_or(path).to_string();
        *by_root.entry(root).or_insert(0) += cycles;
    }
    for ((level, reason), cycles) in forest.root_cycle_totals() {
        let frame = format!("L{level} {reason}");
        let got = by_root.get(&frame).copied().unwrap_or(0);
        if got != cycles {
            out.push(violation(
                "folded-conserved",
                frame,
                format!("folded lines sum to {got} cycles, root totals say {cycles}"),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_core::{Machine, MachineConfig};

    fn traced_machine() -> Machine {
        let mut m = Machine::build(MachineConfig::baseline(2));
        {
            let w = m.world_mut();
            w.enable_tracing(1 << 20);
            w.reset_stats();
        }
        m.hypercall(0);
        m.net_tx(0, 4, 1500);
        m.idle_round(0);
        m
    }

    #[test]
    fn clean_nested_run_certifies() {
        let mut m = traced_machine();
        let w = m.world_mut();
        let violations = lint_causal(w.trace_events(), w.num_cpus(), w.trace_dropped(), &w.stats);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn truncated_trace_is_refused() {
        let violations = lint_causal(&[], 1, 5, &RunStats::new());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].rule, "trace-truncated");
    }

    #[test]
    fn tampered_ledger_breaks_root_conservation() {
        let mut m = traced_machine();
        let w = m.world_mut();
        let mut stats = w.stats.clone();
        let ((level, reason), _) = stats
            .cycles_by_reason
            .iter()
            .next()
            .map(|(k, v)| (*k, *v))
            .expect("some exits");
        stats
            .cycles_by_reason
            .insert((level, reason), dvh_arch::Cycles::new(1));
        let violations = lint_causal(w.trace_events(), w.num_cpus(), w.trace_dropped(), &stats);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "causal-roots-conserved"),
            "{violations:?}"
        );
    }

    #[test]
    fn dropped_events_break_balance_or_count() {
        // Feed the linter a trace with its opening events cut off:
        // either balance or the exit count must trip.
        let mut m = traced_machine();
        let w = m.world_mut();
        let events: Vec<_> = w.trace_events().iter().skip(3).cloned().collect();
        let violations = lint_causal(&events, w.num_cpus(), 0, &w.stats);
        assert!(
            violations
                .iter()
                .any(|v| v.rule == "causal-balance" || v.rule == "causal-exit-count"),
            "{violations:?}"
        );
    }
}
