//! The source linter: std-only, project-specific lints over
//! `crates/*/src`. No parsing framework — the rules are textual, which
//! is exactly as strong as they need to be for this codebase's idioms,
//! and keeps the checker free of external dependencies.
//!
//! Rules:
//!
//! - `debug-assert-exit-path` — `debug_assert!` in non-test exit-engine
//!   code (`crates/hypervisor/src`). Invariants on exit paths are
//!   load-bearing for the cycle ledger; they must hold in release
//!   builds too (promote to `assert!` or a checker invariant).
//! - `raw-vmcs-index` — indexing the VMCS container directly instead
//!   of going through the tracked `vmcs()`/`vmcs_mut()` accessors
//!   (allowed only in `hypervisor/src/world.rs`, where the accessors
//!   live).
//! - `unchecked-level-index` — raw `[level]`-style subscripts with
//!   level-typed variables in hypervisor dispatch paths, which panic
//!   on a bad level instead of reporting it (allowed only in
//!   `world.rs`, whose accessors document their bounds).
//! - `clone-on-exit-path` — `.clone()` in non-test `exits.rs` code.
//!   The exit engine runs millions of times per sweep and is
//!   allocation-free by design (dense VMCS slots, index-iterated
//!   profile lists); a clone on this path is a per-exit heap
//!   allocation and goes through review, not past it.
//!
//! Lines inside `#[cfg(test)]` blocks and comment lines are skipped
//! (by repo convention test modules sit at the bottom of each file).

use crate::{Pass, Violation};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Variable names treated as virtualization-level indices by the
/// `unchecked-level-index` rule.
const LEVEL_NAMES: [&str; 6] = [
    "level",
    "from_level",
    "owner",
    "hv_level",
    "stage",
    "reader_level",
];

/// Result of a source-lint run.
#[derive(Debug, Default)]
pub struct SourceLintOutcome {
    /// How many `.rs` files were scanned.
    pub files_scanned: usize,
    /// Violations found.
    pub violations: Vec<Violation>,
}

/// Lints every `crates/*/src/**/*.rs` under `repo_root`.
pub fn lint_sources(repo_root: &Path) -> io::Result<SourceLintOutcome> {
    let mut files = Vec::new();
    let crates_dir = repo_root.join("crates");
    for entry in fs::read_dir(&crates_dir)? {
        let src = entry?.path().join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    files.sort();
    let mut outcome = SourceLintOutcome::default();
    for path in files {
        let text = fs::read_to_string(&path)?;
        let display = path
            .strip_prefix(repo_root)
            .unwrap_or(&path)
            .display()
            .to_string();
        outcome.violations.extend(lint_file_text(&display, &text));
        outcome.files_scanned += 1;
    }
    Ok(outcome)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints one file's text. `display_path` uses `/` separators (as repo
/// paths do); it selects which rules apply.
pub fn lint_file_text(display_path: &str, text: &str) -> Vec<Violation> {
    let normalized = display_path.replace('\\', "/");
    let in_hypervisor = normalized.contains("hypervisor/src");
    let is_world = in_hypervisor && normalized.ends_with("world.rs");
    let is_exits = in_hypervisor && normalized.ends_with("exits.rs");
    // Built at runtime so the linter's own source never matches.
    let vmcs_needle = format!("{}{}", ".vmcs", "[");
    let clone_needle = format!("{}{}", ".clone", "()");
    let level_needles: Vec<String> = LEVEL_NAMES.iter().map(|n| format!("[{n}]")).collect();

    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.contains("#[cfg(test)]") {
            break; // test module: rest of the file is test-only code
        }
        let trimmed = line.trim_start();
        if trimmed.starts_with("//") {
            continue;
        }
        let loc = || format!("{display_path}:{}", i + 1);
        if in_hypervisor && trimmed.contains("debug_assert") {
            out.push(Violation {
                pass: Pass::Source,
                rule: "debug-assert-exit-path",
                location: loc(),
                detail: "debug_assert! in exit-engine code is compiled out of \
                         release builds; promote it to assert! or a checker \
                         invariant"
                    .into(),
            });
        }
        if is_exits && trimmed.contains(&clone_needle) {
            out.push(Violation {
                pass: Pass::Source,
                rule: "clone-on-exit-path",
                location: loc(),
                detail: "the exit engine is allocation-free by design; a \
                         .clone() here is a per-exit heap allocation — iterate \
                         by index or borrow instead"
                    .into(),
            });
        }
        if !is_world && trimmed.contains(&vmcs_needle) {
            out.push(Violation {
                pass: Pass::Source,
                rule: "raw-vmcs-index",
                location: loc(),
                detail: "raw VMCS container indexing bypasses the tracked \
                         vmcs()/vmcs_mut() accessors"
                    .into(),
            });
        }
        if in_hypervisor && !is_world {
            for needle in &level_needles {
                if trimmed.contains(needle.as_str()) {
                    out.push(Violation {
                        pass: Pass::Source,
                        rule: "unchecked-level-index",
                        location: loc(),
                        detail: format!(
                            "unchecked {needle} indexing in a dispatch path can \
                             panic on a bad level; use a bounds-documented \
                             accessor from world.rs"
                        ),
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_dispatch_code_passes() {
        let vs = lint_file_text(
            "crates/hypervisor/src/exits.rs",
            "fn f(w: &World, level: usize) {\n    let m = w.vmcs(level, 0);\n}\n",
        );
        assert!(vs.is_empty());
    }

    #[test]
    fn debug_assert_in_exit_path_flagged() {
        let vs = lint_file_text(
            "crates/hypervisor/src/exits.rs",
            "fn f(level: usize) {\n    debug_assert!(level >= 1);\n}\n",
        );
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "debug-assert-exit-path");
        assert_eq!(vs[0].location, "crates/hypervisor/src/exits.rs:2");
    }

    #[test]
    fn debug_assert_outside_exit_engine_not_flagged() {
        let vs = lint_file_text(
            "crates/memory/src/ept.rs",
            "fn f() {\n    debug_assert!(true);\n}\n",
        );
        assert!(vs.is_empty());
    }

    #[test]
    fn raw_vmcs_index_flagged_anywhere_but_world() {
        let code = format!(
            "fn f(w: &mut World) {{\n    w{}{}0][0].read(1);\n}}\n",
            ".vmcs", "["
        );
        let vs = lint_file_text("crates/migration/src/source.rs", &code);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "raw-vmcs-index");
        assert!(lint_file_text("crates/hypervisor/src/world.rs", &code).is_empty());
    }

    #[test]
    fn level_indexing_in_dispatch_flagged() {
        let code = "fn f(&mut self, owner: usize) {\n    self.virtio[owner].kick();\n}\n";
        let vs = lint_file_text("crates/hypervisor/src/io.rs", code);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "unchecked-level-index");
        // The same pattern is the sanctioned idiom inside world.rs.
        assert!(lint_file_text("crates/hypervisor/src/world.rs", code).is_empty());
        // And plain [cpu] indexing is not a level index.
        let vs = lint_file_text(
            "crates/hypervisor/src/runtime.rs",
            "fn f(&mut self, cpu: usize) {\n    self.timers[cpu].arm(1);\n}\n",
        );
        assert!(vs.is_empty());
    }

    #[test]
    fn clone_in_exit_engine_flagged() {
        let code = format!(
            "fn f(&mut self) {{\n    let hot = self.profile.hot_reads{}{};\n}}\n",
            ".clone", "()"
        );
        let vs = lint_file_text("crates/hypervisor/src/exits.rs", &code);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "clone-on-exit-path");
        // Other hypervisor files may clone (e.g. config plumbing).
        assert!(lint_file_text("crates/hypervisor/src/config.rs", &code).is_empty());
        // Test modules in exits.rs may clone.
        let test_only = format!(
            "fn f() {{}}\n#[cfg(test)]\nmod tests {{\n    fn g(v: &Vec<u32>) {{ let _ = v{}{}; }}\n}}\n",
            ".clone", "()"
        );
        assert!(lint_file_text("crates/hypervisor/src/exits.rs", &test_only).is_empty());
    }

    #[test]
    fn repository_sources_are_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let outcome = lint_sources(&root).expect("repo sources readable");
        assert!(
            outcome.files_scanned > 50,
            "scanned {}",
            outcome.files_scanned
        );
        assert!(outcome.violations.is_empty(), "{:#?}", outcome.violations);
    }

    #[test]
    fn test_modules_and_comments_skipped() {
        let code = "fn f() {}\n// debug_assert! in a comment\n#[cfg(test)]\nmod tests {\n    fn g(level: usize) { debug_assert!(level > 0); }\n}\n";
        assert!(lint_file_text("crates/hypervisor/src/exits.rs", code).is_empty());
    }
}
