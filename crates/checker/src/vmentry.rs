//! The VM-entry consistency pass: adapts the hypervisor's entry-time
//! findings (see `dvh_hypervisor::check`) and the whole-hierarchy
//! static sweep into checker [`Violation`]s.

use crate::{Pass, Violation};
use dvh_hypervisor::{VmentryFinding, World};
use std::collections::BTreeSet;

fn to_violation(f: VmentryFinding) -> Violation {
    Violation {
        pass: Pass::Vmentry,
        rule: f.violation.rule,
        location: format!("L{} cpu{} field {:#06x}", f.level, f.cpu, f.violation.field),
        detail: f.violation.detail,
    }
}

/// Runs the VM-entry pass over `w`: a static sweep of every VMCS in
/// the hierarchy, plus all findings collected dynamically while the
/// world ran with [`World::enable_vmentry_checks`] on. Duplicate
/// findings (the same broken field seen at every entry) are collapsed.
pub fn check_world(w: &mut World) -> Vec<Violation> {
    let mut findings = w.validate_all_vmcs();
    findings.extend(w.take_vmentry_findings());
    let mut seen = BTreeSet::new();
    findings
        .into_iter()
        .filter(|f| seen.insert((f.level, f.cpu, f.violation.rule, f.violation.field)))
        .map(to_violation)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::costs::CostModel;
    use dvh_arch::vmx::field;
    use dvh_hypervisor::WorldConfig;

    #[test]
    fn clean_world_reports_nothing() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(3));
        w.enable_vmentry_checks();
        w.guest_hypercall(0);
        assert!(check_world(&mut w).is_empty());
    }

    #[test]
    fn dynamic_findings_are_collapsed() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_vmentry_checks();
        w.vmcs_mut(0, 0).write(field::EPT_POINTER, 0);
        // Many entries, each seeing the same broken field...
        w.guest_hypercall(0);
        w.guest_hypercall(0);
        let vs = check_world(&mut w);
        // ...reported once, with level and field encoding.
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "ept-pointer");
        assert!(vs[0].location.contains("L0 cpu0"));
        assert!(vs[0].location.contains("0x201a"));
    }
}
