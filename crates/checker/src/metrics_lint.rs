//! The metrics-conservation pass: certifies the dvh-obs observability
//! layer against the exit engine's own accounting.
//!
//! The observability layer records a *parallel* ledger — every
//! `attribute_cycles` call in the engine has a metrics twin
//! (`observe_exit`), and the Chrome trace export re-derives the same
//! totals a third way from serialized spans. This pass proves all
//! three agree, key for key:
//!
//! - `exit-cycles-conserved`: the registry's per-(level, reason) exit
//!   cycle totals equal [`RunStats::cycles_by_reason`] in both
//!   directions — no missing keys, no phantom keys, no drift.
//! - `histogram-consistent`: every histogram's bucket counts sum to
//!   its observation count (the invariant `Histogram::is_consistent`
//!   encodes).
//! - `chrome-round-trip` / `chrome-spans-conserved`: the serialized
//!   Chrome trace document parses back to an identical document, and
//!   its `outermost: true` span durations sum to the attribution
//!   ledger exactly.
//!
//! A violation here means the observability layer is lying about where
//! cycles went — the one failure mode a profiling tool must not have.

use crate::{Pass, Violation};
use dvh_hypervisor::trace_export::{chrome_json, chrome_outermost_totals};
use dvh_hypervisor::{RunStats, TraceEvent};
use dvh_obs::json;
use dvh_obs::MetricsRegistry;

/// Checks the registry's exit cycle totals against the engine ledger
/// (both directions) and every histogram's internal consistency.
pub fn lint_metrics(reg: &MetricsRegistry, stats: &RunStats) -> Vec<Violation> {
    let mut out = Vec::new();
    let observed = reg.exit_cycle_totals();
    let ledger = &stats.cycles_by_reason;

    for ((level, reason), cycles) in ledger {
        match observed.get(&(*level, *reason)) {
            None => out.push(Violation {
                pass: Pass::Metrics,
                rule: "exit-cycles-conserved",
                location: format!("L{level} {reason}"),
                detail: format!(
                    "ledger attributes {} cycles but the metrics registry has no entry",
                    cycles.as_u64()
                ),
            }),
            Some(got) if got != cycles => out.push(Violation {
                pass: Pass::Metrics,
                rule: "exit-cycles-conserved",
                location: format!("L{level} {reason}"),
                detail: format!(
                    "metrics registry has {} cycles, ledger says {}",
                    got.as_u64(),
                    cycles.as_u64()
                ),
            }),
            Some(_) => {}
        }
    }
    for ((level, reason), cycles) in &observed {
        if !ledger.contains_key(&(*level, *reason)) {
            out.push(Violation {
                pass: Pass::Metrics,
                rule: "exit-cycles-conserved",
                location: format!("L{level} {reason}"),
                detail: format!(
                    "metrics registry has {} cycles for a key the ledger never attributed",
                    cycles.as_u64()
                ),
            });
        }
    }

    for (key, h) in reg.histograms() {
        if !h.is_consistent() {
            out.push(Violation {
                pass: Pass::Metrics,
                rule: "histogram-consistent",
                location: key.to_string(),
                detail: format!(
                    "bucket counts sum to {} but the histogram recorded {} observations",
                    h.buckets().iter().sum::<u64>(),
                    h.count()
                ),
            });
        }
    }
    out
}

/// Serializes the trace as a Chrome document, parses it back, and
/// certifies both the round trip and that the outermost span durations
/// sum to the attribution ledger — the export path itself is what gets
/// checked, not the in-memory events.
pub fn lint_chrome_export(
    events: &[TraceEvent],
    num_cpus: usize,
    levels: usize,
    stats: &RunStats,
) -> Vec<Violation> {
    let mut out = Vec::new();
    let text = chrome_json(events, num_cpus, levels);
    let doc = match json::parse(&text) {
        Ok(doc) => doc,
        Err(e) => {
            out.push(Violation {
                pass: Pass::Metrics,
                rule: "chrome-round-trip",
                location: "chrome export".into(),
                detail: format!("serialized trace does not parse: {e}"),
            });
            return out;
        }
    };
    if doc.to_json() != text {
        out.push(Violation {
            pass: Pass::Metrics,
            rule: "chrome-round-trip",
            location: "chrome export".into(),
            detail: "parse(serialize(trace)) is not the identity".into(),
        });
    }

    let from_json = chrome_outermost_totals(&doc);
    let ledger = &stats.cycles_by_reason;
    for ((level, reason), cycles) in ledger {
        let got = from_json
            .get(&(*level, reason.to_string()))
            .copied()
            .unwrap_or(0);
        if got != cycles.as_u64() {
            out.push(Violation {
                pass: Pass::Metrics,
                rule: "chrome-spans-conserved",
                location: format!("L{level} {reason}"),
                detail: format!(
                    "outermost chrome spans sum to {got} cycles, ledger says {}",
                    cycles.as_u64()
                ),
            });
        }
    }
    if from_json.len() != ledger.len() {
        out.push(Violation {
            pass: Pass::Metrics,
            rule: "chrome-spans-conserved",
            location: "chrome export".into(),
            detail: format!(
                "export has {} (level, reason) span groups, ledger has {}",
                from_json.len(),
                ledger.len()
            ),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::vmx::ExitReason;
    use dvh_arch::Cycles;
    use dvh_core::{Machine, MachineConfig};

    fn observed_machine() -> Machine {
        let mut m = Machine::build(MachineConfig::dvh(2));
        {
            let w = m.world_mut();
            w.enable_tracing(1 << 20);
            w.enable_metrics();
            w.reset_stats();
        }
        m.hypercall(0);
        m.net_tx(0, 4, 1500);
        m.idle_round(0);
        m
    }

    #[test]
    fn clean_run_has_no_metrics_violations() {
        let mut m = observed_machine();
        let w = m.world_mut();
        let reg = w.metrics().expect("metrics enabled");
        assert!(lint_metrics(reg, &w.stats).is_empty());
        let violations =
            lint_chrome_export(w.trace_events(), w.num_cpus(), w.leaf_level(), &w.stats);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn tampered_registry_is_caught_both_directions() {
        let mut m = observed_machine();
        let w = m.world_mut();
        let stats = w.stats.clone();
        let mut reg = w.take_metrics().expect("metrics enabled");
        // A phantom key the ledger never attributed...
        reg.observe_exit(3, ExitReason::Hlt, Cycles::new(7));
        let phantom = lint_metrics(&reg, &stats);
        assert!(phantom.iter().any(|v| v.pass == Pass::Metrics
            && v.rule == "exit-cycles-conserved"
            && v.detail.contains("never attributed")));
        // ...and drift on a key both sides know about.
        let ((level, reason), _) = stats.cycles_by_reason.iter().next().expect("some exits");
        reg.observe_exit(*level, *reason, Cycles::new(1));
        let drifted = lint_metrics(&reg, &stats);
        assert!(drifted.len() > phantom.len());
    }

    #[test]
    fn missing_ledger_key_is_caught() {
        let mut m = observed_machine();
        let w = m.world_mut();
        let reg = MetricsRegistry::new();
        let violations = lint_metrics(&reg, &w.stats);
        assert!(!violations.is_empty());
        assert!(violations
            .iter()
            .all(|v| v.rule == "exit-cycles-conserved" && v.detail.contains("no entry")));
    }
}
