//! Per-VM guest-physical address spaces.

use crate::addr::{Gpa, PAGE_SIZE};
use std::fmt;

/// What a region of guest-physical space contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// Ordinary RAM.
    Ram,
    /// Device MMIO (BAR), with the owning device's region id.
    Mmio(u32),
}

/// A contiguous region of guest-physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    /// First guest-physical address of the region.
    pub base: Gpa,
    /// Length in bytes.
    pub len: u64,
    /// Contents.
    pub kind: RegionKind,
}

impl Region {
    /// Whether `gpa` falls inside this region.
    pub fn contains(&self, gpa: Gpa) -> bool {
        gpa.raw() >= self.base.raw() && gpa.raw() < self.base.raw() + self.len
    }

    /// Last byte address of the region.
    pub fn end(&self) -> Gpa {
        Gpa::new(self.base.raw() + self.len - 1)
    }
}

/// A VM's guest-physical memory layout: an ordered set of
/// non-overlapping regions.
///
/// # Example
///
/// ```
/// use dvh_memory::addr_space::{AddressSpace, RegionKind};
/// use dvh_memory::Gpa;
///
/// let mut space = AddressSpace::new();
/// space.add_ram(Gpa::ZERO, 12 << 30).unwrap(); // 12 GB, the paper's VM size
/// space.add_mmio(Gpa::new(0x4_FE00_0000), 0x4000, 3).unwrap();
/// assert!(matches!(space.kind_at(Gpa::new(0x1000)), Some(RegionKind::Ram)));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AddressSpace {
    regions: Vec<Region>,
}

/// Error adding a region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlapError {
    /// The existing region that the new one collides with.
    pub existing: Region,
}

impl fmt::Display for OverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "region overlaps existing {:?} region at {}",
            self.existing.kind, self.existing.base
        )
    }
}

impl std::error::Error for OverlapError {}

impl AddressSpace {
    /// Creates an empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    fn add(&mut self, region: Region) -> Result<(), OverlapError> {
        for r in &self.regions {
            let disjoint = region.base.raw() + region.len <= r.base.raw()
                || r.base.raw() + r.len <= region.base.raw();
            if !disjoint {
                return Err(OverlapError { existing: *r });
            }
        }
        self.regions.push(region);
        self.regions.sort_by_key(|r| r.base.raw());
        Ok(())
    }

    /// Adds a RAM region.
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if it overlaps an existing region.
    pub fn add_ram(&mut self, base: Gpa, len: u64) -> Result<(), OverlapError> {
        self.add(Region {
            base,
            len,
            kind: RegionKind::Ram,
        })
    }

    /// Adds an MMIO region with region id `id`.
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if it overlaps an existing region.
    pub fn add_mmio(&mut self, base: Gpa, len: u64, id: u32) -> Result<(), OverlapError> {
        self.add(Region {
            base,
            len,
            kind: RegionKind::Mmio(id),
        })
    }

    /// Removes the MMIO region with id `id`, returning it.
    pub fn remove_mmio(&mut self, id: u32) -> Option<Region> {
        let pos = self
            .regions
            .iter()
            .position(|r| r.kind == RegionKind::Mmio(id))?;
        Some(self.regions.remove(pos))
    }

    /// The kind of region containing `gpa`, if any.
    pub fn kind_at(&self, gpa: Gpa) -> Option<RegionKind> {
        self.region_at(gpa).map(|r| r.kind)
    }

    /// The region containing `gpa`, if any.
    pub fn region_at(&self, gpa: Gpa) -> Option<&Region> {
        self.regions.iter().find(|r| r.contains(gpa))
    }

    /// Total bytes of RAM.
    pub fn ram_bytes(&self) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.kind == RegionKind::Ram)
            .map(|r| r.len)
            .sum()
    }

    /// Total RAM pages.
    pub fn ram_pages(&self) -> u64 {
        self.ram_bytes() / PAGE_SIZE
    }

    /// All regions in address order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_find() {
        let mut s = AddressSpace::new();
        s.add_ram(Gpa::ZERO, 0x10000).unwrap();
        s.add_mmio(Gpa::new(0x20000), 0x1000, 9).unwrap();
        assert_eq!(s.kind_at(Gpa::new(0x100)), Some(RegionKind::Ram));
        assert_eq!(s.kind_at(Gpa::new(0x20000)), Some(RegionKind::Mmio(9)));
        assert_eq!(s.kind_at(Gpa::new(0x19000)), None);
    }

    #[test]
    fn overlap_rejected() {
        let mut s = AddressSpace::new();
        s.add_ram(Gpa::ZERO, 0x10000).unwrap();
        assert!(s.add_mmio(Gpa::new(0x8000), 0x1000, 1).is_err());
        // Adjacent is fine.
        assert!(s.add_mmio(Gpa::new(0x10000), 0x1000, 1).is_ok());
    }

    #[test]
    fn ram_accounting() {
        let mut s = AddressSpace::new();
        s.add_ram(Gpa::ZERO, 0x10000).unwrap();
        s.add_ram(Gpa::new(0x100000), 0x10000).unwrap();
        assert_eq!(s.ram_bytes(), 0x20000);
        assert_eq!(s.ram_pages(), 0x20);
    }

    #[test]
    fn remove_mmio_region() {
        let mut s = AddressSpace::new();
        s.add_mmio(Gpa::new(0x20000), 0x1000, 9).unwrap();
        let r = s.remove_mmio(9).unwrap();
        assert_eq!(r.base, Gpa::new(0x20000));
        assert!(s.remove_mmio(9).is_none());
        assert_eq!(s.kind_at(Gpa::new(0x20000)), None);
    }

    #[test]
    fn regions_sorted_by_base() {
        let mut s = AddressSpace::new();
        s.add_mmio(Gpa::new(0x30000), 0x1000, 2).unwrap();
        s.add_ram(Gpa::ZERO, 0x1000).unwrap();
        let bases: Vec<u64> = s.regions().iter().map(|r| r.base.raw()).collect();
        assert_eq!(bases, vec![0, 0x30000]);
    }
}
