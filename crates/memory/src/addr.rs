//! Address newtypes and page constants.

use std::fmt;
use std::ops::Add;

/// Log2 of the page size (4 KiB pages).
pub const PAGE_SHIFT: u64 = 12;
/// The page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;

macro_rules! addr_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u64);

        impl $name {
            /// The zero address.
            pub const ZERO: $name = $name(0);

            /// Constructs from a raw address.
            pub const fn new(a: u64) -> $name {
                $name(a)
            }

            /// The raw address value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// The page frame number (address >> [`PAGE_SHIFT`]).
            pub const fn pfn(self) -> u64 {
                self.0 >> PAGE_SHIFT
            }

            /// The offset within the page.
            pub const fn page_offset(self) -> u64 {
                self.0 & (PAGE_SIZE - 1)
            }

            /// The address of the start of the containing page.
            pub const fn page_base(self) -> $name {
                $name(self.0 & !(PAGE_SIZE - 1))
            }

            /// Constructs the address of page frame `pfn`.
            pub const fn from_pfn(pfn: u64) -> $name {
                $name(pfn << PAGE_SHIFT)
            }

            /// Whether the address is page aligned.
            pub const fn is_page_aligned(self) -> bool {
                self.page_offset() == 0
            }

            /// Byte-offset addition (saturating).
            pub const fn offset(self, d: u64) -> $name {
                $name(self.0.saturating_add(d))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl Add<u64> for $name {
            type Output = $name;
            fn add(self, d: u64) -> $name {
                self.offset(d)
            }
        }

        impl From<u64> for $name {
            fn from(a: u64) -> $name {
                $name(a)
            }
        }
    };
}

addr_type!(
    /// A guest-virtual address.
    Gva
);
addr_type!(
    /// A guest-physical address (at some virtualization level; the level
    /// is tracked by context, as in KVM).
    Gpa
);
addr_type!(
    /// A host-physical address — L0's machine address space.
    Hpa
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pfn_and_offset() {
        let a = Gpa::new(0x1234);
        assert_eq!(a.pfn(), 1);
        assert_eq!(a.page_offset(), 0x234);
        assert_eq!(a.page_base(), Gpa::new(0x1000));
    }

    #[test]
    fn from_pfn_round_trip() {
        let a = Hpa::from_pfn(42);
        assert_eq!(a.pfn(), 42);
        assert!(a.is_page_aligned());
    }

    #[test]
    fn add_offsets() {
        let a = Gpa::new(0x1000) + 8;
        assert_eq!(a.raw(), 0x1008);
    }

    #[test]
    fn display_contains_hex() {
        assert_eq!(Gpa::new(0x10).to_string(), "Gpa(0x10)");
    }
}
