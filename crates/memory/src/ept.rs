//! Extended page tables: second-stage translation from guest-physical
//! to (next lower level's) physical addresses, plus MMIO region
//! classification.
//!
//! As in KVM, MMIO regions are represented by deliberately
//! *misconfigured* EPT ranges so that guest accesses produce cheap
//! `EptMisconfig` exits which the hypervisor resolves to device
//! emulation; RAM is mapped normally; everything else faults as an
//! `EptViolation`.

use crate::addr::{Gpa, Hpa};
use crate::pagetable::{PageTable, Perms, TranslateErr, Translation};
use std::collections::BTreeMap;
use std::fmt;

/// The outcome of classifying a guest-physical access through the EPT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EptAccess {
    /// Normal RAM: translated to an output frame.
    Ram(Translation),
    /// MMIO region belonging to the identified device region.
    Mmio {
        /// Opaque region id registered by the hypervisor/device model.
        region: u32,
        /// Offset of the access within the region.
        offset: u64,
    },
    /// True violation: unmapped or permission-denied.
    Violation(TranslateErr),
}

/// An extended page table plus MMIO region registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ept {
    table: PageTable,
    /// MMIO regions: base GPA -> (length, region id).
    mmio: BTreeMap<u64, (u64, u32)>,
}

impl Ept {
    /// Creates an empty EPT.
    pub fn new() -> Ept {
        Ept::default()
    }

    /// Identity-maps `n` pages of RAM starting at `base` to host frames
    /// starting at `host_base`.
    pub fn map_ram(&mut self, base: Gpa, host_base: Hpa, n: u64) {
        self.table
            .map_range(base.pfn(), host_base.pfn(), n, Perms::RWX);
    }

    /// Registers an MMIO region of `len` bytes at `base` with id
    /// `region`. Accesses to it exit with `EptMisconfig` semantics.
    pub fn register_mmio(&mut self, base: Gpa, len: u64, region: u32) {
        self.mmio.insert(base.raw(), (len, region));
    }

    /// Removes an MMIO region registration. Returns `true` if present.
    pub fn unregister_mmio(&mut self, base: Gpa) -> bool {
        self.mmio.remove(&base.raw()).is_some()
    }

    /// Classifies a guest access at `gpa` requiring `req` permissions.
    pub fn access(&mut self, gpa: Gpa, req: Perms) -> EptAccess {
        // MMIO check first: regions shadow any RAM mapping beneath.
        if let Some((&base, &(len, region))) = self.mmio.range(..=gpa.raw()).next_back() {
            if gpa.raw() < base + len {
                return EptAccess::Mmio {
                    region,
                    offset: gpa.raw() - base,
                };
            }
        }
        match self.table.translate(gpa.pfn(), req) {
            Ok(t) => EptAccess::Ram(t),
            Err(e) => EptAccess::Violation(e),
        }
    }

    /// Direct access to the underlying translation structure (used by
    /// shadow-table composition and migration write-protection).
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Mutable access to the underlying translation structure.
    pub fn table_mut(&mut self) -> &mut PageTable {
        &mut self.table
    }

    /// Number of registered MMIO regions.
    pub fn mmio_regions(&self) -> usize {
        self.mmio.len()
    }
}

impl fmt::Display for Ept {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Ept({} pages, {} mmio regions)",
            self.table.mapped_pages(),
            self.mmio.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ram_translates() {
        let mut ept = Ept::new();
        ept.map_ram(Gpa::new(0), Hpa::new(0x10_0000), 16);
        match ept.access(Gpa::new(0x2004), Perms::RW) {
            EptAccess::Ram(t) => assert_eq!(t.pfn, 0x100 + 2),
            other => panic!("expected RAM, got {other:?}"),
        }
    }

    #[test]
    fn mmio_classified_with_offset() {
        let mut ept = Ept::new();
        ept.register_mmio(Gpa::new(0xFE00_0000), 0x1000, 7);
        match ept.access(Gpa::new(0xFE00_0010), Perms::RW) {
            EptAccess::Mmio { region, offset } => {
                assert_eq!(region, 7);
                assert_eq!(offset, 0x10);
            }
            other => panic!("expected MMIO, got {other:?}"),
        }
    }

    #[test]
    fn mmio_shadows_ram() {
        let mut ept = Ept::new();
        // RAM mapped over the whole low range...
        ept.map_ram(Gpa::new(0), Hpa::new(0), 0x1_0000);
        // ...but an MMIO BAR sits inside it.
        ept.register_mmio(Gpa::new(0x8000), 0x1000, 1);
        assert!(matches!(
            ept.access(Gpa::new(0x8000), Perms::RW),
            EptAccess::Mmio { region: 1, .. }
        ));
        assert!(matches!(
            ept.access(Gpa::new(0x9000), Perms::RW),
            EptAccess::Ram(_)
        ));
    }

    #[test]
    fn unmapped_is_violation() {
        let mut ept = Ept::new();
        assert!(matches!(
            ept.access(Gpa::new(0x5000), Perms::RO),
            EptAccess::Violation(TranslateErr::NotMapped { .. })
        ));
    }

    #[test]
    fn unregister_mmio_restores_violation() {
        let mut ept = Ept::new();
        ept.register_mmio(Gpa::new(0x8000), 0x1000, 1);
        assert!(ept.unregister_mmio(Gpa::new(0x8000)));
        assert!(!ept.unregister_mmio(Gpa::new(0x8000)));
        assert!(matches!(
            ept.access(Gpa::new(0x8000), Perms::RO),
            EptAccess::Violation(_)
        ));
    }

    #[test]
    fn access_outside_mmio_region_not_matched() {
        let mut ept = Ept::new();
        ept.register_mmio(Gpa::new(0x8000), 0x1000, 1);
        assert!(matches!(
            ept.access(Gpa::new(0x9000), Perms::RO),
            EptAccess::Violation(_)
        ));
    }
}
