//! I/O page tables and shadow composition for (recursive)
//! virtual-passthrough.
//!
//! With virtual-passthrough (§3.1), the guest hypervisor programs a
//! *virtual* IOMMU with mappings from nested-VM physical addresses to
//! its own (L1) physical addresses. The host hypervisor combines that
//! chain with its own stage of translation into a single **shadow I/O
//! page table** so DMA performed on behalf of the virtual device
//! reaches the right host frames in one lookup — exactly the shadow
//! page tables of Fig. 6 ("only the virtual IOMMU provided by the host
//! hypervisor is used when the virtual I/O device accesses Ln memory").

use crate::pagetable::{PageTable, Perms, TranslateErr, Translation};
use std::fmt;

/// A single stage of I/O translation (one (v)IOMMU domain).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IoTable {
    table: PageTable,
    epoch: u64,
}

impl IoTable {
    /// Creates an empty I/O page table.
    pub fn new() -> IoTable {
        IoTable::default()
    }

    /// Maps `n` pages from the device-visible space (`iova_pfn`) to the
    /// next address space down (`out_pfn`).
    pub fn map(&mut self, iova_pfn: u64, out_pfn: u64, n: u64, perms: Perms) {
        self.table.map_range(iova_pfn, out_pfn, n, perms);
        self.epoch += 1;
    }

    /// Unmaps one page. Returns `true` if a mapping was removed.
    pub fn unmap(&mut self, iova_pfn: u64) -> bool {
        let removed = self.table.unmap(iova_pfn).is_some();
        if removed {
            self.epoch += 1;
        }
        removed
    }

    /// Translates one page for an access with `req` permissions.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`TranslateErr`].
    pub fn translate(&mut self, iova_pfn: u64, req: Perms) -> Result<Translation, TranslateErr> {
        self.table.translate(iova_pfn, req)
    }

    /// Monotonic modification counter: bumped on every map/unmap, used
    /// by shadow tables to detect staleness.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The underlying radix table.
    pub fn table(&self) -> &PageTable {
        &self.table
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.table.mapped_pages()
    }
}

/// A shadow I/O page table combining a chain of translation stages.
///
/// Stage 0 is the *innermost* table (closest to the nested VM: Ln-1's
/// vIOMMU mapping Ln GPA → Ln-1 GPA) and the last stage is the host's
/// own stage (L1 GPA → HPA). The composed table maps Ln GPA → HPA
/// directly.
///
/// # Example
///
/// ```
/// use dvh_memory::iommu_pt::{IoTable, ShadowIoTable};
/// use dvh_memory::Perms;
///
/// let mut vsmmu = IoTable::new(); // L1's vIOMMU: L2 GPA -> L1 GPA
/// vsmmu.map(0x10, 0x20, 1, Perms::RW);
/// let mut host = IoTable::new(); // L0: L1 GPA -> HPA
/// host.map(0x20, 0x999, 1, Perms::RW);
///
/// let shadow = ShadowIoTable::build(&[&vsmmu, &host]);
/// assert_eq!(shadow.lookup(0x10).unwrap().0, 0x999);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShadowIoTable {
    combined: PageTable,
    stage_epochs: Vec<u64>,
}

impl ShadowIoTable {
    /// Builds the combined table by walking every mapping of the
    /// innermost stage through all outer stages. Mappings that do not
    /// resolve through every stage are omitted (the device would fault
    /// on them, which is the correct behaviour).
    pub fn build(stages: &[&IoTable]) -> ShadowIoTable {
        let mut combined = PageTable::new();
        let stage_epochs = stages.iter().map(|s| s.epoch()).collect();
        if stages.is_empty() {
            return ShadowIoTable {
                combined,
                stage_epochs,
            };
        }
        for (iova, entry) in stages[0].table().iter() {
            let mut pfn = entry.pfn;
            let mut perms = entry.perms;
            let mut ok = true;
            for stage in &stages[1..] {
                match stage.table().lookup(pfn) {
                    Some(e) => {
                        perms = perms.intersect(e.perms);
                        pfn = e.pfn;
                    }
                    None => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                combined.map(iova, pfn, perms);
            }
        }
        ShadowIoTable {
            combined,
            stage_epochs,
        }
    }

    /// Whether the shadow is stale with respect to the given stages
    /// (any stage modified since [`ShadowIoTable::build`]).
    pub fn is_stale(&self, stages: &[&IoTable]) -> bool {
        if stages.len() != self.stage_epochs.len() {
            return true;
        }
        stages
            .iter()
            .zip(&self.stage_epochs)
            .any(|(s, &e)| s.epoch() != e)
    }

    /// Looks up a device-visible PFN, returning `(host_pfn, perms)`.
    pub fn lookup(&self, iova_pfn: u64) -> Option<(u64, Perms)> {
        self.combined.lookup(iova_pfn).map(|e| (e.pfn, e.perms))
    }

    /// Translates with permission check and A/D updates, like hardware.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`TranslateErr`].
    pub fn translate(&mut self, iova_pfn: u64, req: Perms) -> Result<Translation, TranslateErr> {
        self.combined.translate(iova_pfn, req)
    }

    /// Number of combined mappings.
    pub fn mapped_pages(&self) -> u64 {
        self.combined.mapped_pages()
    }
}

impl fmt::Display for ShadowIoTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ShadowIoTable({} pages, {} stages)",
            self.combined.mapped_pages(),
            self.stage_epochs.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_stage() -> (IoTable, IoTable) {
        let mut inner = IoTable::new();
        inner.map(0x100, 0x200, 4, Perms::RW);
        let mut outer = IoTable::new();
        outer.map(0x200, 0x900, 4, Perms::RW);
        (inner, outer)
    }

    #[test]
    fn composition_equals_sequential_translation() {
        let (mut inner, mut outer) = two_stage();
        let shadow = ShadowIoTable::build(&[&inner, &outer]);
        for p in 0x100..0x104u64 {
            let mid = inner.translate(p, Perms::RO).unwrap().pfn;
            let fin = outer.translate(mid, Perms::RO).unwrap().pfn;
            assert_eq!(shadow.lookup(p).unwrap().0, fin);
        }
    }

    #[test]
    fn holes_in_outer_stage_are_omitted() {
        let mut inner = IoTable::new();
        inner.map(0x100, 0x200, 2, Perms::RW);
        let mut outer = IoTable::new();
        outer.map(0x200, 0x900, 1, Perms::RW); // only first page
        let shadow = ShadowIoTable::build(&[&inner, &outer]);
        assert!(shadow.lookup(0x100).is_some());
        assert!(shadow.lookup(0x101).is_none());
    }

    #[test]
    fn perms_are_intersected() {
        let mut inner = IoTable::new();
        inner.map(0x100, 0x200, 1, Perms::RW);
        let mut outer = IoTable::new();
        outer.map(0x200, 0x900, 1, Perms::RO);
        let shadow = ShadowIoTable::build(&[&inner, &outer]);
        assert_eq!(shadow.lookup(0x100).unwrap().1, Perms::RO);
    }

    #[test]
    fn staleness_detected() {
        let (mut inner, outer) = two_stage();
        let shadow = ShadowIoTable::build(&[&inner, &outer]);
        assert!(!shadow.is_stale(&[&inner, &outer]));
        inner.map(0x300, 0x400, 1, Perms::RW);
        assert!(shadow.is_stale(&[&inner, &outer]));
    }

    #[test]
    fn three_stage_chain_composes() {
        // L3 GPA -> L2 GPA -> L1 GPA -> HPA (recursive virtual-passthrough).
        let mut a = IoTable::new();
        a.map(1, 11, 1, Perms::RW);
        let mut b = IoTable::new();
        b.map(11, 111, 1, Perms::RW);
        let mut c = IoTable::new();
        c.map(111, 1111, 1, Perms::RW);
        let shadow = ShadowIoTable::build(&[&a, &b, &c]);
        assert_eq!(shadow.lookup(1).unwrap().0, 1111);
    }

    #[test]
    fn empty_chain_is_empty() {
        let shadow = ShadowIoTable::build(&[]);
        assert_eq!(shadow.mapped_pages(), 0);
    }

    #[test]
    fn unmap_bumps_epoch_only_when_present() {
        let mut t = IoTable::new();
        t.map(5, 6, 1, Perms::RW);
        let e = t.epoch();
        assert!(!t.unmap(99));
        assert_eq!(t.epoch(), e);
        assert!(t.unmap(5));
        assert_eq!(t.epoch(), e + 1);
    }
}
