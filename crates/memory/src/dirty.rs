//! Dirty-page tracking.
//!
//! Two producers dirty pages in this system: vCPUs writing memory, and
//! devices doing DMA. For migration (§3.6), the host hypervisor's
//! existing logging covers its own virtual I/O devices; DVH's PCI
//! migration capability lets a *guest* hypervisor harvest that log for
//! a virtual-passthrough device it cannot see.

use crate::addr::Gpa;
use std::collections::BTreeSet;
use std::fmt;

/// A dirty-page bitmap over a guest-physical address space.
///
/// Backed by a sparse set (guest address spaces are huge and mostly
/// clean); the API mirrors KVM's `KVM_GET_DIRTY_LOG` harvest-and-clear
/// semantics.
///
/// # Example
///
/// ```
/// use dvh_memory::{DirtyBitmap, Gpa};
///
/// let mut log = DirtyBitmap::new();
/// log.mark(Gpa::new(0x1000));
/// log.mark(Gpa::new(0x1008)); // same page
/// assert_eq!(log.dirty_count(), 1);
/// let pages = log.harvest();
/// assert_eq!(pages, vec![1]);
/// assert_eq!(log.dirty_count(), 0);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DirtyBitmap {
    pages: BTreeSet<u64>,
    total_marks: u64,
}

impl DirtyBitmap {
    /// Creates an empty bitmap.
    pub fn new() -> DirtyBitmap {
        DirtyBitmap::default()
    }

    /// Marks the page containing `gpa` dirty.
    pub fn mark(&mut self, gpa: Gpa) {
        self.pages.insert(gpa.pfn());
        self.total_marks += 1;
    }

    /// Marks page frame `pfn` dirty.
    pub fn mark_pfn(&mut self, pfn: u64) {
        self.pages.insert(pfn);
        self.total_marks += 1;
    }

    /// Marks `n` consecutive page frames dirty.
    pub fn mark_range(&mut self, first_pfn: u64, n: u64) {
        for p in first_pfn..first_pfn.saturating_add(n) {
            self.pages.insert(p);
        }
        self.total_marks += n;
    }

    /// Number of currently-dirty pages.
    pub fn dirty_count(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Whether page frame `pfn` is dirty.
    pub fn is_dirty(&self, pfn: u64) -> bool {
        self.pages.contains(&pfn)
    }

    /// Returns all dirty PFNs in ascending order and clears the bitmap
    /// (KVM-style log harvest).
    pub fn harvest(&mut self) -> Vec<u64> {
        let out: Vec<u64> = self.pages.iter().copied().collect();
        self.pages.clear();
        out
    }

    /// Total lifetime marks (including duplicates), for rate estimates.
    pub fn total_marks(&self) -> u64 {
        self.total_marks
    }

    /// Merges another bitmap's dirty pages into this one.
    pub fn merge(&mut self, other: &DirtyBitmap) {
        self.pages.extend(other.pages.iter().copied());
        self.total_marks += other.total_marks;
    }

    /// Whether no page is dirty.
    pub fn is_clean(&self) -> bool {
        self.pages.is_empty()
    }
}

impl fmt::Display for DirtyBitmap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DirtyBitmap({} pages)", self.pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mark_and_harvest() {
        let mut b = DirtyBitmap::new();
        b.mark_pfn(5);
        b.mark_pfn(3);
        b.mark_pfn(5);
        assert_eq!(b.dirty_count(), 2);
        assert_eq!(b.harvest(), vec![3, 5]);
        assert!(b.is_clean());
    }

    #[test]
    fn range_marking() {
        let mut b = DirtyBitmap::new();
        b.mark_range(10, 4);
        assert_eq!(b.dirty_count(), 4);
        assert!(b.is_dirty(13));
        assert!(!b.is_dirty(14));
    }

    #[test]
    fn merge_unions() {
        let mut a = DirtyBitmap::new();
        a.mark_pfn(1);
        let mut b = DirtyBitmap::new();
        b.mark_pfn(1);
        b.mark_pfn(2);
        a.merge(&b);
        assert_eq!(a.dirty_count(), 2);
    }

    #[test]
    fn same_page_counts_once() {
        let mut b = DirtyBitmap::new();
        b.mark(Gpa::new(0x2000));
        b.mark(Gpa::new(0x2FFF));
        assert_eq!(b.dirty_count(), 1);
        assert_eq!(b.total_marks(), 2);
    }
}
