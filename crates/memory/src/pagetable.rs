//! A generic 4-level radix page table, used for both EPT and IOMMU
//! translation structures.
//!
//! The table maps page frame numbers to page frame numbers with
//! permissions, mirroring the x86 4-level structure (9 bits per level,
//! 48-bit input space). Keeping a real radix tree (rather than a flat
//! map) lets the simulator account walk depth the way hardware does:
//! translating costs one memory reference per touched level.

use crate::addr::PAGE_SHIFT;
use std::collections::BTreeMap;
use std::fmt;

/// Number of radix levels (4-level, x86-64 style).
pub const LEVELS: u32 = 4;
/// Index bits per level.
const BITS_PER_LEVEL: u32 = 9;

/// Access permissions on a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Read permitted.
    pub r: bool,
    /// Write permitted.
    pub w: bool,
    /// Execute permitted (EPT only; ignored by IOMMU tables).
    pub x: bool,
}

impl Perms {
    /// Read/write/execute.
    pub const RWX: Perms = Perms {
        r: true,
        w: true,
        x: true,
    };
    /// Read/write (typical DMA buffer mapping).
    pub const RW: Perms = Perms {
        r: true,
        w: true,
        x: false,
    };
    /// Read-only (e.g. pre-copy migration write protection).
    pub const RO: Perms = Perms {
        r: true,
        w: false,
        x: false,
    };

    /// Whether `self` permits everything `req` requires.
    pub fn allows(self, req: Perms) -> bool {
        (!req.r || self.r) && (!req.w || self.w) && (!req.x || self.x)
    }

    /// The intersection of two permission sets (used when composing
    /// translation stages: the combined mapping is only as permissive
    /// as its weakest stage).
    pub fn intersect(self, other: Perms) -> Perms {
        Perms {
            r: self.r && other.r,
            w: self.w && other.w,
            x: self.x && other.x,
        }
    }
}

impl fmt::Display for Perms {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// A leaf page-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Entry {
    /// Output page frame number.
    pub pfn: u64,
    /// Permissions.
    pub perms: Perms,
    /// Accessed flag (set by walks).
    pub accessed: bool,
    /// Dirty flag (set by write walks).
    pub dirty: bool,
}

/// A successful translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// Output page frame number.
    pub pfn: u64,
    /// Effective permissions of the mapping.
    pub perms: Perms,
    /// Number of memory references the hardware walk touched.
    pub walk_refs: u32,
}

/// Translation failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TranslateErr {
    /// No mapping present for the input page.
    NotMapped {
        /// Radix level (from the root, 1-based) at which the walk died.
        level: u32,
    },
    /// Mapping present but the requested access is not permitted.
    Protection {
        /// The permissions the mapping actually grants.
        have: Perms,
    },
}

impl fmt::Display for TranslateErr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateErr::NotMapped { level } => {
                write!(f, "not mapped (walk terminated at level {level})")
            }
            TranslateErr::Protection { have } => {
                write!(f, "protection violation (mapping grants {have})")
            }
        }
    }
}

impl std::error::Error for TranslateErr {}

#[derive(Debug, Clone, Default, PartialEq, Eq)]
enum Node {
    #[default]
    Empty,
    Table(BTreeMap<u16, Node>),
    Leaf(Entry),
}

/// A 4-level radix page table mapping input PFNs to output PFNs.
///
/// # Example
///
/// ```
/// use dvh_memory::{PageTable, Perms};
///
/// let mut pt = PageTable::new();
/// pt.map(0x10, 0x999, Perms::RW);
/// let t = pt.translate(0x10, Perms::RO).unwrap();
/// assert_eq!(t.pfn, 0x999);
/// assert_eq!(t.walk_refs, 4);
/// assert!(pt.translate(0x11, Perms::RO).is_err());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageTable {
    root: Node,
    mapped_pages: u64,
}

fn indices(pfn: u64) -> [u16; LEVELS as usize] {
    let mut idx = [0u16; LEVELS as usize];
    for (i, slot) in idx.iter_mut().enumerate() {
        let shift = BITS_PER_LEVEL * (LEVELS - 1 - i as u32);
        *slot = ((pfn >> shift) & 0x1FF) as u16;
    }
    idx
}

impl PageTable {
    /// Creates an empty table.
    pub fn new() -> PageTable {
        PageTable::default()
    }

    /// Maps input page `pfn_in` to output page `pfn_out` with `perms`,
    /// replacing any previous mapping.
    pub fn map(&mut self, pfn_in: u64, pfn_out: u64, perms: Perms) {
        let idx = indices(pfn_in);
        let mut node = &mut self.root;
        for (depth, &i) in idx.iter().enumerate() {
            if depth == LEVELS as usize - 1 {
                if let Node::Table(t) = node {
                    let prev = t.insert(
                        i,
                        Node::Leaf(Entry {
                            pfn: pfn_out,
                            perms,
                            accessed: false,
                            dirty: false,
                        }),
                    );
                    if !matches!(prev, Some(Node::Leaf(_))) {
                        self.mapped_pages += 1;
                    }
                    return;
                }
                unreachable!("intermediate node must be a table");
            }
            if matches!(node, Node::Empty | Node::Leaf(_)) {
                *node = Node::Table(BTreeMap::new());
            }
            match node {
                Node::Table(t) => {
                    node = t.entry(i).or_insert_with(|| Node::Table(BTreeMap::new()));
                }
                _ => unreachable!(),
            }
        }
    }

    /// Maps `n` consecutive pages starting at the given input/output
    /// base PFNs.
    pub fn map_range(&mut self, pfn_in: u64, pfn_out: u64, n: u64, perms: Perms) {
        for k in 0..n {
            self.map(pfn_in + k, pfn_out + k, perms);
        }
    }

    /// Removes the mapping for `pfn_in`. Returns the removed entry.
    pub fn unmap(&mut self, pfn_in: u64) -> Option<Entry> {
        let idx = indices(pfn_in);
        fn rec(node: &mut Node, idx: &[u16]) -> Option<Entry> {
            match node {
                Node::Table(t) => {
                    if idx.len() == 1 {
                        match t.remove(&idx[0]) {
                            Some(Node::Leaf(e)) => Some(e),
                            Some(other) => {
                                // Shouldn't happen for well-formed maps;
                                // put it back.
                                t.insert(idx[0], other);
                                None
                            }
                            None => None,
                        }
                    } else {
                        let child = t.get_mut(&idx[0])?;
                        rec(child, &idx[1..])
                    }
                }
                _ => None,
            }
        }
        let removed = rec(&mut self.root, &idx);
        if removed.is_some() {
            self.mapped_pages -= 1;
        }
        removed
    }

    /// Translates input page `pfn_in` for an access requiring `req`
    /// permissions, setting accessed (and dirty, for writes) flags.
    ///
    /// # Errors
    ///
    /// [`TranslateErr::NotMapped`] if the walk finds no entry;
    /// [`TranslateErr::Protection`] if the entry exists but denies the
    /// requested access.
    pub fn translate(&mut self, pfn_in: u64, req: Perms) -> Result<Translation, TranslateErr> {
        let idx = indices(pfn_in);
        let mut node = &mut self.root;
        let mut refs = 0u32;
        for &i in idx.iter() {
            refs += 1;
            match node {
                Node::Table(t) => match t.get_mut(&i) {
                    Some(n) => node = n,
                    None => return Err(TranslateErr::NotMapped { level: refs }),
                },
                Node::Empty => return Err(TranslateErr::NotMapped { level: refs }),
                Node::Leaf(_) => break,
            }
        }
        match node {
            Node::Leaf(e) => {
                if !e.perms.allows(req) {
                    return Err(TranslateErr::Protection { have: e.perms });
                }
                e.accessed = true;
                if req.w {
                    e.dirty = true;
                }
                Ok(Translation {
                    pfn: e.pfn,
                    perms: e.perms,
                    walk_refs: refs,
                })
            }
            _ => Err(TranslateErr::NotMapped { level: refs }),
        }
    }

    /// Looks up `pfn_in` without touching accessed/dirty flags.
    pub fn lookup(&self, pfn_in: u64) -> Option<Entry> {
        let idx = indices(pfn_in);
        let mut node = &self.root;
        for &i in idx.iter() {
            match node {
                Node::Table(t) => node = t.get(&i)?,
                Node::Empty => return None,
                Node::Leaf(_) => break,
            }
        }
        match node {
            Node::Leaf(e) => Some(*e),
            _ => None,
        }
    }

    /// Changes the permissions of an existing mapping. Returns `false`
    /// if the page is not mapped. Used by pre-copy migration to
    /// write-protect pages.
    pub fn protect(&mut self, pfn_in: u64, perms: Perms) -> bool {
        if let Some(e) = self.lookup(pfn_in) {
            self.map(pfn_in, e.pfn, perms);
            true
        } else {
            false
        }
    }

    /// Number of mapped pages.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Whether the table has no mappings.
    pub fn is_empty(&self) -> bool {
        self.mapped_pages == 0
    }

    /// Iterates all `(input_pfn, Entry)` mappings in ascending order.
    pub fn iter(&self) -> Vec<(u64, Entry)> {
        let mut out = Vec::new();
        fn rec(node: &Node, prefix: u64, out: &mut Vec<(u64, Entry)>) {
            match node {
                Node::Table(t) => {
                    for (&i, child) in t {
                        rec(child, (prefix << BITS_PER_LEVEL) | i as u64, out);
                    }
                }
                Node::Leaf(e) => out.push((prefix, *e)),
                Node::Empty => {}
            }
        }
        rec(&self.root, 0, &mut out);
        out
    }
}

/// Returns the page-shift-adjusted number of memory references a
/// hardware *nested* walk of `outer` under `inner` would take: each of
/// the `LEVELS+1` outer references (4 levels + final access) requires a
/// full inner walk, minus the final data access itself.
pub fn nested_walk_refs() -> u32 {
    (LEVELS + 1) * (LEVELS + 1) - 1
}

/// The byte length covered by `n` pages.
pub fn pages_to_bytes(n: u64) -> u64 {
    n << PAGE_SHIFT
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_translate_round_trip() {
        let mut pt = PageTable::new();
        pt.map(0xABCDE, 0x1111, Perms::RW);
        let t = pt.translate(0xABCDE, Perms::RW).unwrap();
        assert_eq!(t.pfn, 0x1111);
        assert_eq!(t.walk_refs, LEVELS);
    }

    #[test]
    fn unmapped_translation_fails() {
        let mut pt = PageTable::new();
        assert!(matches!(
            pt.translate(5, Perms::RO),
            Err(TranslateErr::NotMapped { .. })
        ));
    }

    #[test]
    fn protection_enforced() {
        let mut pt = PageTable::new();
        pt.map(7, 9, Perms::RO);
        assert!(pt.translate(7, Perms::RO).is_ok());
        assert!(matches!(
            pt.translate(7, Perms::RW),
            Err(TranslateErr::Protection { .. })
        ));
    }

    #[test]
    fn dirty_set_only_on_write() {
        let mut pt = PageTable::new();
        pt.map(1, 2, Perms::RW);
        pt.translate(1, Perms::RO).unwrap();
        assert!(!pt.lookup(1).unwrap().dirty);
        assert!(pt.lookup(1).unwrap().accessed);
        pt.translate(1, Perms::RW).unwrap();
        assert!(pt.lookup(1).unwrap().dirty);
    }

    #[test]
    fn unmap_removes() {
        let mut pt = PageTable::new();
        pt.map(1, 2, Perms::RW);
        assert_eq!(pt.mapped_pages(), 1);
        let e = pt.unmap(1).unwrap();
        assert_eq!(e.pfn, 2);
        assert!(pt.is_empty());
        assert!(pt.unmap(1).is_none());
    }

    #[test]
    fn map_range_maps_consecutively() {
        let mut pt = PageTable::new();
        pt.map_range(0x100, 0x200, 8, Perms::RW);
        assert_eq!(pt.mapped_pages(), 8);
        for k in 0..8 {
            assert_eq!(pt.lookup(0x100 + k).unwrap().pfn, 0x200 + k);
        }
    }

    #[test]
    fn remap_does_not_double_count() {
        let mut pt = PageTable::new();
        pt.map(1, 2, Perms::RW);
        pt.map(1, 3, Perms::RO);
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.lookup(1).unwrap().pfn, 3);
    }

    #[test]
    fn protect_changes_perms() {
        let mut pt = PageTable::new();
        pt.map(1, 2, Perms::RW);
        assert!(pt.protect(1, Perms::RO));
        assert!(matches!(
            pt.translate(1, Perms::RW),
            Err(TranslateErr::Protection { .. })
        ));
        assert!(!pt.protect(99, Perms::RO));
    }

    #[test]
    fn iter_lists_mappings_in_order() {
        let mut pt = PageTable::new();
        pt.map(30, 3, Perms::RW);
        pt.map(10, 1, Perms::RW);
        pt.map(20, 2, Perms::RW);
        let all = pt.iter();
        let pfns: Vec<u64> = all.iter().map(|(p, _)| *p).collect();
        assert_eq!(pfns, vec![10, 20, 30]);
    }

    #[test]
    fn perms_intersect() {
        assert_eq!(Perms::RWX.intersect(Perms::RO), Perms::RO);
        assert_eq!(Perms::RW.intersect(Perms::RWX), Perms::RW);
    }

    #[test]
    fn perms_display() {
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::RO.to_string(), "r--");
    }

    #[test]
    fn nested_walk_is_24() {
        assert_eq!(nested_walk_refs(), 24);
    }

    #[test]
    fn distinct_high_pfns_do_not_collide() {
        let mut pt = PageTable::new();
        // Two PFNs that differ only in the top radix level.
        let a = 1u64 << 27;
        let b = 2u64 << 27;
        pt.map(a, 100, Perms::RW);
        pt.map(b, 200, Perms::RW);
        assert_eq!(pt.lookup(a).unwrap().pfn, 100);
        assert_eq!(pt.lookup(b).unwrap().pfn, 200);
    }
}
