//! # dvh-memory
//!
//! Memory-system substrate for the DVH nested-virtualization simulator:
//! address types, multi-level page tables (EPT and IOMMU flavours),
//! per-VM address spaces, dirty-page tracking, and the shadow I/O
//! page-table composition that recursive virtual-passthrough relies on
//! (Fig. 6 of the paper).
//!
//! Addressing vocabulary follows the paper and KVM:
//!
//! * [`Gva`] — guest-virtual address (rarely needed by the simulator).
//! * [`Gpa`] — guest-physical address at some virtualization level.
//! * [`Hpa`] — host-physical address (L0's view).
//!
//! A nested VM's `Gpa` is translated by a chain of page tables, one per
//! level; [`iommu_pt::ShadowIoTable`] collapses such a chain into the
//! single combined table the host IOMMU (or L0's software DMA path)
//! actually uses.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod addr;
pub mod addr_space;
pub mod dirty;
pub mod ept;
pub mod iommu_pt;
pub mod pagetable;
pub mod sparse;

pub use addr::{Gpa, Gva, Hpa, PAGE_SHIFT, PAGE_SIZE};
pub use dirty::DirtyBitmap;
pub use pagetable::{PageTable, Perms, TranslateErr, Translation};
