//! Sparse byte-addressable memory.
//!
//! Guest RAM in the simulator is huge (the paper's VMs have 12 GB) but
//! only the pages a workload actually touches matter; `SparseMemory`
//! allocates 4 KiB chunks lazily. It backs data-integrity tests (DMA
//! really moves bytes) and migration (pages are really copied).

use crate::addr::{Gpa, PAGE_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Lazily-allocated byte-addressable memory keyed by guest-physical
/// address.
///
/// Reads of never-written memory return zeroes, like fresh RAM.
///
/// # Example
///
/// ```
/// use dvh_memory::sparse::SparseMemory;
/// use dvh_memory::Gpa;
///
/// let mut ram = SparseMemory::new();
/// ram.write(Gpa::new(0x1FFE), &[0xAA, 0xBB, 0xCC, 0xDD]); // crosses a page
/// assert_eq!(ram.read(Gpa::new(0x1FFE), 4), vec![0xAA, 0xBB, 0xCC, 0xDD]);
/// assert_eq!(ram.read(Gpa::new(0x5000), 2), vec![0, 0]);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    pages: BTreeMap<u64, Box<[u8]>>,
}

impl SparseMemory {
    /// Creates empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    fn page_mut(&mut self, pfn: u64) -> &mut [u8] {
        self.pages
            .entry(pfn)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Writes `data` starting at `gpa`, crossing pages as needed.
    pub fn write(&mut self, gpa: Gpa, data: &[u8]) {
        let mut addr = gpa.raw();
        let mut rest = data;
        while !rest.is_empty() {
            let pfn = addr >> 12;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            self.page_mut(pfn)[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            addr += n as u64;
        }
    }

    /// Reads `len` bytes starting at `gpa`.
    pub fn read(&self, gpa: Gpa, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut addr = gpa.raw();
        let mut remaining = len;
        while remaining > 0 {
            let pfn = addr >> 12;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = remaining.min(PAGE_SIZE as usize - off);
            match self.pages.get(&pfn) {
                Some(p) => out.extend_from_slice(&p[off..off + n]),
                None => out.extend(std::iter::repeat_n(0, n)),
            }
            remaining -= n;
            addr += n as u64;
        }
        out
    }

    /// Copies one whole page out (zeroes if untouched).
    pub fn read_page(&self, pfn: u64) -> Vec<u8> {
        self.read(Gpa::from_pfn(pfn), PAGE_SIZE as usize)
    }

    /// Writes one whole page.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page long.
    pub fn write_page(&mut self, pfn: u64, data: &[u8]) {
        assert_eq!(
            data.len(),
            PAGE_SIZE as usize,
            "page write must be page-sized"
        );
        self.write(Gpa::from_pfn(pfn), data);
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// PFNs of all materialized pages in ascending order.
    pub fn resident_pfns(&self) -> Vec<u64> {
        self.pages.keys().copied().collect()
    }
}

impl fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseMemory({} resident pages)", self.pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let ram = SparseMemory::new();
        assert_eq!(ram.read(Gpa::new(0x123), 3), vec![0, 0, 0]);
        assert_eq!(ram.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut ram = SparseMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        ram.write(Gpa::new(0x8000), &data);
        assert_eq!(ram.read(Gpa::new(0x8000), 256), data);
    }

    #[test]
    fn cross_page_write() {
        let mut ram = SparseMemory::new();
        ram.write(Gpa::new(0xFFF), &[1, 2]);
        assert_eq!(ram.read(Gpa::new(0xFFF), 2), vec![1, 2]);
        assert_eq!(ram.resident_pages(), 2);
    }

    #[test]
    fn page_granular_ops() {
        let mut ram = SparseMemory::new();
        let page = vec![7u8; PAGE_SIZE as usize];
        ram.write_page(3, &page);
        assert_eq!(ram.read_page(3), page);
        assert_eq!(ram.resident_pfns(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "page-sized")]
    fn write_page_rejects_wrong_size() {
        SparseMemory::new().write_page(0, &[1, 2, 3]);
    }
}
