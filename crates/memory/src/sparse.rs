//! Sparse byte-addressable memory.
//!
//! Guest RAM in the simulator is huge (the paper's VMs have 12 GB) but
//! only the pages a workload actually touches matter; `SparseMemory`
//! allocates 4 KiB chunks lazily. It backs data-integrity tests (DMA
//! really moves bytes) and migration (pages are really copied).

use crate::addr::{Gpa, PAGE_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Lazily-allocated byte-addressable memory keyed by guest-physical
/// address.
///
/// Reads of never-written memory return zeroes, like fresh RAM.
///
/// # Example
///
/// ```
/// use dvh_memory::sparse::SparseMemory;
/// use dvh_memory::Gpa;
///
/// let mut ram = SparseMemory::new();
/// ram.write(Gpa::new(0x1FFE), &[0xAA, 0xBB, 0xCC, 0xDD]); // crosses a page
/// assert_eq!(ram.read(Gpa::new(0x1FFE), 4), vec![0xAA, 0xBB, 0xCC, 0xDD]);
/// assert_eq!(ram.read(Gpa::new(0x5000), 2), vec![0, 0]);
/// ```
#[derive(Clone, Default, PartialEq, Eq)]
pub struct SparseMemory {
    pages: BTreeMap<u64, Box<[u8]>>,
}

impl SparseMemory {
    /// Creates empty memory.
    pub fn new() -> SparseMemory {
        SparseMemory::default()
    }

    fn page_mut(&mut self, pfn: u64) -> &mut [u8] {
        self.pages
            .entry(pfn)
            .or_insert_with(|| vec![0u8; PAGE_SIZE as usize].into_boxed_slice())
    }

    /// Writes `data` starting at `gpa`, crossing pages as needed.
    pub fn write(&mut self, gpa: Gpa, data: &[u8]) {
        let mut addr = gpa.raw();
        let mut rest = data;
        while !rest.is_empty() {
            let pfn = addr >> 12;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = rest.len().min(PAGE_SIZE as usize - off);
            self.page_mut(pfn)[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            addr += n as u64;
        }
    }

    /// Reads into a caller-provided buffer starting at `gpa`, crossing
    /// pages as needed. Unmaterialized ranges read as zeroes.
    ///
    /// This is the allocation-free primitive behind [`read`]: DMA-style
    /// hot paths (virtio payload gather, NIC frame copy, vhost) call it
    /// with a reused or pre-sized buffer instead of allocating a fresh
    /// `Vec` per descriptor.
    ///
    /// [`read`]: SparseMemory::read
    pub fn read_into(&self, gpa: Gpa, out: &mut [u8]) {
        let mut addr = gpa.raw();
        let mut filled = 0;
        while filled < out.len() {
            let pfn = addr >> 12;
            let off = (addr & (PAGE_SIZE - 1)) as usize;
            let n = (out.len() - filled).min(PAGE_SIZE as usize - off);
            let dst = &mut out[filled..filled + n];
            match self.pages.get(&pfn) {
                Some(p) => dst.copy_from_slice(&p[off..off + n]),
                None => dst.fill(0),
            }
            filled += n;
            addr += n as u64;
        }
    }

    /// Reads `len` bytes starting at `gpa`. Thin allocating wrapper
    /// around [`SparseMemory::read_into`], kept for tests and cold
    /// paths.
    pub fn read(&self, gpa: Gpa, len: usize) -> Vec<u8> {
        let mut out = vec![0u8; len];
        self.read_into(gpa, &mut out);
        out
    }

    /// Borrows one materialized page, or `None` if the page has never
    /// been written (i.e. it reads as all zeroes).
    pub fn page(&self, pfn: u64) -> Option<&[u8]> {
        self.pages.get(&pfn).map(|p| &p[..])
    }

    /// Runs `f` over one page's bytes without copying. Untouched pages
    /// are presented as a shared zero page, so `f` always sees exactly
    /// [`PAGE_SIZE`] bytes.
    pub fn with_page<R>(&self, pfn: u64, f: impl FnOnce(&[u8]) -> R) -> R {
        static ZERO_PAGE: [u8; PAGE_SIZE as usize] = [0; PAGE_SIZE as usize];
        match self.pages.get(&pfn) {
            Some(p) => f(p),
            None => f(&ZERO_PAGE),
        }
    }

    /// Copies one whole page out (zeroes if untouched). Thin allocating
    /// wrapper around [`SparseMemory::with_page`].
    pub fn read_page(&self, pfn: u64) -> Vec<u8> {
        self.with_page(pfn, |p| p.to_vec())
    }

    /// Writes one whole page.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one page long.
    pub fn write_page(&mut self, pfn: u64, data: &[u8]) {
        assert_eq!(
            data.len(),
            PAGE_SIZE as usize,
            "page write must be page-sized"
        );
        self.write(Gpa::from_pfn(pfn), data);
    }

    /// Number of materialized pages.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// PFNs of all materialized pages in ascending order.
    pub fn resident_pfns(&self) -> Vec<u64> {
        self.pages.keys().copied().collect()
    }
}

impl fmt::Debug for SparseMemory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseMemory({} resident pages)", self.pages.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unwritten_reads_zero() {
        let ram = SparseMemory::new();
        assert_eq!(ram.read(Gpa::new(0x123), 3), vec![0, 0, 0]);
        assert_eq!(ram.resident_pages(), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut ram = SparseMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        ram.write(Gpa::new(0x8000), &data);
        assert_eq!(ram.read(Gpa::new(0x8000), 256), data);
    }

    #[test]
    fn cross_page_write() {
        let mut ram = SparseMemory::new();
        ram.write(Gpa::new(0xFFF), &[1, 2]);
        assert_eq!(ram.read(Gpa::new(0xFFF), 2), vec![1, 2]);
        assert_eq!(ram.resident_pages(), 2);
    }

    #[test]
    fn page_granular_ops() {
        let mut ram = SparseMemory::new();
        let page = vec![7u8; PAGE_SIZE as usize];
        ram.write_page(3, &page);
        assert_eq!(ram.read_page(3), page);
        assert_eq!(ram.resident_pfns(), vec![3]);
    }

    #[test]
    #[should_panic(expected = "page-sized")]
    fn write_page_rejects_wrong_size() {
        SparseMemory::new().write_page(0, &[1, 2, 3]);
    }

    #[test]
    fn read_into_matches_read_across_pages() {
        let mut ram = SparseMemory::new();
        ram.write(Gpa::new(0x1FF0), &[9u8; 64]);
        let mut buf = [0xAAu8; 100];
        ram.read_into(Gpa::new(0x1FC0), &mut buf);
        assert_eq!(buf.to_vec(), ram.read(Gpa::new(0x1FC0), 100));
        // Unmaterialized tail must be zeroed, not left stale.
        let mut far = [0xAAu8; 16];
        ram.read_into(Gpa::new(0x9000), &mut far);
        assert_eq!(far, [0u8; 16]);
    }

    #[test]
    fn page_borrow_and_with_page() {
        let mut ram = SparseMemory::new();
        assert!(ram.page(5).is_none());
        assert!(ram.with_page(5, |p| p.iter().all(|&b| b == 0)));
        ram.write(Gpa::from_pfn(5), &[1, 2, 3]);
        assert_eq!(&ram.page(5).unwrap()[..3], &[1, 2, 3]);
        assert_eq!(ram.with_page(5, |p| p[1]), 2);
    }
}
