//! The physical IOMMU and the virtual IOMMU.
//!
//! The physical IOMMU (VT-d-like) provides per-device DMA remapping
//! domains and posted-interrupt remapping; device passthrough needs it.
//! The **virtual IOMMU** is what the host hypervisor exposes so guest
//! hypervisors can *think* they have passthrough-grade hardware —
//! virtual-passthrough's enabling trick (§3.1): "virtual-passthrough
//! requires the host hypervisor to provide both a virtual I/O device to
//! assign as well as a virtual IOMMU". Guest map/unmap operations on
//! the virtual IOMMU trap; the host folds them into shadow I/O page
//! tables ([`dvh_memory::iommu_pt::ShadowIoTable`]).

use crate::msi::MsiMessage;
use crate::pci::Bdf;
use dvh_memory::iommu_pt::IoTable;
use dvh_memory::{Perms, TranslateErr};
use std::collections::BTreeMap;
use std::fmt;

/// Where a remapped interrupt goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrteTarget {
    /// Posted: update PI descriptor `pi_desc` and notify its CPU —
    /// delivery reaches a running VM without any exit.
    Posted {
        /// Opaque PI-descriptor identifier owned by the hypervisor.
        pi_desc: u32,
    },
    /// Remapped: deliver vector to a CPU in root mode (the hypervisor
    /// then injects it, costing an exit if the target is in guest mode).
    Remapped {
        /// Destination physical CPU.
        dest: u32,
        /// Vector to deliver.
        vector: u8,
    },
}

/// A DMA-remapping and interrupt-remapping unit.
///
/// Used directly as the physical IOMMU, and embedded in
/// [`VirtualIommu`] for the virtual one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Iommu {
    domains: BTreeMap<Bdf, IoTable>,
    irte: BTreeMap<(Bdf, u8), IrteTarget>,
    faults: u64,
}

impl Iommu {
    /// Creates an IOMMU with no domains.
    pub fn new() -> Iommu {
        Iommu::default()
    }

    /// Attaches `bdf` to a fresh (empty) translation domain, detaching
    /// it from any previous one.
    pub fn attach(&mut self, bdf: Bdf) {
        self.domains.insert(bdf, IoTable::new());
    }

    /// Detaches `bdf`; subsequent DMA from it faults.
    pub fn detach(&mut self, bdf: Bdf) -> bool {
        self.domains.remove(&bdf).is_some()
    }

    /// Whether `bdf` has a domain.
    pub fn is_attached(&self, bdf: Bdf) -> bool {
        self.domains.contains_key(&bdf)
    }

    /// Maps `n` pages for device `bdf`: IOVA page `iova_pfn` →
    /// output page `out_pfn`.
    ///
    /// # Panics
    ///
    /// Panics if the device is not attached; callers must `attach`
    /// first (mirrors the VFIO container flow).
    pub fn map(&mut self, bdf: Bdf, iova_pfn: u64, out_pfn: u64, n: u64, perms: Perms) {
        self.domains
            .get_mut(&bdf)
            .expect("device must be attached before mapping")
            .map(iova_pfn, out_pfn, n, perms);
    }

    /// Unmaps one page from `bdf`'s domain.
    pub fn unmap(&mut self, bdf: Bdf, iova_pfn: u64) -> bool {
        self.domains
            .get_mut(&bdf)
            .map(|d| d.unmap(iova_pfn))
            .unwrap_or(false)
    }

    /// Translates a DMA access from `bdf`, recording faults.
    ///
    /// # Errors
    ///
    /// Fails with [`TranslateErr`] for detached devices or unmapped /
    /// protected IOVAs; a failed DMA is dropped by hardware and the
    /// fault is logged.
    pub fn translate(&mut self, bdf: Bdf, iova_pfn: u64, req: Perms) -> Result<u64, TranslateErr> {
        let dom = match self.domains.get_mut(&bdf) {
            Some(d) => d,
            None => {
                self.faults += 1;
                return Err(TranslateErr::NotMapped { level: 0 });
            }
        };
        match dom.translate(iova_pfn, req) {
            Ok(t) => Ok(t.pfn),
            Err(e) => {
                self.faults += 1;
                Err(e)
            }
        }
    }

    /// Installs an interrupt-remapping entry for `(bdf, vector)`.
    pub fn remap_interrupt(&mut self, bdf: Bdf, vector: u8, target: IrteTarget) {
        self.irte.insert((bdf, vector), target);
    }

    /// Resolves an MSI message from `bdf` through the remapping tables.
    /// Non-remappable messages pass through unchanged as
    /// [`IrteTarget::Remapped`].
    pub fn resolve_msi(&self, bdf: Bdf, msg: MsiMessage) -> IrteTarget {
        if msg.remappable {
            if let Some(t) = self.irte.get(&(bdf, msg.vector)) {
                return *t;
            }
        }
        IrteTarget::Remapped {
            dest: msg.dest,
            vector: msg.vector,
        }
    }

    /// The translation domain of `bdf`, if attached.
    pub fn domain(&self, bdf: Bdf) -> Option<&IoTable> {
        self.domains.get(&bdf)
    }

    /// Mutable domain access.
    pub fn domain_mut(&mut self, bdf: Bdf) -> Option<&mut IoTable> {
        self.domains.get_mut(&bdf)
    }

    /// Lifetime DMA faults.
    pub fn fault_count(&self) -> u64 {
        self.faults
    }
}

impl fmt::Display for Iommu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Iommu({} domains, {} IRTEs, {} faults)",
            self.domains.len(),
            self.irte.len(),
            self.faults
        )
    }
}

/// The virtual IOMMU the host hypervisor exposes to a guest
/// hypervisor.
///
/// Functionally an [`Iommu`], with two differences that matter to the
/// paper's evaluation:
///
/// * every guest `map`/`unmap` is a *trapped* operation (counted here,
///   costed by the hypervisor crate);
/// * posted-interrupt support is optional — QEMU's vIOMMU lacked it,
///   and the paper implemented it ("we also implemented posted
///   interrupt support in the virtual IOMMU ... which is missing in
///   QEMU"); the DVH-VP configuration of Figs. 7–10 runs *without* it,
///   full DVH runs *with* it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VirtualIommu {
    inner: Iommu,
    /// Whether this vIOMMU supports posted interrupts.
    pub posted_interrupts: bool,
    map_ops: u64,
    unmap_ops: u64,
}

impl VirtualIommu {
    /// Creates a vIOMMU; `posted_interrupts` selects the paper's
    /// DVH (true) vs. DVH-VP (false) interrupt path.
    pub fn new(posted_interrupts: bool) -> VirtualIommu {
        VirtualIommu {
            inner: Iommu::new(),
            posted_interrupts,
            map_ops: 0,
            unmap_ops: 0,
        }
    }

    /// Guest hypervisor attaches a device (trapped, but one-time).
    pub fn attach(&mut self, bdf: Bdf) {
        self.inner.attach(bdf);
    }

    /// Guest hypervisor maps pages (trapped operation).
    ///
    /// # Panics
    ///
    /// Panics if the device is not attached, like [`Iommu::map`].
    pub fn map(&mut self, bdf: Bdf, iova_pfn: u64, out_pfn: u64, n: u64, perms: Perms) {
        self.map_ops += 1;
        self.inner.map(bdf, iova_pfn, out_pfn, n, perms);
    }

    /// Guest hypervisor unmaps a page (trapped operation).
    pub fn unmap(&mut self, bdf: Bdf, iova_pfn: u64) -> bool {
        self.unmap_ops += 1;
        self.inner.unmap(bdf, iova_pfn)
    }

    /// Underlying unit (host side: translation, IRTE resolution).
    pub fn unit(&self) -> &Iommu {
        &self.inner
    }

    /// Mutable underlying unit.
    pub fn unit_mut(&mut self) -> &mut Iommu {
        &mut self.inner
    }

    /// Trapped map operations so far.
    pub fn map_op_count(&self) -> u64 {
        self.map_ops
    }

    /// Trapped unmap operations so far.
    pub fn unmap_op_count(&self) -> u64 {
        self.unmap_ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bdf() -> Bdf {
        Bdf::new(0, 4, 0)
    }

    #[test]
    fn attach_map_translate() {
        let mut mmu = Iommu::new();
        mmu.attach(bdf());
        mmu.map(bdf(), 0x10, 0x99, 2, Perms::RW);
        assert_eq!(mmu.translate(bdf(), 0x11, Perms::RW).unwrap(), 0x9A);
    }

    #[test]
    fn detached_device_faults() {
        let mut mmu = Iommu::new();
        assert!(mmu.translate(bdf(), 0, Perms::RO).is_err());
        assert_eq!(mmu.fault_count(), 1);
    }

    #[test]
    #[should_panic(expected = "attached")]
    fn map_before_attach_panics() {
        Iommu::new().map(bdf(), 0, 0, 1, Perms::RW);
    }

    #[test]
    fn msi_resolution_prefers_irte() {
        let mut mmu = Iommu::new();
        mmu.remap_interrupt(bdf(), 0x40, IrteTarget::Posted { pi_desc: 7 });
        let t = mmu.resolve_msi(bdf(), MsiMessage::remappable(0, 0x40));
        assert_eq!(t, IrteTarget::Posted { pi_desc: 7 });
        // Legacy messages bypass remapping.
        let t = mmu.resolve_msi(bdf(), MsiMessage::legacy(3, 0x40));
        assert_eq!(
            t,
            IrteTarget::Remapped {
                dest: 3,
                vector: 0x40
            }
        );
    }

    #[test]
    fn unmatched_remappable_message_falls_through() {
        let mmu = Iommu::new();
        let t = mmu.resolve_msi(bdf(), MsiMessage::remappable(5, 0x41));
        assert_eq!(
            t,
            IrteTarget::Remapped {
                dest: 5,
                vector: 0x41
            }
        );
    }

    #[test]
    fn viommu_counts_trapped_ops() {
        let mut v = VirtualIommu::new(false);
        v.attach(bdf());
        v.map(bdf(), 0, 0x100, 8, Perms::RW);
        v.unmap(bdf(), 3);
        assert_eq!(v.map_op_count(), 1);
        assert_eq!(v.unmap_op_count(), 1);
        assert!(!v.posted_interrupts);
    }

    #[test]
    fn detach_then_fault() {
        let mut mmu = Iommu::new();
        mmu.attach(bdf());
        assert!(mmu.detach(bdf()));
        assert!(!mmu.detach(bdf()));
        assert!(mmu.translate(bdf(), 0, Perms::RO).is_err());
    }
}
