//! The vhost-style host backend: services virtqueues, really moves
//! bytes through (shadow) IOMMU translation, dirties pages, and decides
//! when interrupts fire.
//!
//! This is the code that runs at L0 under both the plain virtio model
//! and virtual-passthrough — the paper notes "the virtual I/O device
//! emulation done by the host hypervisor using DVH-VP is almost
//! identical to that using the virtual I/O model; it relays data
//! between the physical I/O device and (nested) VM address space"
//! (§4). What changes between models is *who traps*, not this backend.

use crate::nic::Frame;
use crate::virtio::queue::VirtQueue;
use dvh_memory::sparse::SparseMemory;
use dvh_memory::{DirtyBitmap, Gpa, Perms, TranslateErr, PAGE_SIZE};
use std::fmt;

/// DMA address translation used by the backend when touching guest
/// buffers. Implementations: the physical IOMMU domain (passthrough),
/// a shadow I/O table (virtual-passthrough), or [`Identity`] (the
/// plain virtio model, where the backend runs in the VM-owner's
/// hypervisor and addresses are already its own).
pub trait DmaTranslate {
    /// Translates one device-visible PFN to a backing-store PFN.
    ///
    /// # Errors
    ///
    /// Returns [`TranslateErr`] when the page is unmapped or the access
    /// violates the mapping's permissions; the DMA is dropped.
    fn dma_pfn(&mut self, pfn: u64, req: Perms) -> Result<u64, TranslateErr>;
}

/// Identity translation (no IOMMU stage).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Identity;

impl DmaTranslate for Identity {
    fn dma_pfn(&mut self, pfn: u64, _req: Perms) -> Result<u64, TranslateErr> {
        Ok(pfn)
    }
}

impl DmaTranslate for dvh_memory::iommu_pt::IoTable {
    fn dma_pfn(&mut self, pfn: u64, req: Perms) -> Result<u64, TranslateErr> {
        self.translate(pfn, req).map(|t| t.pfn)
    }
}

impl DmaTranslate for dvh_memory::iommu_pt::ShadowIoTable {
    fn dma_pfn(&mut self, pfn: u64, req: Perms) -> Result<u64, TranslateErr> {
        self.translate(pfn, req).map(|t| t.pfn)
    }
}

/// Reads from device-visible address `addr` through `xl` into a
/// caller-provided buffer. This is the allocation-free primitive the
/// TX fast path gathers payloads with.
///
/// # Errors
///
/// Propagates translation faults; partial reads do not occur (the
/// whole transfer is validated page by page as hardware does).
pub fn dma_read_into(
    mem: &SparseMemory,
    xl: &mut dyn DmaTranslate,
    addr: Gpa,
    out: &mut [u8],
) -> Result<(), TranslateErr> {
    let mut cur = addr.raw();
    let mut filled = 0;
    while filled < out.len() {
        let off = cur & (PAGE_SIZE - 1);
        let n = (out.len() - filled).min((PAGE_SIZE - off) as usize);
        let host_pfn = xl.dma_pfn(cur >> 12, Perms::RO)?;
        mem.read_into(
            Gpa::from_pfn(host_pfn).offset(off),
            &mut out[filled..filled + n],
        );
        cur += n as u64;
        filled += n;
    }
    Ok(())
}

/// Reads `len` bytes from device-visible address `addr` through `xl`.
/// Thin allocating wrapper around [`dma_read_into`], kept for tests
/// and cold paths.
///
/// # Errors
///
/// Propagates translation faults; partial reads do not occur.
pub fn dma_read(
    mem: &SparseMemory,
    xl: &mut dyn DmaTranslate,
    addr: Gpa,
    len: usize,
) -> Result<Vec<u8>, TranslateErr> {
    let mut out = vec![0u8; len];
    dma_read_into(mem, xl, addr, &mut out)?;
    Ok(out)
}

/// Writes `data` to device-visible address `addr` through `xl`,
/// marking dirtied *host* pages in `dirty` if provided.
///
/// # Errors
///
/// Propagates translation faults.
pub fn dma_write(
    mem: &mut SparseMemory,
    xl: &mut dyn DmaTranslate,
    addr: Gpa,
    data: &[u8],
    mut dirty: Option<&mut DirtyBitmap>,
) -> Result<(), TranslateErr> {
    let mut cur = addr.raw();
    let mut rest = data;
    while !rest.is_empty() {
        let off = cur & (PAGE_SIZE - 1);
        let n = rest.len().min((PAGE_SIZE - off) as usize);
        let host_pfn = xl.dma_pfn(cur >> 12, Perms::RW)?;
        mem.write(Gpa::from_pfn(host_pfn).offset(off), &rest[..n]);
        if let Some(d) = dirty.as_deref_mut() {
            d.mark_pfn(host_pfn);
        }
        cur += n as u64;
        rest = &rest[n..];
    }
    Ok(())
}

/// Statistics the backend accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VhostStats {
    /// Bytes read out of guest TX buffers.
    pub tx_bytes: u64,
    /// Bytes written into guest RX buffers.
    pub rx_bytes: u64,
    /// TX chains processed.
    pub tx_packets: u64,
    /// RX frames delivered.
    pub rx_packets: u64,
    /// Frames dropped for lack of RX buffers or translation faults.
    pub dropped: u64,
}

/// The vhost-net backend for one virtio-net device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct VhostNet {
    /// Accumulated statistics.
    pub stats: VhostStats,
}

impl VhostNet {
    /// Creates a backend.
    pub fn new() -> VhostNet {
        VhostNet::default()
    }

    /// Exports the backend's lifetime counters into a metrics registry
    /// under `tag` (e.g. `"l0-vhost"`). Absolute-value semantics:
    /// exporting twice overwrites, never double-counts.
    pub fn export_metrics(&self, reg: &mut dvh_obs::MetricsRegistry, tag: &'static str) {
        use dvh_obs::metrics::names;
        use dvh_obs::MetricKey;
        for (name, v) in [
            (names::VHOST_TX_PACKETS, self.stats.tx_packets),
            (names::VHOST_RX_PACKETS, self.stats.rx_packets),
            (names::VHOST_TX_BYTES, self.stats.tx_bytes),
            (names::VHOST_RX_BYTES, self.stats.rx_bytes),
            (names::VHOST_DROPPED, self.stats.dropped),
        ] {
            reg.set_counter(MetricKey::tagged(name, tag), v);
        }
    }

    /// Services the TX queue after a doorbell: drains all available
    /// chains, reading packet bytes through `xl`, and returns the
    /// transmitted frames. Completions are pushed to the used ring.
    pub fn service_tx(
        &mut self,
        q: &mut VirtQueue,
        mem: &SparseMemory,
        xl: &mut dyn DmaTranslate,
    ) -> Vec<Frame> {
        let mut frames = Vec::new();
        while let Some(chain) = q.pop_avail() {
            // Size the payload once from the chain's readable length and
            // gather each descriptor directly into its slice: one
            // allocation per frame (the Frame owns its bytes), zero per
            // descriptor.
            let readable: usize = chain
                .descs
                .iter()
                .filter(|d| !d.device_writes)
                .map(|d| d.len as usize)
                .sum();
            let mut payload = vec![0u8; readable];
            let mut filled = 0;
            let mut ok = true;
            for d in chain.descs.iter().filter(|d| !d.device_writes) {
                let n = d.len as usize;
                if dma_read_into(mem, xl, d.addr, &mut payload[filled..filled + n]).is_err() {
                    ok = false;
                    break;
                }
                filled += n;
            }
            if ok {
                self.stats.tx_bytes += payload.len() as u64;
                self.stats.tx_packets += 1;
                frames.push(Frame { payload });
            } else {
                self.stats.dropped += 1;
            }
            q.push_used(chain.head, 0);
        }
        frames
    }

    /// Delivers one received frame into the RX queue's next available
    /// buffer chain through `xl`, dirtying pages in `dirty`.
    ///
    /// Returns `true` if the frame was delivered (caller then decides
    /// interrupt delivery via [`VirtQueue::should_interrupt`]).
    pub fn deliver_rx(
        &mut self,
        q: &mut VirtQueue,
        mem: &mut SparseMemory,
        xl: &mut dyn DmaTranslate,
        frame: &Frame,
        dirty: Option<&mut DirtyBitmap>,
    ) -> bool {
        let Some(chain) = q.pop_avail() else {
            self.stats.dropped += 1;
            return false;
        };
        if (chain.writable_len() as usize) < frame.len() {
            self.stats.dropped += 1;
            q.push_used(chain.head, 0);
            return false;
        }
        let mut rest: &[u8] = &frame.payload;
        let mut written = 0u32;
        let mut dirty = dirty;
        for d in chain.descs.iter().filter(|d| d.device_writes) {
            if rest.is_empty() {
                break;
            }
            let n = rest.len().min(d.len as usize);
            if dma_write(mem, xl, d.addr, &rest[..n], dirty.as_deref_mut()).is_err() {
                self.stats.dropped += 1;
                q.push_used(chain.head, written);
                return false;
            }
            written += n as u32;
            rest = &rest[n..];
        }
        self.stats.rx_bytes += written as u64;
        self.stats.rx_packets += 1;
        q.push_used(chain.head, written);
        true
    }
}

impl fmt::Display for VhostNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "vhost-net(tx={}B/{}p rx={}B/{}p drop={})",
            self.stats.tx_bytes,
            self.stats.tx_packets,
            self.stats.rx_bytes,
            self.stats.rx_packets,
            self.stats.dropped
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtio::queue::Descriptor;
    use dvh_memory::iommu_pt::IoTable;

    fn rx_chain(q: &mut VirtQueue, addr: u64, len: u32) -> u16 {
        q.add_chain(vec![Descriptor {
            addr: Gpa::new(addr),
            len,
            device_writes: true,
        }])
        .unwrap()
    }

    #[test]
    fn tx_reads_guest_bytes_identity() {
        let mut mem = SparseMemory::new();
        mem.write(Gpa::new(0x1000), b"hello world");
        let mut q = VirtQueue::new(8);
        q.add_chain(vec![Descriptor {
            addr: Gpa::new(0x1000),
            len: 11,
            device_writes: false,
        }])
        .unwrap();
        let mut vhost = VhostNet::new();
        let frames = vhost.service_tx(&mut q, &mem, &mut Identity);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].payload, b"hello world");
        assert_eq!(vhost.stats.tx_bytes, 11);
        assert_eq!(q.used_len(), 1);
    }

    #[test]
    fn rx_writes_through_iommu_and_dirties() {
        // Guest buffer at guest pfn 0x10 maps to host pfn 0x99.
        let mut xl = IoTable::new();
        xl.map(0x10, 0x99, 1, Perms::RW);
        let mut mem = SparseMemory::new();
        let mut q = VirtQueue::new(8);
        rx_chain(&mut q, 0x10_000, 2048);
        let mut vhost = VhostNet::new();
        let mut dirty = DirtyBitmap::new();
        let frame = Frame::patterned(1500, 7);
        assert!(vhost.deliver_rx(&mut q, &mut mem, &mut xl, &frame, Some(&mut dirty)));
        // Data landed at the *host* frame.
        assert_eq!(mem.read(Gpa::new(0x99_000), 1500), frame.payload);
        assert!(dirty.is_dirty(0x99));
        assert_eq!(vhost.stats.rx_packets, 1);
    }

    #[test]
    fn rx_without_buffers_drops() {
        let mut mem = SparseMemory::new();
        let mut q = VirtQueue::new(8);
        let mut vhost = VhostNet::new();
        let frame = Frame::patterned(100, 0);
        assert!(!vhost.deliver_rx(&mut q, &mut mem, &mut Identity, &frame, None));
        assert_eq!(vhost.stats.dropped, 1);
    }

    #[test]
    fn rx_too_small_buffer_drops() {
        let mut mem = SparseMemory::new();
        let mut q = VirtQueue::new(8);
        rx_chain(&mut q, 0x1000, 64);
        let mut vhost = VhostNet::new();
        let frame = Frame::patterned(1500, 0);
        assert!(!vhost.deliver_rx(&mut q, &mut mem, &mut Identity, &frame, None));
    }

    #[test]
    fn tx_translation_fault_drops_packet() {
        let mut xl = IoTable::new(); // nothing mapped
        let mem = SparseMemory::new();
        let mut q = VirtQueue::new(8);
        q.add_chain(vec![Descriptor {
            addr: Gpa::new(0x5000),
            len: 10,
            device_writes: false,
        }])
        .unwrap();
        let mut vhost = VhostNet::new();
        let frames = vhost.service_tx(&mut q, &mem, &mut xl);
        assert!(frames.is_empty());
        assert_eq!(vhost.stats.dropped, 1);
    }

    #[test]
    fn dma_rw_cross_page_through_table() {
        let mut xl = IoTable::new();
        xl.map(0x10, 0x20, 2, Perms::RW);
        let mut mem = SparseMemory::new();
        let data: Vec<u8> = (0..100).collect();
        // Write crossing the 0x10/0x11 page boundary.
        dma_write(&mut mem, &mut xl, Gpa::new(0x10_FC0), &data, None).unwrap();
        let back = dma_read(&mem, &mut xl, Gpa::new(0x10_FC0), 100).unwrap();
        assert_eq!(back, data);
        // Physically the bytes straddle host pages 0x20 and 0x21.
        assert_eq!(mem.read(Gpa::new(0x20_FC0), 0x40), &data[..0x40]);
        assert_eq!(mem.read(Gpa::new(0x21_000), 36), &data[0x40..]);
    }
}
