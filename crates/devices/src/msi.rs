//! Message-signaled interrupts.

use std::fmt;

/// An MSI/MSI-X message: what a device writes to signal an interrupt.
///
/// With interrupt remapping + posted interrupts (VT-d), the IOMMU
/// translates the message into a posted-interrupt descriptor update
/// instead of a plain vector delivery — the mechanism that lets
/// passthrough (and DVH's virtual-passthrough with vIOMMU PI support)
/// deliver device interrupts to a VM without any exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MsiMessage {
    /// Destination CPU (physical or remapping-table index).
    pub dest: u32,
    /// Interrupt vector.
    pub vector: u8,
    /// Whether this message goes through the IOMMU's interrupt
    /// remapping tables (set for all remappable-format messages).
    pub remappable: bool,
}

impl MsiMessage {
    /// A remappable MSI message.
    pub fn remappable(dest: u32, vector: u8) -> MsiMessage {
        MsiMessage {
            dest,
            vector,
            remappable: true,
        }
    }

    /// A legacy (non-remapped) MSI message.
    pub fn legacy(dest: u32, vector: u8) -> MsiMessage {
        MsiMessage {
            dest,
            vector,
            remappable: false,
        }
    }
}

impl fmt::Display for MsiMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MSI(vec={:#x} -> cpu{}{})",
            self.vector,
            self.dest,
            if self.remappable { ", remapped" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_remappable() {
        assert!(MsiMessage::remappable(0, 0x40).remappable);
        assert!(!MsiMessage::legacy(0, 0x40).remappable);
    }

    #[test]
    fn display_mentions_vector() {
        let m = MsiMessage::remappable(2, 0x41);
        assert!(m.to_string().contains("0x41"));
    }
}
