//! The MSI-X table: per-vector message programming and masking.
//!
//! System software programs one table entry per interrupt source
//! (address/data encode the destination and vector); masking an entry
//! defers delivery — the device latches a pending bit and the message
//! fires on unmask. Guest hypervisors doing passthrough (virtual or
//! physical) program these entries through the device's BAR; the
//! (v)IOMMU's interrupt remapping then decides where the message
//! really lands.

use crate::msi::MsiMessage;
use std::fmt;

/// One MSI-X table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsixEntry {
    /// The programmed message, if any.
    pub message: Option<MsiMessage>,
    /// Entry mask bit (1 = masked).
    pub masked: bool,
    /// Pending bit: the device wanted to signal while masked.
    pub pending: bool,
}

impl Default for MsixEntry {
    fn default() -> MsixEntry {
        MsixEntry {
            message: None,
            masked: true, // entries reset masked, per spec
            pending: false,
        }
    }
}

/// An MSI-X table with its pending-bit array.
///
/// # Example
///
/// ```
/// use dvh_devices::msix::MsixTable;
/// use dvh_devices::msi::MsiMessage;
///
/// let mut t = MsixTable::new(3);
/// t.program(0, MsiMessage::remappable(1, 0x51));
/// t.unmask(0);
/// assert_eq!(t.trigger(0), Some(MsiMessage::remappable(1, 0x51)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsixTable {
    entries: Vec<MsixEntry>,
    /// Function-level mask: masks every entry regardless of its bit.
    pub function_masked: bool,
}

impl MsixTable {
    /// Creates a table with `n` entries, all masked (reset state).
    pub fn new(n: u16) -> MsixTable {
        MsixTable {
            entries: vec![MsixEntry::default(); n as usize],
            function_masked: false,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Programs entry `i`'s message (address/data write).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn program(&mut self, i: usize, msg: MsiMessage) {
        self.entries[i].message = Some(msg);
    }

    /// Masks entry `i`.
    pub fn mask(&mut self, i: usize) {
        self.entries[i].masked = true;
    }

    /// Unmasks entry `i`. If a message was pending, it fires now:
    /// the latched message is returned and the pending bit clears.
    pub fn unmask(&mut self, i: usize) -> Option<MsiMessage> {
        self.entries[i].masked = false;
        if self.entries[i].pending && !self.function_masked {
            self.entries[i].pending = false;
            return self.entries[i].message;
        }
        None
    }

    /// The device signals interrupt source `i`: returns the message to
    /// send, or latches the pending bit if the entry (or function) is
    /// masked or unprogrammed.
    pub fn trigger(&mut self, i: usize) -> Option<MsiMessage> {
        let e = &mut self.entries[i];
        match e.message {
            Some(msg) if !e.masked && !self.function_masked => Some(msg),
            _ => {
                e.pending = true;
                None
            }
        }
    }

    /// Whether entry `i` has a latched pending interrupt.
    pub fn is_pending(&self, i: usize) -> bool {
        self.entries[i].pending
    }

    /// Entry state, for config-space style reads.
    pub fn entry(&self, i: usize) -> MsixEntry {
        self.entries[i]
    }
}

impl fmt::Display for MsixTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MsixTable({} entries, {} pending)",
            self.entries.len(),
            self.entries.iter().filter(|e| e.pending).count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_is_masked_and_unprogrammed() {
        let t = MsixTable::new(2);
        assert!(t.entry(0).masked);
        assert!(t.entry(0).message.is_none());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn trigger_while_masked_latches_pending() {
        let mut t = MsixTable::new(1);
        t.program(0, MsiMessage::remappable(2, 0x60));
        assert_eq!(t.trigger(0), None, "masked: no message");
        assert!(t.is_pending(0));
        // Unmask fires the latched interrupt exactly once.
        assert_eq!(t.unmask(0), Some(MsiMessage::remappable(2, 0x60)));
        assert!(!t.is_pending(0));
        assert_eq!(t.unmask(0), None);
    }

    #[test]
    fn unmasked_trigger_fires_immediately() {
        let mut t = MsixTable::new(1);
        t.program(0, MsiMessage::legacy(0, 0x33));
        t.unmask(0);
        assert_eq!(t.trigger(0), Some(MsiMessage::legacy(0, 0x33)));
        assert!(!t.is_pending(0));
    }

    #[test]
    fn function_mask_overrides_entry_state() {
        let mut t = MsixTable::new(1);
        t.program(0, MsiMessage::legacy(0, 0x33));
        t.unmask(0);
        t.function_masked = true;
        assert_eq!(t.trigger(0), None);
        assert!(t.is_pending(0));
        t.function_masked = false;
        assert_eq!(t.unmask(0), Some(MsiMessage::legacy(0, 0x33)));
    }

    #[test]
    fn unprogrammed_trigger_latches() {
        let mut t = MsixTable::new(1);
        t.unmask(0);
        assert_eq!(t.trigger(0), None);
        assert!(t.is_pending(0));
    }

    #[test]
    #[should_panic]
    fn out_of_range_entry_panics() {
        MsixTable::new(1).program(5, MsiMessage::legacy(0, 1));
    }
}
