//! A physical 10 GbE NIC model with SR-IOV virtual functions.
//!
//! Models the paper's Intel X520-DA2. The passthrough baseline assigns
//! a VF (or the PF) to a VM; frames then move between the VM and the
//! wire with DMA translated by the physical IOMMU only.

use crate::pci::{Bdf, Capability, PciDevice};
use std::collections::VecDeque;
use std::fmt;

/// An Ethernet frame (payload only; headers are folded into payload
/// length for cost purposes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame of `len` patterned bytes (detectable in integrity tests).
    pub fn patterned(len: usize, seed: u8) -> Frame {
        Frame {
            payload: (0..len).map(|i| seed.wrapping_add(i as u8)).collect(),
        }
    }

    /// Frame length in bytes.
    pub fn len(&self) -> usize {
        self.payload.len()
    }

    /// Whether the frame is empty.
    pub fn is_empty(&self) -> bool {
        self.payload.is_empty()
    }
}

/// One NIC function: the PF or a VF.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NicFunction {
    /// Frames received from the wire, waiting for the owner to DMA.
    pub rx_queue: VecDeque<Frame>,
    /// Total bytes transmitted.
    pub tx_bytes: u64,
    /// Total bytes received.
    pub rx_bytes: u64,
}

/// The NIC: one physical function plus `num_vfs` virtual functions.
///
/// # Example
///
/// ```
/// use dvh_devices::nic::{Frame, Nic};
/// use dvh_devices::pci::Bdf;
///
/// let mut nic = Nic::new(Bdf::new(1, 0, 0), 4);
/// assert_eq!(nic.num_functions(), 5);
/// nic.transmit(1, Frame::patterned(1500, 0));
/// assert_eq!(nic.wire().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Nic {
    pf_pci: PciDevice,
    functions: Vec<NicFunction>,
    wire: Vec<Frame>,
    /// Line rate in megabits per second (10 GbE).
    pub line_rate_mbps: u64,
}

impl Nic {
    /// Creates the NIC with `num_vfs` SR-IOV virtual functions.
    pub fn new(bdf: Bdf, num_vfs: u16) -> Nic {
        let mut pf_pci = PciDevice::new(bdf, 0x8086, 0x10FB); // X520
        pf_pci.add_bar(0, 0xFD00_0000, 0x8_0000);
        pf_pci.add_capability(Capability::MsiX { table_size: 64 });
        pf_pci.add_capability(Capability::SrIov { num_vfs });
        Nic {
            pf_pci,
            functions: (0..=num_vfs).map(|_| NicFunction::default()).collect(),
            wire: Vec::new(),
            line_rate_mbps: 10_000,
        }
    }

    /// PF PCI identity.
    pub fn pf_pci(&self) -> &PciDevice {
        &self.pf_pci
    }

    /// Total functions (PF + VFs).
    pub fn num_functions(&self) -> usize {
        self.functions.len()
    }

    /// The BDF of function `idx` (PF is function 0; VFs get
    /// consecutive function numbers, simplified from real VF BDF math).
    pub fn function_bdf(&self, idx: usize) -> Bdf {
        let pf = self.pf_pci.bdf();
        Bdf::new(pf.bus, pf.dev, idx as u8 % 8)
    }

    /// Access function state.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn function_mut(&mut self, idx: usize) -> &mut NicFunction {
        &mut self.functions[idx]
    }

    /// Transmits a frame from function `idx` onto the wire.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn transmit(&mut self, idx: usize, frame: Frame) {
        self.functions[idx].tx_bytes += frame.len() as u64;
        self.wire.push(frame);
    }

    /// Delivers a frame from the wire into function `idx`'s RX queue.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn receive(&mut self, idx: usize, frame: Frame) {
        self.functions[idx].rx_bytes += frame.len() as u64;
        self.functions[idx].rx_queue.push_back(frame);
    }

    /// Frames transmitted onto the wire so far.
    pub fn wire(&self) -> &[Frame] {
        &self.wire
    }

    /// Drains the wire (tests, loopback setups).
    pub fn drain_wire(&mut self) -> Vec<Frame> {
        std::mem::take(&mut self.wire)
    }

    /// Wire time in nanoseconds for a frame of `bytes` at line rate.
    pub fn wire_time_ns(&self, bytes: u64) -> u64 {
        // bits / (mbps * 1e6) seconds = bits * 1000 / mbps ns.
        bytes * 8 * 1000 / self.line_rate_mbps
    }
}

impl fmt::Display for Nic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "10GbE NIC@{} ({} VFs)",
            self.pf_pci.bdf(),
            self.functions.len() - 1
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sriov_capability_present() {
        let nic = Nic::new(Bdf::new(1, 0, 0), 8);
        assert!(matches!(
            nic.pf_pci().find_capability(0x20),
            Some(Capability::SrIov { num_vfs: 8 })
        ));
    }

    #[test]
    fn tx_rx_accounting() {
        let mut nic = Nic::new(Bdf::new(1, 0, 0), 2);
        nic.transmit(1, Frame::patterned(1000, 1));
        nic.receive(2, Frame::patterned(500, 2));
        assert_eq!(nic.function_mut(1).tx_bytes, 1000);
        assert_eq!(nic.function_mut(2).rx_bytes, 500);
        assert_eq!(nic.function_mut(2).rx_queue.len(), 1);
    }

    #[test]
    fn wire_time_at_10g() {
        let nic = Nic::new(Bdf::new(1, 0, 0), 0);
        // 1500 bytes at 10 Gbps = 1.2 microseconds.
        assert_eq!(nic.wire_time_ns(1500), 1200);
    }

    #[test]
    fn patterned_frames_differ_by_seed() {
        assert_ne!(Frame::patterned(10, 0), Frame::patterned(10, 1));
        assert!(!Frame::patterned(1, 0).is_empty());
    }

    #[test]
    fn drain_wire_empties() {
        let mut nic = Nic::new(Bdf::new(1, 0, 0), 0);
        nic.transmit(0, Frame::patterned(64, 0));
        assert_eq!(nic.drain_wire().len(), 1);
        assert!(nic.wire().is_empty());
    }
}
