//! PCI configuration space, capabilities, and the DVH migration
//! capability.
//!
//! Virtual-passthrough (§3.1) works precisely because the host
//! hypervisor's virtual I/O devices *are* PCI devices: "PCI-based
//! virtual I/O devices are widely available and are assignable to work
//! transparently with existing passthrough frameworks". §3.6 then
//! extends the PCI capability mechanism with a **migration capability**
//! so a guest hypervisor can ask the host to capture device state and
//! log DMA-dirtied pages for nested-VM migration.

use std::fmt;

/// A PCI bus/device/function address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bdf {
    /// Bus number.
    pub bus: u8,
    /// Device number (0..32).
    pub dev: u8,
    /// Function number (0..8).
    pub func: u8,
}

impl Bdf {
    /// Creates a BDF address.
    ///
    /// # Panics
    ///
    /// Panics if `dev >= 32` or `func >= 8`.
    pub fn new(bus: u8, dev: u8, func: u8) -> Bdf {
        assert!(dev < 32, "PCI device number out of range");
        assert!(func < 8, "PCI function number out of range");
        Bdf { bus, dev, func }
    }
}

impl fmt::Display for Bdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}:{:02x}.{}", self.bus, self.dev, self.func)
    }
}

/// A PCI capability in a device's capability list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capability {
    /// MSI-X with the given table size.
    MsiX {
        /// Number of MSI-X table entries.
        table_size: u16,
    },
    /// PCI Express endpoint capability (presence only).
    PciExpress,
    /// SR-IOV capability (physical functions only).
    SrIov {
        /// Number of virtual functions supported.
        num_vfs: u16,
    },
    /// The DVH migration capability (§3.6): control registers through
    /// which a guest hypervisor asks the host hypervisor to capture the
    /// virtual device's state and to log pages dirtied by its DMA.
    Migration(MigrationCap),
}

impl Capability {
    /// The capability ID byte, vendor-specific for migration.
    pub fn id(&self) -> u8 {
        match self {
            Capability::MsiX { .. } => 0x11,
            Capability::PciExpress => 0x10,
            Capability::SrIov { .. } => 0x20,
            Capability::Migration(_) => 0x09, // vendor-specific
        }
    }
}

/// The migration capability's register file.
///
/// The guest hypervisor writes the two address registers (locations in
/// *its own* address space where it wants state/log data delivered)
/// and sets bits in `ctrl`; the host hypervisor implements the
/// semantics (see `dvh-core::migration_cap`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MigrationCap {
    /// Where to deposit the opaque encapsulated device state.
    pub device_state_addr: u64,
    /// Where to deposit harvested dirty-page PFN lists.
    pub dirty_log_addr: u64,
    /// Control bits, see [`MigrationCap::CTRL_LOG_ENABLE`] and
    /// [`MigrationCap::CTRL_CAPTURE`].
    pub ctrl: u32,
}

impl MigrationCap {
    /// Control bit: enable dirty-page logging for this device's DMA.
    pub const CTRL_LOG_ENABLE: u32 = 1 << 0;
    /// Control bit: capture device state now (write-1-to-trigger).
    pub const CTRL_CAPTURE: u32 = 1 << 1;

    /// Whether dirty logging is enabled.
    pub fn logging(&self) -> bool {
        self.ctrl & Self::CTRL_LOG_ENABLE != 0
    }
}

/// A PCI device: identity, BARs, and a capability list.
///
/// # Example
///
/// ```
/// use dvh_devices::pci::{Bdf, Capability, PciDevice};
///
/// let mut dev = PciDevice::new(Bdf::new(0, 4, 0), 0x1AF4, 0x1000); // virtio-net
/// dev.add_bar(0, 0xFEB0_0000, 0x4000);
/// dev.add_capability(Capability::MsiX { table_size: 3 });
/// assert!(dev.find_capability(0x11).is_some());
/// assert_eq!(dev.bar(0).unwrap().base, 0xFEB0_0000);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PciDevice {
    bdf: Bdf,
    /// Vendor ID (0x1AF4 = Red Hat / virtio, 0x8086 = Intel).
    pub vendor: u16,
    /// Device ID.
    pub device: u16,
    bars: [Option<Bar>; 6],
    caps: Vec<Capability>,
    /// Bus-master enable: device may DMA only when set.
    pub bus_master: bool,
}

/// A base address register (memory BAR).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bar {
    /// Base address in the owner's address space.
    pub base: u64,
    /// Size in bytes.
    pub len: u64,
}

impl PciDevice {
    /// Creates a device with no BARs or capabilities.
    pub fn new(bdf: Bdf, vendor: u16, device: u16) -> PciDevice {
        PciDevice {
            bdf,
            vendor,
            device,
            bars: [None; 6],
            caps: Vec::new(),
            bus_master: false,
        }
    }

    /// The device's bus address.
    pub fn bdf(&self) -> Bdf {
        self.bdf
    }

    /// Programs BAR `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 6`.
    pub fn add_bar(&mut self, idx: usize, base: u64, len: u64) {
        self.bars[idx] = Some(Bar { base, len });
    }

    /// Reads BAR `idx`.
    pub fn bar(&self, idx: usize) -> Option<Bar> {
        self.bars.get(idx).copied().flatten()
    }

    /// Appends a capability to the list.
    pub fn add_capability(&mut self, cap: Capability) {
        self.caps.push(cap);
    }

    /// Walks the capability list for the first capability with `id`,
    /// as system software does.
    pub fn find_capability(&self, id: u8) -> Option<&Capability> {
        self.caps.iter().find(|c| c.id() == id)
    }

    /// Mutable find, for programming capability registers.
    pub fn find_capability_mut(&mut self, id: u8) -> Option<&mut Capability> {
        self.caps.iter_mut().find(|c| c.id() == id)
    }

    /// Convenience: the migration capability, if present.
    pub fn migration_cap(&self) -> Option<&MigrationCap> {
        self.caps.iter().find_map(|c| match c {
            Capability::Migration(m) => Some(m),
            _ => None,
        })
    }

    /// Convenience: mutable migration capability.
    pub fn migration_cap_mut(&mut self) -> Option<&mut MigrationCap> {
        self.caps.iter_mut().find_map(|c| match c {
            Capability::Migration(m) => Some(m),
            _ => None,
        })
    }

    /// Whether the device conforms to the physical-device interface
    /// expectations of passthrough frameworks (a memory BAR and MSI-X).
    ///
    /// §3.1: virtual devices that "do not adhere to a standard physical
    /// device interface specification are likely to not be assignable".
    pub fn is_assignable(&self) -> bool {
        self.bars.iter().any(Option::is_some) && self.find_capability(0x11).is_some()
    }

    /// All capabilities in list order.
    pub fn capabilities(&self) -> &[Capability] {
        &self.caps
    }
}

impl fmt::Display for PciDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{:04x}:{:04x}] ({} caps)",
            self.bdf,
            self.vendor,
            self.device,
            self.caps.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn virtio_net() -> PciDevice {
        let mut d = PciDevice::new(Bdf::new(0, 4, 0), 0x1AF4, 0x1000);
        d.add_bar(0, 0xFEB0_0000, 0x4000);
        d.add_capability(Capability::MsiX { table_size: 3 });
        d
    }

    #[test]
    fn capability_walk_finds_msix() {
        let d = virtio_net();
        assert!(matches!(
            d.find_capability(0x11),
            Some(Capability::MsiX { table_size: 3 })
        ));
        assert!(d.find_capability(0x10).is_none());
    }

    #[test]
    fn assignable_requires_bar_and_msix() {
        let d = virtio_net();
        assert!(d.is_assignable());
        let bare = PciDevice::new(Bdf::new(0, 5, 0), 0x1AF4, 0x1000);
        assert!(!bare.is_assignable());
    }

    #[test]
    fn migration_cap_round_trip() {
        let mut d = virtio_net();
        d.add_capability(Capability::Migration(MigrationCap::default()));
        {
            let m = d.migration_cap_mut().unwrap();
            m.dirty_log_addr = 0xA000;
            m.ctrl |= MigrationCap::CTRL_LOG_ENABLE;
        }
        let m = d.migration_cap().unwrap();
        assert!(m.logging());
        assert_eq!(m.dirty_log_addr, 0xA000);
    }

    #[test]
    fn bdf_display() {
        assert_eq!(Bdf::new(0, 4, 0).to_string(), "00:04.0");
    }

    #[test]
    #[should_panic(expected = "device number")]
    fn bdf_rejects_bad_dev() {
        Bdf::new(0, 32, 0);
    }

    #[test]
    fn bars_independent() {
        let mut d = virtio_net();
        d.add_bar(2, 0xFEC0_0000, 0x1000);
        assert_eq!(d.bar(0).unwrap().len, 0x4000);
        assert_eq!(d.bar(2).unwrap().base, 0xFEC0_0000);
        assert!(d.bar(1).is_none());
    }

    #[test]
    fn sriov_capability_id() {
        assert_eq!(Capability::SrIov { num_vfs: 8 }.id(), 0x20);
    }
}
