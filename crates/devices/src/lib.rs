//! # dvh-devices
//!
//! Device-model substrate for the DVH nested-virtualization simulator:
//!
//! * [`pci`] — PCI configuration space with a standards-style
//!   capability list, MSI-X, and the **migration capability** the paper
//!   defines in §3.6 (device-state capture + dirty-page logging control
//!   registers on a virtual I/O device).
//! * [`virtio`] — split-ring virtqueues and virtio-net / virtio-blk
//!   device models (the "PCI-based virtual I/O devices" that make
//!   virtual-passthrough work with unmodified passthrough frameworks).
//! * [`nic`] — a physical 10 GbE NIC model with SR-IOV virtual
//!   functions, for the device-passthrough baseline.
//! * [`vhost`] — host-side backend that services virtqueues, moves
//!   bytes, dirties pages, and raises MSI interrupts.
//! * [`iommu`] — the physical IOMMU (VT-d-like: DMA remapping per
//!   device plus posted-interrupt remapping) and the **virtual IOMMU**
//!   guest hypervisors program under (recursive) virtual-passthrough.
//!
//! All models are deterministic and unsafe-free; costs are charged by
//! the hypervisor crate, not here — these models define *behaviour*
//! (who maps what, where data lands, which doorbells ring).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod iommu;
pub mod msi;
pub mod msix;
pub mod nic;
pub mod pci;
pub mod pci_config;
pub mod vhost;
pub mod virtio;

pub use iommu::{Iommu, VirtualIommu};
pub use msi::MsiMessage;
pub use pci::{Bdf, PciDevice};
pub use virtio::queue::VirtQueue;
