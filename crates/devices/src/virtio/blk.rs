//! The virtio-blk device model.

use crate::pci::{Bdf, Capability, PciDevice};
use crate::virtio::queue::VirtQueue;
use std::fmt;

/// A block I/O request type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlkOp {
    /// Read sectors.
    Read,
    /// Write sectors.
    Write,
    /// Flush the write cache (the paper's setups use `cache=none`,
    /// so flushes are cheap no-ops at the backend).
    Flush,
}

/// A block request as carried in a virtqueue chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlkRequest {
    /// Operation.
    pub op: BlkOp,
    /// Starting sector (512-byte units).
    pub sector: u64,
    /// Length in bytes (multiple of 512 for read/write).
    pub len: u32,
}

/// A virtio block device: PCI identity plus one request queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtioBlk {
    pci: PciDevice,
    /// The request queue.
    pub queue: VirtQueue,
    /// Device capacity in 512-byte sectors.
    pub capacity_sectors: u64,
}

impl VirtioBlk {
    /// Creates a virtio-blk device of `capacity_sectors` at `bdf`.
    pub fn new(bdf: Bdf, queue_size: u16, capacity_sectors: u64) -> VirtioBlk {
        let mut pci = PciDevice::new(bdf, 0x1AF4, 0x1042);
        pci.add_bar(0, 0xFEB4_0000, 0x4000);
        pci.add_capability(Capability::MsiX { table_size: 2 });
        VirtioBlk {
            pci,
            queue: VirtQueue::new(queue_size),
            capacity_sectors,
        }
    }

    /// The PCI presence of this device.
    pub fn pci(&self) -> &PciDevice {
        &self.pci
    }

    /// Validates a request against the device geometry.
    pub fn validate(&self, req: BlkRequest) -> bool {
        match req.op {
            BlkOp::Flush => true,
            _ => {
                req.len.is_multiple_of(512)
                    && req
                        .sector
                        .checked_add(req.len as u64 / 512)
                        .is_some_and(|end| end <= self.capacity_sectors)
            }
        }
    }
}

impl fmt::Display for VirtioBlk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "virtio-blk@{}", self.pci.bdf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> VirtioBlk {
        VirtioBlk::new(Bdf::new(0, 5, 0), 128, 1 << 20) // 512 MB
    }

    #[test]
    fn valid_requests() {
        let d = dev();
        assert!(d.validate(BlkRequest {
            op: BlkOp::Read,
            sector: 0,
            len: 4096
        }));
        assert!(d.validate(BlkRequest {
            op: BlkOp::Flush,
            sector: 0,
            len: 0
        }));
    }

    #[test]
    fn out_of_range_rejected() {
        let d = dev();
        assert!(!d.validate(BlkRequest {
            op: BlkOp::Write,
            sector: 1 << 20,
            len: 512
        }));
    }

    #[test]
    fn unaligned_rejected() {
        let d = dev();
        assert!(!d.validate(BlkRequest {
            op: BlkOp::Read,
            sector: 0,
            len: 100
        }));
    }

    #[test]
    fn is_assignable_pci_device() {
        assert!(dev().pci().is_assignable());
    }
}
