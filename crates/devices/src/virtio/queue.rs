//! Split virtqueues.
//!
//! A faithful-behaviour (if not bit-layout) model of the virtio 1.0
//! split ring: a descriptor table, an available ring filled by the
//! driver, and a used ring filled by the device. Buffer addresses are
//! guest-physical in the address space of whoever owns the device —
//! which, under virtual-passthrough, is the *nested* VM, with the
//! (v)IOMMU translating on the device side.

use dvh_memory::Gpa;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;

/// One buffer descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Guest-physical address of the buffer.
    pub addr: Gpa,
    /// Buffer length in bytes.
    pub len: u32,
    /// Device writes (true) or reads (false) this buffer.
    pub device_writes: bool,
}

/// A chain of descriptors popped from the available ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DescChain {
    /// Head index, echoed back in the used ring.
    pub head: u16,
    /// The descriptors in chain order.
    pub descs: Vec<Descriptor>,
}

impl DescChain {
    /// Total bytes across all device-readable descriptors.
    pub fn readable_len(&self) -> u64 {
        self.descs
            .iter()
            .filter(|d| !d.device_writes)
            .map(|d| d.len as u64)
            .sum()
    }

    /// Total bytes across all device-writable descriptors.
    pub fn writable_len(&self) -> u64 {
        self.descs
            .iter()
            .filter(|d| d.device_writes)
            .map(|d| d.len as u64)
            .sum()
    }
}

/// A used-ring element: a completed chain and how much was written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UsedElem {
    /// The head index of the completed chain.
    pub head: u16,
    /// Bytes the device wrote into the chain.
    pub written: u32,
}

/// A split virtqueue.
///
/// # Example
///
/// ```
/// use dvh_devices::virtio::queue::{Descriptor, VirtQueue};
/// use dvh_memory::Gpa;
///
/// let mut q = VirtQueue::new(256);
/// let head = q
///     .add_chain(vec![Descriptor { addr: Gpa::new(0x1000), len: 1500, device_writes: false }])
///     .unwrap();
/// assert!(q.needs_kick());
/// let chain = q.pop_avail().unwrap();
/// assert_eq!(chain.head, head);
/// q.push_used(chain.head, 0);
/// assert_eq!(q.pop_used().unwrap().head, head);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtQueue {
    size: u16,
    avail: VecDeque<DescChain>,
    used: VecDeque<UsedElem>,
    next_head: u16,
    in_flight: u16,
    /// Descriptor count charged per in-flight chain, keyed by head, so
    /// completion releases exactly what [`VirtQueue::add_chain`]
    /// charged. Outstanding heads are a window of at most `size`
    /// consecutive values, so reuse cannot collide.
    chain_lens: BTreeMap<u16, u16>,
    /// Driver-side suppression: device should not send interrupts.
    pub no_interrupt: bool,
    /// Device-side suppression: driver need not kick.
    pub no_notify: bool,
    kicks: u64,
    interrupts: u64,
}

/// Error adding a chain to a full queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueueFull;

impl fmt::Display for QueueFull {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "virtqueue is full")
    }
}

impl std::error::Error for QueueFull {}

impl VirtQueue {
    /// Creates a queue with `size` descriptor slots.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero or not a power of two (virtio
    /// requirement).
    pub fn new(size: u16) -> VirtQueue {
        assert!(
            size > 0 && size.is_power_of_two(),
            "queue size must be a power of two"
        );
        VirtQueue {
            size,
            avail: VecDeque::new(),
            used: VecDeque::new(),
            next_head: 0,
            in_flight: 0,
            chain_lens: BTreeMap::new(),
            no_interrupt: false,
            no_notify: false,
            kicks: 0,
            interrupts: 0,
        }
    }

    /// Queue size in descriptors.
    pub fn size(&self) -> u16 {
        self.size
    }

    /// Driver side: exposes a chain of buffers to the device.
    ///
    /// # Errors
    ///
    /// Returns [`QueueFull`] when the chain is empty, longer than the
    /// ring (it could never fit, and a bare `as u16` narrowing would
    /// silently wrap huge lengths into a tiny — possibly zero —
    /// descriptor charge), or does not fit next to the chains already
    /// in flight.
    pub fn add_chain(&mut self, descs: Vec<Descriptor>) -> Result<u16, QueueFull> {
        let needed = match u16::try_from(descs.len()) {
            Ok(n) if n <= self.size => n,
            _ => return Err(QueueFull),
        };
        if needed == 0 || needed > self.size - self.in_flight {
            return Err(QueueFull);
        }
        let head = self.next_head;
        self.next_head = self.next_head.wrapping_add(1);
        self.in_flight += needed;
        self.chain_lens.insert(head, needed);
        self.avail.push_back(DescChain { head, descs });
        Ok(head)
    }

    /// Driver side: whether the device needs a doorbell kick (there is
    /// available work and the device has not suppressed notification).
    pub fn needs_kick(&self) -> bool {
        !self.avail.is_empty() && !self.no_notify
    }

    /// Driver side: records a doorbell kick.
    pub fn kick(&mut self) {
        self.kicks += 1;
    }

    /// Device side: pops the next available chain.
    pub fn pop_avail(&mut self) -> Option<DescChain> {
        self.avail.pop_front()
    }

    /// Device side: completes a chain, writing `written` bytes.
    pub fn push_used(&mut self, head: u16, written: u32) {
        self.used.push_back(UsedElem { head, written });
    }

    /// Device side: whether completing work should interrupt the
    /// driver.
    pub fn should_interrupt(&self) -> bool {
        !self.used.is_empty() && !self.no_interrupt
    }

    /// Device side: records that an interrupt was sent.
    pub fn interrupt_sent(&mut self) {
        self.interrupts += 1;
    }

    /// Driver side: harvests one completion, recycling every
    /// descriptor the completed chain was charged for.
    pub fn pop_used(&mut self) -> Option<UsedElem> {
        let e = self.used.pop_front()?;
        // Heads completed via push_used without a matching add_chain
        // (not something the datapaths do) release one descriptor.
        let released = self.chain_lens.remove(&e.head).unwrap_or(1);
        self.in_flight = self.in_flight.saturating_sub(released);
        Some(e)
    }

    /// Descriptors currently charged against the ring (chains exposed
    /// or completed but not yet harvested by the driver).
    pub fn in_flight(&self) -> u16 {
        self.in_flight
    }

    /// Outstanding available chains not yet seen by the device.
    pub fn avail_len(&self) -> usize {
        self.avail.len()
    }

    /// Completions not yet harvested by the driver.
    pub fn used_len(&self) -> usize {
        self.used.len()
    }

    /// Restores the lifetime counters from a migration snapshot.
    /// Only valid on a quiesced queue (no in-flight chains).
    ///
    /// # Panics
    ///
    /// Panics if the queue has in-flight work.
    pub fn restore_counters(&mut self, kicks: u64, interrupts: u64) {
        assert!(
            self.avail.is_empty() && self.used.is_empty(),
            "restore requires a quiesced queue"
        );
        self.kicks = kicks;
        self.interrupts = interrupts;
    }

    /// Lifetime doorbell kicks.
    pub fn kick_count(&self) -> u64 {
        self.kicks
    }

    /// Lifetime interrupts.
    pub fn interrupt_count(&self) -> u64 {
        self.interrupts
    }

    /// Exports the queue's lifetime counters and in-flight gauge into a
    /// metrics registry under `tag` (e.g. `"net-tx"`). Absolute-value
    /// semantics: exporting twice overwrites, never double-counts.
    pub fn export_metrics(&self, reg: &mut dvh_obs::MetricsRegistry, tag: &'static str) {
        use dvh_obs::metrics::names;
        use dvh_obs::MetricKey;
        reg.set_counter(MetricKey::tagged(names::VIRTQUEUE_KICKS, tag), self.kicks);
        reg.set_counter(
            MetricKey::tagged(names::VIRTQUEUE_INTERRUPTS, tag),
            self.interrupts,
        );
        reg.set_gauge(
            MetricKey::tagged(names::VIRTQUEUE_IN_FLIGHT, tag),
            self.in_flight as i64,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(addr: u64, len: u32, w: bool) -> Descriptor {
        Descriptor {
            addr: Gpa::new(addr),
            len,
            device_writes: w,
        }
    }

    #[test]
    fn produce_consume_cycle() {
        let mut q = VirtQueue::new(4);
        let h = q.add_chain(vec![desc(0x1000, 100, false)]).unwrap();
        assert_eq!(q.avail_len(), 1);
        let c = q.pop_avail().unwrap();
        assert_eq!(c.head, h);
        assert_eq!(c.readable_len(), 100);
        q.push_used(c.head, 0);
        assert!(q.should_interrupt());
        let u = q.pop_used().unwrap();
        assert_eq!(u.head, h);
        assert_eq!(q.used_len(), 0);
    }

    #[test]
    fn queue_full_when_in_flight() {
        let mut q = VirtQueue::new(2);
        q.add_chain(vec![desc(0, 1, false)]).unwrap();
        q.add_chain(vec![desc(0, 1, false)]).unwrap();
        assert_eq!(q.add_chain(vec![desc(0, 1, false)]), Err(QueueFull));
        // Completing frees a slot.
        let c = q.pop_avail().unwrap();
        q.push_used(c.head, 0);
        q.pop_used().unwrap();
        assert!(q.add_chain(vec![desc(0, 1, false)]).is_ok());
    }

    #[test]
    fn suppression_flags() {
        let mut q = VirtQueue::new(4);
        q.add_chain(vec![desc(0, 1, false)]).unwrap();
        assert!(q.needs_kick());
        q.no_notify = true;
        assert!(!q.needs_kick());
        let c = q.pop_avail().unwrap();
        q.push_used(c.head, 0);
        q.no_interrupt = true;
        assert!(!q.should_interrupt());
    }

    #[test]
    fn readable_writable_split() {
        let c = DescChain {
            head: 0,
            descs: vec![desc(0, 10, false), desc(0, 20, true), desc(0, 30, true)],
        };
        assert_eq!(c.readable_len(), 10);
        assert_eq!(c.writable_len(), 50);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        VirtQueue::new(3);
    }

    #[test]
    fn empty_chain_rejected() {
        let mut q = VirtQueue::new(4);
        assert_eq!(q.add_chain(vec![]), Err(QueueFull));
    }

    #[test]
    fn multi_descriptor_chain_accounting_is_symmetric() {
        // Regression: add_chain charged descs.len() descriptors but
        // pop_used released only 1 per chain, so every multi-descriptor
        // chain leaked until the queue reported QueueFull forever.
        let mut q = VirtQueue::new(8);
        for _ in 0..64 {
            let h1 = q.add_chain(vec![desc(0, 1, false); 3]).unwrap();
            let h2 = q.add_chain(vec![desc(0, 1, false); 3]).unwrap();
            // 6 of 8 descriptors in flight: a third chain cannot fit.
            assert_eq!(q.add_chain(vec![desc(0, 1, false); 3]), Err(QueueFull));
            for h in [h1, h2] {
                let c = q.pop_avail().unwrap();
                assert_eq!(c.head, h);
                q.push_used(c.head, 0);
            }
            q.pop_used().unwrap();
            q.pop_used().unwrap();
            assert_eq!(q.in_flight(), 0);
        }
    }

    #[test]
    fn out_of_order_completion_releases_correct_lengths() {
        let mut q = VirtQueue::new(8);
        let h_big = q.add_chain(vec![desc(0, 1, false); 5]).unwrap();
        let h_small = q.add_chain(vec![desc(0, 1, false)]).unwrap();
        let big = q.pop_avail().unwrap();
        let small = q.pop_avail().unwrap();
        // Device completes the small chain first.
        q.push_used(small.head, 0);
        q.push_used(big.head, 0);
        assert_eq!(q.pop_used().unwrap().head, h_small);
        assert_eq!(q.in_flight(), 5);
        assert_eq!(q.pop_used().unwrap().head, h_big);
        assert_eq!(q.in_flight(), 0);
    }

    #[test]
    fn oversized_chain_rejected_not_truncated() {
        let mut q = VirtQueue::new(4);
        // Longer than the ring: can never fit.
        assert_eq!(q.add_chain(vec![desc(0, 1, false); 5]), Err(QueueFull));
        // Longer than u16::MAX: the old `as u16` narrowing wrapped
        // 65536 descriptors into a charge of zero.
        assert_eq!(q.add_chain(vec![desc(0, 1, false); 65_536]), Err(QueueFull));
        assert_eq!(q.in_flight(), 0);
        assert!(q.add_chain(vec![desc(0, 1, false); 4]).is_ok());
        assert_eq!(q.in_flight(), 4);
    }

    #[test]
    fn counters_accumulate() {
        let mut q = VirtQueue::new(4);
        q.kick();
        q.kick();
        q.interrupt_sent();
        assert_eq!(q.kick_count(), 2);
        assert_eq!(q.interrupt_count(), 1);
    }
}
