//! Virtio device models: split virtqueues, virtio-net, virtio-blk.
//!
//! These are the "PCI-based virtual I/O devices" (§3.1) that the host
//! hypervisor provides. Under the traditional virtual I/O model every
//! hypervisor level instantiates its own; under virtual-passthrough
//! only the host's device exists and is assigned through the levels to
//! the nested VM.

pub mod blk;
pub mod net;
pub mod queue;

pub use blk::VirtioBlk;
pub use net::VirtioNet;
pub use queue::{DescChain, Descriptor, VirtQueue};
