//! The virtio-net device model.

use crate::msix::MsixTable;
use crate::pci::{Bdf, Capability, MigrationCap, PciDevice};
use crate::virtio::queue::VirtQueue;
use std::fmt;

/// Feature bit: checksum offload.
pub const F_CSUM: u64 = 1 << 0;
/// Feature bit: mergeable receive buffers.
pub const F_MRG_RXBUF: u64 = 1 << 15;
/// Feature bit: virtio 1.0 compliance (required for PCI assignability).
pub const F_VERSION_1: u64 = 1 << 32;

/// Offset of the queue-notify doorbell inside BAR 0.
pub const NOTIFY_BAR_OFFSET: u64 = 0x3000;
/// Stride between per-queue doorbells.
pub const NOTIFY_STRIDE: u64 = 4;

/// A virtio network device: PCI identity plus an RX and a TX queue.
///
/// # Example
///
/// ```
/// use dvh_devices::virtio::net::VirtioNet;
/// use dvh_devices::pci::Bdf;
///
/// let mut net = VirtioNet::new(Bdf::new(0, 4, 0), 256);
/// net.negotiate(dvh_devices::virtio::net::F_VERSION_1);
/// assert!(net.pci().is_assignable());
/// assert_eq!(net.doorbell_queue(0x3004), Some(1)); // TX queue doorbell
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtioNet {
    pci: PciDevice,
    /// Receive queue (device writes packets into guest buffers).
    pub rx: VirtQueue,
    /// Transmit queue (device reads packets from guest buffers).
    pub tx: VirtQueue,
    device_features: u64,
    driver_features: u64,
    /// Device status byte (bit 2 = DRIVER_OK).
    pub status: u8,
    /// The MSI-X table (entry 0: config, 1: RX, 2: TX).
    pub msix: MsixTable,
}

impl VirtioNet {
    /// DRIVER_OK status bit.
    pub const STATUS_DRIVER_OK: u8 = 0x4;

    /// Creates a virtio-net device at `bdf` with `queue_size`-entry
    /// queues, fully PCI-conformant (BAR 0 + MSI-X) so that it is
    /// assignable by passthrough frameworks.
    pub fn new(bdf: Bdf, queue_size: u16) -> VirtioNet {
        let mut pci = PciDevice::new(bdf, 0x1AF4, 0x1041);
        pci.add_bar(0, 0xFEB0_0000, 0x4000);
        pci.add_capability(Capability::MsiX { table_size: 3 });
        pci.add_capability(Capability::PciExpress);
        VirtioNet {
            pci,
            rx: VirtQueue::new(queue_size),
            tx: VirtQueue::new(queue_size),
            device_features: F_CSUM | F_MRG_RXBUF | F_VERSION_1,
            driver_features: 0,
            status: 0,
            msix: MsixTable::new(3),
        }
    }

    /// Adds the DVH migration capability (§3.6) to this device. Host
    /// hypervisors do this when exposing the device for
    /// virtual-passthrough so guest hypervisors can migrate nested VMs.
    pub fn enable_migration_cap(&mut self) {
        if self.pci.migration_cap().is_none() {
            self.pci
                .add_capability(Capability::Migration(MigrationCap::default()));
        }
    }

    /// The PCI presence of this device.
    pub fn pci(&self) -> &PciDevice {
        &self.pci
    }

    /// Mutable PCI access (BAR reprogramming, capability writes).
    pub fn pci_mut(&mut self) -> &mut PciDevice {
        &mut self.pci
    }

    /// Features the device offers.
    pub fn device_features(&self) -> u64 {
        self.device_features
    }

    /// Driver accepts `features`; returns the negotiated set.
    pub fn negotiate(&mut self, features: u64) -> u64 {
        self.driver_features = features & self.device_features;
        self.status |= Self::STATUS_DRIVER_OK;
        self.driver_features
    }

    /// Negotiated feature set.
    pub fn negotiated(&self) -> u64 {
        self.driver_features
    }

    /// Whether the driver has completed initialization.
    pub fn driver_ok(&self) -> bool {
        self.status & Self::STATUS_DRIVER_OK != 0
    }

    /// Restores negotiated features and status from a migration
    /// snapshot (the destination hypervisor re-creates the device and
    /// loads the captured state).
    pub fn restore_state(&mut self, negotiated: u64, status: u8) {
        self.driver_features = negotiated & self.device_features;
        self.status = status;
    }

    /// Decodes a BAR-0 write offset into a queue index if it targets a
    /// doorbell (0 = RX, 1 = TX).
    pub fn doorbell_queue(&self, bar_offset: u64) -> Option<u16> {
        if !(NOTIFY_BAR_OFFSET..NOTIFY_BAR_OFFSET + 2 * NOTIFY_STRIDE).contains(&bar_offset) {
            return None;
        }
        Some(((bar_offset - NOTIFY_BAR_OFFSET) / NOTIFY_STRIDE) as u16)
    }

    /// The queue with the given index (0 = RX, 1 = TX).
    pub fn queue_mut(&mut self, idx: u16) -> Option<&mut VirtQueue> {
        match idx {
            0 => Some(&mut self.rx),
            1 => Some(&mut self.tx),
            _ => None,
        }
    }
}

impl fmt::Display for VirtioNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "virtio-net@{}", self.pci.bdf())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negotiation_intersects() {
        let mut net = VirtioNet::new(Bdf::new(0, 4, 0), 64);
        let got = net.negotiate(F_VERSION_1 | (1 << 50));
        assert_eq!(got, F_VERSION_1);
        assert!(net.driver_ok());
    }

    #[test]
    fn doorbell_decode() {
        let net = VirtioNet::new(Bdf::new(0, 4, 0), 64);
        assert_eq!(net.doorbell_queue(NOTIFY_BAR_OFFSET), Some(0));
        assert_eq!(net.doorbell_queue(NOTIFY_BAR_OFFSET + 4), Some(1));
        assert_eq!(net.doorbell_queue(0x0), None);
        assert_eq!(net.doorbell_queue(NOTIFY_BAR_OFFSET + 8), None);
    }

    #[test]
    fn migration_cap_added_once() {
        let mut net = VirtioNet::new(Bdf::new(0, 4, 0), 64);
        net.enable_migration_cap();
        net.enable_migration_cap();
        let count = net
            .pci()
            .capabilities()
            .iter()
            .filter(|c| matches!(c, Capability::Migration(_)))
            .count();
        assert_eq!(count, 1);
    }

    #[test]
    fn queue_lookup() {
        let mut net = VirtioNet::new(Bdf::new(0, 4, 0), 64);
        assert!(net.queue_mut(0).is_some());
        assert!(net.queue_mut(1).is_some());
        assert!(net.queue_mut(2).is_none());
    }
}
