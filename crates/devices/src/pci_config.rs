//! Byte-accurate PCI configuration-space emulation.
//!
//! [`super::pci::PciDevice`] is the structured model; this module
//! renders it as the 256-byte type-0 configuration space that system
//! software actually reads — header, BARs with the write-ones sizing
//! protocol, and a properly linked capability list starting at the
//! capabilities pointer (offset 0x34). This is what makes a virtual
//! device "appear to the guest hypervisors and OSes on any platform
//! just like a physical I/O device" (§3.1): the guest's PCI probe
//! walks these exact bytes.

use crate::pci::{Capability, PciDevice};

/// Standard config-space offsets.
pub mod offset {
    /// Vendor ID (16-bit).
    pub const VENDOR_ID: usize = 0x00;
    /// Device ID (16-bit).
    pub const DEVICE_ID: usize = 0x02;
    /// Command register (16-bit; bit 2 = bus-master enable).
    pub const COMMAND: usize = 0x04;
    /// Status register (16-bit; bit 4 = capabilities list present).
    pub const STATUS: usize = 0x06;
    /// First BAR (32-bit each, 6 of them).
    pub const BAR0: usize = 0x10;
    /// Capabilities pointer (8-bit).
    pub const CAP_PTR: usize = 0x34;
    /// First capability (conventional placement).
    pub const FIRST_CAP: usize = 0x40;
}

/// Command-register bit: bus-master (DMA) enable.
pub const COMMAND_BUS_MASTER: u16 = 1 << 2;
/// Status-register bit: capability list present.
pub const STATUS_CAP_LIST: u16 = 1 << 4;

/// A rendered 256-byte configuration space with live BAR-sizing state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigSpace {
    bytes: [u8; 256],
    /// Per-BAR size masks for the sizing protocol.
    bar_sizes: [u64; 6],
    /// BARs currently latched in "sizing" mode (all-ones written).
    sizing: [bool; 6],
}

impl ConfigSpace {
    /// Renders `dev` into a fresh configuration space.
    pub fn render(dev: &PciDevice) -> ConfigSpace {
        let mut bytes = [0u8; 256];
        let mut bar_sizes = [0u64; 6];
        bytes[offset::VENDOR_ID..][..2].copy_from_slice(&dev.vendor.to_le_bytes());
        bytes[offset::DEVICE_ID..][..2].copy_from_slice(&dev.device.to_le_bytes());
        let cmd: u16 = if dev.bus_master {
            COMMAND_BUS_MASTER
        } else {
            0
        };
        bytes[offset::COMMAND..][..2].copy_from_slice(&cmd.to_le_bytes());
        for i in 0..6 {
            if let Some(bar) = dev.bar(i) {
                let val = (bar.base as u32) & !0xF; // memory BAR, 32-bit
                bytes[offset::BAR0 + i * 4..][..4].copy_from_slice(&val.to_le_bytes());
                bar_sizes[i] = bar.len.next_power_of_two().max(16);
            }
        }
        // Capability list: linked chain from 0x34.
        let caps = dev.capabilities();
        if !caps.is_empty() {
            let status = u16::from_le_bytes([bytes[offset::STATUS], bytes[offset::STATUS + 1]])
                | STATUS_CAP_LIST;
            bytes[offset::STATUS..][..2].copy_from_slice(&status.to_le_bytes());
            bytes[offset::CAP_PTR] = offset::FIRST_CAP as u8;
            let mut at = offset::FIRST_CAP;
            for (i, cap) in caps.iter().enumerate() {
                let body_len = cap_body_len(cap);
                let next = if i + 1 < caps.len() {
                    (at + 2 + body_len + 3) & !3 // dword aligned
                } else {
                    0
                };
                bytes[at] = cap.id();
                bytes[at + 1] = next as u8;
                write_cap_body(cap, &mut bytes[at + 2..at + 2 + body_len]);
                if next == 0 {
                    break;
                }
                at = next;
            }
        }
        ConfigSpace {
            bytes,
            bar_sizes,
            sizing: [false; 6],
        }
    }

    /// A 32-bit configuration read at `off` (must be dword-aligned).
    ///
    /// # Panics
    ///
    /// Panics on unaligned offsets, as a chipset would reject them.
    pub fn read32(&self, off: usize) -> u32 {
        assert_eq!(off % 4, 0, "config reads are dword-aligned");
        if let Some(i) = bar_index(off) {
            if self.sizing[i] {
                // The sizing protocol: after writing all-ones, reads
                // return the size mask (zero for unimplemented BARs).
                if self.bar_sizes[i] == 0 {
                    return 0;
                }
                return !(self.bar_sizes[i] as u32 - 1) & !0xF;
            }
        }
        u32::from_le_bytes(self.bytes[off..off + 4].try_into().expect("in range"))
    }

    /// A 32-bit configuration write at `off`.
    ///
    /// # Panics
    ///
    /// Panics on unaligned offsets.
    pub fn write32(&mut self, off: usize, value: u32) {
        assert_eq!(off % 4, 0, "config writes are dword-aligned");
        if let Some(i) = bar_index(off) {
            if value == u32::MAX {
                self.sizing[i] = true;
                return;
            }
            self.sizing[i] = false;
            let val = value & !0xF;
            self.bytes[off..off + 4].copy_from_slice(&val.to_le_bytes());
            return;
        }
        // Vendor/device IDs are read-only; the status half of the
        // command dword is read-only but the command half is writable.
        if off == offset::VENDOR_ID {
            return;
        }
        if off == offset::COMMAND {
            self.bytes[offset::COMMAND..][..2].copy_from_slice(&(value as u16).to_le_bytes());
            return;
        }
        self.bytes[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Walks the capability list, returning `(id, offset)` pairs — the
    /// algorithm every OS uses.
    pub fn walk_capabilities(&self) -> Vec<(u8, usize)> {
        let mut out = Vec::new();
        let status =
            u16::from_le_bytes([self.bytes[offset::STATUS], self.bytes[offset::STATUS + 1]]);
        if status & STATUS_CAP_LIST == 0 {
            return out;
        }
        let mut at = self.bytes[offset::CAP_PTR] as usize;
        let mut guard = 0;
        while at != 0 && guard < 48 {
            out.push((self.bytes[at], at));
            at = self.bytes[at + 1] as usize;
            guard += 1;
        }
        out
    }

    /// Whether bus mastering (DMA) is enabled.
    pub fn bus_master_enabled(&self) -> bool {
        let cmd =
            u16::from_le_bytes([self.bytes[offset::COMMAND], self.bytes[offset::COMMAND + 1]]);
        cmd & COMMAND_BUS_MASTER != 0
    }

    /// The sized length of BAR `i` as software would compute it from
    /// the sizing protocol.
    pub fn size_bar(&mut self, i: usize) -> u64 {
        let off = offset::BAR0 + i * 4;
        let saved = self.read32(off);
        self.write32(off, u32::MAX);
        let mask = self.read32(off);
        self.write32(off, saved);
        if mask == 0 {
            0
        } else {
            (!(mask as u64) + 1) & 0xFFFF_FFFF
        }
    }
}

fn bar_index(off: usize) -> Option<usize> {
    if (offset::BAR0..offset::BAR0 + 24).contains(&off) && off.is_multiple_of(4) {
        Some((off - offset::BAR0) / 4)
    } else {
        None
    }
}

fn cap_body_len(cap: &Capability) -> usize {
    match cap {
        Capability::MsiX { .. } => 2,
        Capability::PciExpress => 2,
        Capability::SrIov { .. } => 2,
        Capability::Migration(_) => 18,
    }
}

fn write_cap_body(cap: &Capability, body: &mut [u8]) {
    match cap {
        Capability::MsiX { table_size } => {
            body[..2].copy_from_slice(&(table_size - 1).to_le_bytes());
        }
        Capability::PciExpress => {
            body[..2].copy_from_slice(&2u16.to_le_bytes()); // endpoint
        }
        Capability::SrIov { num_vfs } => {
            body[..2].copy_from_slice(&num_vfs.to_le_bytes());
        }
        Capability::Migration(m) => {
            body[..8].copy_from_slice(&m.device_state_addr.to_le_bytes());
            body[8..16].copy_from_slice(&m.dirty_log_addr.to_le_bytes());
            body[16..18].copy_from_slice(&(m.ctrl as u16).to_le_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pci::{Bdf, MigrationCap};

    fn dev() -> PciDevice {
        let mut d = PciDevice::new(Bdf::new(0, 4, 0), 0x1AF4, 0x1041);
        d.add_bar(0, 0xFEB0_0000, 0x4000);
        d.add_capability(Capability::MsiX { table_size: 3 });
        d.add_capability(Capability::Migration(MigrationCap {
            device_state_addr: 0x1234,
            dirty_log_addr: 0x5678,
            ctrl: MigrationCap::CTRL_LOG_ENABLE,
        }));
        d
    }

    #[test]
    fn header_fields_read_back() {
        let cs = ConfigSpace::render(&dev());
        let id = cs.read32(0x00);
        assert_eq!(id & 0xFFFF, 0x1AF4);
        assert_eq!(id >> 16, 0x1041);
    }

    #[test]
    fn bar_sizing_protocol() {
        let mut cs = ConfigSpace::render(&dev());
        assert_eq!(cs.read32(offset::BAR0), 0xFEB0_0000);
        assert_eq!(cs.size_bar(0), 0x4000);
        // The original base survives the sizing dance.
        assert_eq!(cs.read32(offset::BAR0), 0xFEB0_0000);
        // Unimplemented BARs size to zero.
        assert_eq!(cs.size_bar(3), 0);
    }

    #[test]
    fn capability_walk_finds_linked_chain() {
        let cs = ConfigSpace::render(&dev());
        let caps = cs.walk_capabilities();
        assert_eq!(caps.len(), 2);
        assert_eq!(caps[0].0, 0x11, "MSI-X first");
        assert_eq!(caps[1].0, 0x09, "vendor-specific migration cap second");
        assert_eq!(caps[0].1, offset::FIRST_CAP);
        assert!(caps[1].1 > caps[0].1);
    }

    #[test]
    fn no_caps_means_no_list_bit() {
        let bare = PciDevice::new(Bdf::new(0, 5, 0), 0x8086, 0x10FB);
        let cs = ConfigSpace::render(&bare);
        assert!(cs.walk_capabilities().is_empty());
        assert_eq!(cs.bytes[offset::CAP_PTR], 0);
    }

    #[test]
    fn migration_cap_body_serializes_registers() {
        let cs = ConfigSpace::render(&dev());
        let (_, at) = cs.walk_capabilities()[1];
        let state_addr = u64::from_le_bytes(cs.bytes[at + 2..at + 10].try_into().unwrap());
        let log_addr = u64::from_le_bytes(cs.bytes[at + 10..at + 18].try_into().unwrap());
        assert_eq!(state_addr, 0x1234);
        assert_eq!(log_addr, 0x5678);
    }

    #[test]
    fn bus_master_bit_round_trips() {
        let mut d = dev();
        d.bus_master = true;
        let mut cs = ConfigSpace::render(&d);
        assert!(cs.bus_master_enabled());
        cs.write32(offset::COMMAND & !3, 0);
        assert!(!cs.bus_master_enabled());
    }

    #[test]
    #[should_panic(expected = "dword-aligned")]
    fn unaligned_read_rejected() {
        ConfigSpace::render(&dev()).read32(0x01);
    }

    #[test]
    fn vendor_id_is_read_only() {
        let mut cs = ConfigSpace::render(&dev());
        cs.write32(0x00, 0xDEAD_BEEF);
        assert_eq!(cs.read32(0x00) & 0xFFFF, 0x1AF4);
    }
}
