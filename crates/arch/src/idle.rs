//! CPU idle states.
//!
//! The paper's virtual idle mechanism (§3.4) is entirely about *who*
//! emulates the `hlt` instruction for a nested VM. The hardware side is
//! simple: a halted CPU waits in a shallow C-state and pays a wake
//! latency when an interrupt arrives.

use std::fmt;

/// Idle state of a physical CPU (or, by extension, a vCPU context).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IdleState {
    /// Executing instructions.
    #[default]
    Running,
    /// Halted in C1 via `hlt`; wakes on any interrupt.
    HaltedC1,
    /// Polling instead of halting (the `idle=poll` alternative the
    /// paper contrasts with virtual idle: wastes cycles but wakes
    /// instantly).
    Polling,
}

impl IdleState {
    /// Whether a wake latency must be paid to resume execution.
    pub fn pays_wake_latency(self) -> bool {
        self == IdleState::HaltedC1
    }

    /// Whether the CPU consumes cycles while "idle".
    pub fn burns_cycles(self) -> bool {
        self == IdleState::Polling
    }
}

impl fmt::Display for IdleState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halt_pays_wake_latency() {
        assert!(IdleState::HaltedC1.pays_wake_latency());
        assert!(!IdleState::Polling.pays_wake_latency());
        assert!(!IdleState::Running.pays_wake_latency());
    }

    #[test]
    fn polling_burns_cycles() {
        assert!(IdleState::Polling.burns_cycles());
        assert!(!IdleState::HaltedC1.burns_cycles());
    }

    #[test]
    fn default_is_running() {
        assert_eq!(IdleState::default(), IdleState::Running);
    }
}
