//! Physical CPUs with per-CPU cycle clocks.

use crate::cycles::Cycles;
use crate::idle::IdleState;
use std::fmt;

/// Identifier of a physical CPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CpuId(pub u32);

impl fmt::Display for CpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pcpu{}", self.0)
    }
}

/// A physical CPU: a cycle clock plus idle state.
///
/// Each CPU advances its own clock as software executes on it. When
/// CPUs interact (an IPI, a posted-interrupt notification, a shared
/// wake event) the receiving CPU's clock is synchronized to
/// `max(receiver, sender_at_send_point)` before the receive cost is
/// charged — the standard conservative treatment for causal chains.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysCpu {
    id: CpuId,
    now: Cycles,
    idle: IdleState,
}

impl PhysCpu {
    /// Creates CPU `id` at time zero, running.
    pub fn new(id: CpuId) -> PhysCpu {
        PhysCpu {
            id,
            now: Cycles::ZERO,
            idle: IdleState::Running,
        }
    }

    /// This CPU's identifier.
    pub fn id(&self) -> CpuId {
        self.id
    }

    /// The CPU's current simulated time.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `d`, returning the new time.
    pub fn advance(&mut self, d: Cycles) -> Cycles {
        self.now += d;
        self.now
    }

    /// Synchronizes this CPU's clock to at least `t` (models waiting
    /// for a causally earlier event on another CPU).
    pub fn sync_to(&mut self, t: Cycles) {
        self.now = self.now.max(t);
    }

    /// Current idle state.
    pub fn idle_state(&self) -> IdleState {
        self.idle
    }

    /// Enters the given idle state.
    pub fn set_idle_state(&mut self, s: IdleState) {
        self.idle = s;
    }

    /// Whether the CPU is halted.
    pub fn is_idle(&self) -> bool {
        self.idle != IdleState::Running
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut cpu = PhysCpu::new(CpuId(0));
        cpu.advance(Cycles::new(100));
        cpu.advance(Cycles::new(50));
        assert_eq!(cpu.now(), Cycles::new(150));
    }

    #[test]
    fn sync_never_goes_backwards() {
        let mut cpu = PhysCpu::new(CpuId(1));
        cpu.advance(Cycles::new(500));
        cpu.sync_to(Cycles::new(100));
        assert_eq!(cpu.now(), Cycles::new(500));
        cpu.sync_to(Cycles::new(900));
        assert_eq!(cpu.now(), Cycles::new(900));
    }

    #[test]
    fn idle_state_transitions() {
        let mut cpu = PhysCpu::new(CpuId(2));
        assert!(!cpu.is_idle());
        cpu.set_idle_state(IdleState::HaltedC1);
        assert!(cpu.is_idle());
        cpu.set_idle_state(IdleState::Running);
        assert!(!cpu.is_idle());
    }

    #[test]
    fn display_of_cpu_id() {
        assert_eq!(CpuId(3).to_string(), "pcpu3");
    }
}
