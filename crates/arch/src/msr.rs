//! Model-specific register indices and trap classification.

/// x2APIC task-priority register.
pub const IA32_X2APIC_TPR: u32 = 0x808;
/// x2APIC end-of-interrupt register.
pub const IA32_X2APIC_EOI: u32 = 0x80B;
/// x2APIC interrupt command register (ICR): writing sends an IPI.
pub const IA32_X2APIC_ICR: u32 = 0x830;
/// x2APIC LVT timer register.
pub const IA32_X2APIC_LVT_TIMER: u32 = 0x832;
/// x2APIC timer initial-count register.
pub const IA32_X2APIC_TIMER_ICR: u32 = 0x838;
/// TSC-deadline timer MSR: writing arms the LAPIC timer.
pub const IA32_TSC_DEADLINE: u32 = 0x6E0;
/// Time-stamp counter.
pub const IA32_TSC: u32 = 0x10;

/// VMX basic capability MSR.
pub const IA32_VMX_BASIC: u32 = 0x480;
/// VMX processor-based control capability MSR.
pub const IA32_VMX_PROCBASED_CTLS: u32 = 0x482;
/// VMX secondary control capability MSR.
pub const IA32_VMX_PROCBASED_CTLS2: u32 = 0x48B;
/// DVH virtual-hardware capability MSR (bits in [`crate::vmx::cap`]).
///
/// This is the "one bit in the VMX capability register" of §3.2–3.3:
/// a guest hypervisor reads this MSR to discover virtual timers,
/// virtual IPIs, and the VCIMT address register.
pub const IA32_VMX_DVH_CAP: u32 = 0x4F0;

/// How an MSR access behaves from guest mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsrAccess {
    /// Access is satisfied by hardware without an exit (APICv-virtualized
    /// register, or MSR-bitmap pass-through).
    PassThrough,
    /// Access traps to the hypervisor.
    Trapped,
}

/// Classifies a `wrmsr` of `msr` from guest mode on hardware with APICv.
///
/// The classification matches the paper's premises: EOI and TPR are
/// virtualized by APICv (no exit); ICR writes and TSC-deadline writes
/// *always* trap, which is precisely why virtual IPIs (§3.3) and virtual
/// timers (§3.2) matter.
pub fn classify_wrmsr(msr: u32) -> MsrAccess {
    match msr {
        IA32_X2APIC_TPR | IA32_X2APIC_EOI => MsrAccess::PassThrough,
        IA32_X2APIC_ICR | IA32_X2APIC_LVT_TIMER | IA32_X2APIC_TIMER_ICR | IA32_TSC_DEADLINE => {
            MsrAccess::Trapped
        }
        _ => MsrAccess::Trapped,
    }
}

/// Classifies a `rdmsr` of `msr` from guest mode on hardware with APICv.
pub fn classify_rdmsr(msr: u32) -> MsrAccess {
    match msr {
        IA32_TSC | IA32_X2APIC_TPR => MsrAccess::PassThrough,
        _ => MsrAccess::Trapped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icr_and_deadline_trap() {
        assert_eq!(classify_wrmsr(IA32_X2APIC_ICR), MsrAccess::Trapped);
        assert_eq!(classify_wrmsr(IA32_TSC_DEADLINE), MsrAccess::Trapped);
    }

    #[test]
    fn apicv_registers_pass_through() {
        assert_eq!(classify_wrmsr(IA32_X2APIC_EOI), MsrAccess::PassThrough);
        assert_eq!(classify_wrmsr(IA32_X2APIC_TPR), MsrAccess::PassThrough);
        assert_eq!(classify_rdmsr(IA32_TSC), MsrAccess::PassThrough);
    }

    #[test]
    fn unknown_msrs_trap() {
        assert_eq!(classify_wrmsr(0xC000_0080), MsrAccess::Trapped);
        assert_eq!(classify_rdmsr(0xC000_0080), MsrAccess::Trapped);
    }
}
