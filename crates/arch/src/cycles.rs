//! Simulated time in CPU cycles.
//!
//! All time in the simulator is expressed in [`Cycles`], a newtype over
//! `u64`. There is no wall-clock time anywhere in the simulation core,
//! which makes every experiment deterministic and reproducible.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A duration or point in simulated time, measured in CPU cycles.
///
/// Arithmetic is saturating: the simulator never panics on overflow, it
/// pins at `u64::MAX` (which, at the modelled 2.2 GHz, is roughly 266
/// years — effectively "forever" for any experiment).
///
/// # Example
///
/// ```
/// use dvh_arch::Cycles;
///
/// let exit = Cycles::new(700);
/// let entry = Cycles::new(600);
/// assert_eq!((exit + entry).as_u64(), 1300);
/// assert_eq!(exit * 3, Cycles::new(2100));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// The maximum representable duration.
    pub const MAX: Cycles = Cycles(u64::MAX);

    /// The clock frequency the calibrated cost model assumes, in Hz.
    ///
    /// This matches the paper's evaluation hardware: Intel Xeon Silver
    /// 4114 at 2.2 GHz.
    pub const FREQ_HZ: u64 = 2_200_000_000;

    /// Creates a duration of `n` cycles.
    pub const fn new(n: u64) -> Cycles {
        Cycles(n)
    }

    /// Returns the raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Converts a duration in nanoseconds to cycles at [`Cycles::FREQ_HZ`].
    ///
    /// ```
    /// use dvh_arch::Cycles;
    /// assert_eq!(Cycles::from_nanos(1000).as_u64(), 2200);
    /// ```
    pub const fn from_nanos(ns: u64) -> Cycles {
        Cycles(ns.saturating_mul(Self::FREQ_HZ / 1_000_000) / 1_000)
    }

    /// Converts this duration to nanoseconds at [`Cycles::FREQ_HZ`].
    pub const fn as_nanos(self) -> u64 {
        // cycles / 2.2 = ns; compute as cycles * 10 / 22 to stay integral.
        self.0.saturating_mul(10) / 22
    }

    /// Converts this duration to (fractional) seconds at [`Cycles::FREQ_HZ`].
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / Self::FREQ_HZ as f64
    }

    /// Saturating addition.
    pub const fn saturating_add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (clamps at zero).
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Returns `self` unless it is less than `other`, in which case
    /// `other` is returned. Used to synchronize per-CPU clocks at
    /// interaction points (IPI delivery, interrupt arrival).
    pub fn max(self, other: Cycles) -> Cycles {
        Cycles(self.0.max(other.0))
    }

    /// Whether this is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

/// Upper bounds (inclusive) of the fixed histogram buckets every
/// cycle-valued metric shares: powers of two from 256 cycles (~116 ns,
/// below any single world switch) to 8M cycles (~3.8 ms, past a whole
/// pre-copy round). A fixed geometric ladder keeps histograms from
/// different runs, levels, and sweep cells directly comparable and
/// mergeable bucket by bucket.
pub const CYCLE_BUCKET_BOUNDS: [u64; 16] = [
    1 << 8,
    1 << 9,
    1 << 10,
    1 << 11,
    1 << 12,
    1 << 13,
    1 << 14,
    1 << 15,
    1 << 16,
    1 << 17,
    1 << 18,
    1 << 19,
    1 << 20,
    1 << 21,
    1 << 22,
    1 << 23,
];

/// The bucket index a value falls in: the first bound it does not
/// exceed, or the overflow bucket [`CYCLE_BUCKET_BOUNDS::len`] past the
/// last bound. Total bucket count is `CYCLE_BUCKET_BOUNDS.len() + 1`.
pub fn cycle_bucket_index(value: u64) -> usize {
    CYCLE_BUCKET_BOUNDS
        .iter()
        .position(|&bound| value <= bound)
        .unwrap_or(CYCLE_BUCKET_BOUNDS.len())
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics if `rhs` is zero, like integer division.
    fn div(self, rhs: u64) -> Cycles {
        Cycles(self.0 / rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Cycles {
        Cycles(n)
    }
}

impl From<Cycles> for u64 {
    fn from(c: Cycles) -> u64 {
        c.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_saturating() {
        assert_eq!(Cycles::MAX + Cycles::new(1), Cycles::MAX);
        assert_eq!(Cycles::new(1) + Cycles::new(2), Cycles::new(3));
    }

    #[test]
    fn sub_clamps_at_zero() {
        assert_eq!(Cycles::new(1) - Cycles::new(5), Cycles::ZERO);
        assert_eq!(Cycles::new(5) - Cycles::new(1), Cycles::new(4));
    }

    #[test]
    fn mul_and_div() {
        assert_eq!(Cycles::new(100) * 3, Cycles::new(300));
        assert_eq!(Cycles::new(100) / 4, Cycles::new(25));
    }

    #[test]
    fn nanos_round_trip_approximately() {
        let c = Cycles::from_nanos(1_000_000); // 1 ms
        assert_eq!(c.as_u64(), 2_200_000);
        let back = c.as_nanos();
        assert!((back as i64 - 1_000_000i64).abs() <= 1);
    }

    #[test]
    fn sum_of_iterator() {
        let total: Cycles = (1..=4u64).map(Cycles::new).sum();
        assert_eq!(total, Cycles::new(10));
    }

    #[test]
    fn max_synchronizes() {
        assert_eq!(Cycles::new(5).max(Cycles::new(9)), Cycles::new(9));
        assert_eq!(Cycles::new(9).max(Cycles::new(5)), Cycles::new(9));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycles::new(7).to_string(), "7 cycles");
    }

    #[test]
    fn secs_conversion() {
        let one_sec = Cycles::new(Cycles::FREQ_HZ);
        assert!((one_sec.as_secs_f64() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(cycle_bucket_index(0), 0);
        assert_eq!(cycle_bucket_index(256), 0);
        assert_eq!(cycle_bucket_index(257), 1);
        assert_eq!(cycle_bucket_index(1 << 23), CYCLE_BUCKET_BOUNDS.len() - 1);
        // Past the last bound: the overflow bucket.
        assert_eq!(cycle_bucket_index((1 << 23) + 1), CYCLE_BUCKET_BOUNDS.len());
        assert_eq!(cycle_bucket_index(u64::MAX), CYCLE_BUCKET_BOUNDS.len());
        // Bounds are strictly increasing (histograms rely on it).
        for pair in CYCLE_BUCKET_BOUNDS.windows(2) {
            assert!(pair[0] < pair[1]);
        }
    }
}
