//! Local APIC model: ICR encoding, TSC-deadline timer state, and
//! posted-interrupt descriptors.

use std::fmt;

/// An interrupt vector number (32..=255 are usable).
pub type Vector = u8;

/// IPI delivery modes encoded in the ICR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum DeliveryMode {
    /// Ordinary fixed-vector interrupt.
    Fixed = 0,
    /// Non-maskable interrupt.
    Nmi = 4,
    /// INIT signal.
    Init = 5,
    /// Startup IPI.
    Startup = 6,
}

/// A decoded interrupt command register value.
///
/// Writing the (x2APIC) ICR MSR with an encoded [`IcrValue`] sends an
/// IPI. Hypervisors trap these writes; DVH's virtual IPIs (§3.3) let
/// the *host* hypervisor emulate them for nested VMs directly.
///
/// # Example
///
/// ```
/// use dvh_arch::apic::{IcrValue, DeliveryMode};
///
/// let icr = IcrValue::fixed(0xEC, 3);
/// let raw = icr.encode();
/// assert_eq!(IcrValue::decode(raw), icr);
/// assert_eq!(icr.dest, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IcrValue {
    /// The interrupt vector to raise at the destination.
    pub vector: Vector,
    /// Delivery mode.
    pub mode: DeliveryMode,
    /// Destination (v)CPU identifier (x2APIC physical destination).
    pub dest: u32,
}

impl IcrValue {
    /// A fixed-mode IPI of `vector` to destination CPU `dest`.
    pub fn fixed(vector: Vector, dest: u32) -> IcrValue {
        IcrValue {
            vector,
            mode: DeliveryMode::Fixed,
            dest,
        }
    }

    /// Encodes to the architectural 64-bit x2APIC ICR layout:
    /// destination in bits 63:32, delivery mode in bits 10:8, vector in
    /// bits 7:0.
    pub fn encode(self) -> u64 {
        (self.dest as u64) << 32 | ((self.mode as u64) << 8) | self.vector as u64
    }

    /// Decodes from the architectural layout.
    ///
    /// Unknown delivery modes decode as [`DeliveryMode::Fixed`]; real
    /// hardware reserves them, and the simulator never produces them.
    pub fn decode(raw: u64) -> IcrValue {
        let mode = match (raw >> 8) & 0x7 {
            4 => DeliveryMode::Nmi,
            5 => DeliveryMode::Init,
            6 => DeliveryMode::Startup,
            _ => DeliveryMode::Fixed,
        };
        IcrValue {
            vector: (raw & 0xFF) as u8,
            mode,
            dest: (raw >> 32) as u32,
        }
    }
}

impl fmt::Display for IcrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "IPI(vec={:#x}, {:?}, dest={})",
            self.vector, self.mode, self.dest
        )
    }
}

/// A posted-interrupt descriptor (PI descriptor).
///
/// Hardware (or a hypervisor emulating it) sets bits in `pir`, sets
/// `on`, and sends the notification vector to the CPU named by
/// `ndst`; the destination CPU then injects the pending vectors into
/// the running guest without a VM exit.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PiDescriptor {
    /// Posted-interrupt requests: a 256-bit vector bitmap.
    pub pir: [u64; 4],
    /// Outstanding notification: a notification has been sent and not
    /// yet processed.
    pub on: bool,
    /// Suppress notification: destination is not in guest mode, send no
    /// notification IPI (software will sync PIR on next entry).
    pub sn: bool,
    /// Notification destination: the physical CPU to notify.
    pub ndst: u32,
    /// Notification vector to use.
    pub nv: Vector,
}

impl PiDescriptor {
    /// Creates an empty descriptor targeting physical CPU `ndst` with
    /// notification vector `nv`.
    pub fn new(ndst: u32, nv: Vector) -> PiDescriptor {
        PiDescriptor {
            ndst,
            nv,
            ..PiDescriptor::default()
        }
    }

    /// Posts `vector`, returning `true` if a notification IPI should be
    /// sent (i.e. `on` transitioned from clear to set and `sn` is
    /// clear) — the same edge-triggered protocol hardware uses.
    pub fn post(&mut self, vector: Vector) -> bool {
        let idx = (vector / 64) as usize;
        self.pir[idx] |= 1u64 << (vector % 64);
        if self.on || self.sn {
            false
        } else {
            self.on = true;
            true
        }
    }

    /// Whether `vector` is pending.
    pub fn is_pending(&self, vector: Vector) -> bool {
        let idx = (vector / 64) as usize;
        self.pir[idx] & (1u64 << (vector % 64)) != 0
    }

    /// Drains all pending vectors in ascending order, clearing the
    /// descriptor, as virtual-interrupt delivery does on VM entry or on
    /// notification receipt.
    pub fn drain(&mut self) -> Vec<Vector> {
        let mut out = Vec::new();
        for (i, word) in self.pir.iter_mut().enumerate() {
            let mut w = *word;
            while w != 0 {
                let bit = w.trailing_zeros();
                out.push((i as u32 * 64 + bit) as u8);
                w &= w - 1;
            }
            *word = 0;
        }
        self.on = false;
        out
    }

    /// Whether any vector is pending.
    pub fn has_pending(&self) -> bool {
        self.pir.iter().any(|w| *w != 0)
    }
}

/// Per-vCPU LAPIC timer state (TSC-deadline mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LapicTimer {
    /// Armed deadline in guest-TSC units; `None` when disarmed.
    pub deadline: Option<u64>,
    /// Vector programmed in the LVT timer entry.
    pub vector: Vector,
    /// Whether the LVT entry is masked.
    pub masked: bool,
}

impl LapicTimer {
    /// Arms the timer for `deadline` (guest TSC units).
    pub fn arm(&mut self, deadline: u64) {
        self.deadline = if deadline == 0 { None } else { Some(deadline) };
    }

    /// Disarms the timer.
    pub fn disarm(&mut self) {
        self.deadline = None;
    }

    /// Whether the timer would have fired by guest time `now`.
    pub fn expired(&self, now: u64) -> bool {
        matches!(self.deadline, Some(d) if now >= d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn icr_round_trip() {
        for dest in [0u32, 1, 7, 1000] {
            for vec in [0x20u8, 0xEC, 0xFF] {
                let icr = IcrValue::fixed(vec, dest);
                assert_eq!(IcrValue::decode(icr.encode()), icr);
            }
        }
    }

    #[test]
    fn icr_modes_round_trip() {
        for mode in [
            DeliveryMode::Fixed,
            DeliveryMode::Nmi,
            DeliveryMode::Init,
            DeliveryMode::Startup,
        ] {
            let icr = IcrValue {
                vector: 0x40,
                mode,
                dest: 2,
            };
            assert_eq!(IcrValue::decode(icr.encode()).mode, mode);
        }
    }

    #[test]
    fn pi_post_is_edge_triggered() {
        let mut pi = PiDescriptor::new(1, 0xF2);
        assert!(pi.post(0x30), "first post should notify");
        assert!(!pi.post(0x31), "second post while ON should not notify");
        assert!(pi.is_pending(0x30));
        assert!(pi.is_pending(0x31));
        let drained = pi.drain();
        assert_eq!(drained, vec![0x30, 0x31]);
        assert!(!pi.has_pending());
        assert!(pi.post(0x32), "after drain, posting notifies again");
    }

    #[test]
    fn pi_suppressed_does_not_notify() {
        let mut pi = PiDescriptor::new(0, 0xF2);
        pi.sn = true;
        assert!(!pi.post(0x55));
        assert!(pi.is_pending(0x55));
    }

    #[test]
    fn timer_arm_expire() {
        let mut t = LapicTimer::default();
        t.arm(1_000);
        assert!(!t.expired(999));
        assert!(t.expired(1_000));
        t.disarm();
        assert!(!t.expired(u64::MAX));
    }

    #[test]
    fn timer_arm_zero_disarms() {
        let mut t = LapicTimer::default();
        t.arm(0);
        assert_eq!(t.deadline, None);
    }

    #[test]
    fn pi_drain_order_is_ascending_across_words() {
        let mut pi = PiDescriptor::new(0, 0xF2);
        pi.post(200);
        pi.post(3);
        pi.post(64);
        assert_eq!(pi.drain(), vec![3, 64, 200]);
    }
}

/// A 256-bit interrupt bitmap (IRR/ISR/TMR style).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VectorBitmap([u64; 4]);

impl VectorBitmap {
    /// Sets `vector`.
    pub fn set(&mut self, vector: Vector) {
        self.0[(vector / 64) as usize] |= 1u64 << (vector % 64);
    }

    /// Clears `vector`.
    pub fn clear(&mut self, vector: Vector) {
        self.0[(vector / 64) as usize] &= !(1u64 << (vector % 64));
    }

    /// Whether `vector` is set.
    pub fn get(&self, vector: Vector) -> bool {
        self.0[(vector / 64) as usize] & (1u64 << (vector % 64)) != 0
    }

    /// The highest set vector, if any (APIC priority order).
    pub fn highest(&self) -> Option<Vector> {
        for (i, w) in self.0.iter().enumerate().rev() {
            if *w != 0 {
                let bit = 63 - w.leading_zeros();
                return Some((i as u32 * 64 + bit) as u8);
            }
        }
        None
    }

    /// Whether no vector is set.
    pub fn is_empty(&self) -> bool {
        self.0.iter().all(|w| *w == 0)
    }
}

/// The local APIC's interrupt acceptance state machine: the IRR
/// (requested), ISR (in service), and the EOI protocol, with TPR-based
/// priority masking — what APICv virtualizes so that interrupt
/// acceptance and EOI never exit.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LapicState {
    irr: VectorBitmap,
    isr: VectorBitmap,
    /// Task-priority register (vectors with class <= TPR class are
    /// masked).
    pub tpr: u8,
    accepted: u64,
    eois: u64,
}

impl LapicState {
    /// Creates an idle LAPIC.
    pub fn new() -> LapicState {
        LapicState::default()
    }

    /// A vector arrives (from the PIR drain, an SGI, or an MSI): it is
    /// latched in the IRR.
    pub fn accept(&mut self, vector: Vector) {
        self.irr.set(vector);
        self.accepted += 1;
    }

    /// Whether an interrupt is deliverable right now: something in the
    /// IRR with priority above both the TPR class and any in-service
    /// vector.
    pub fn deliverable(&self) -> Option<Vector> {
        let v = self.irr.highest()?;
        if (v >> 4) <= (self.tpr >> 4) {
            return None;
        }
        if let Some(in_service) = self.isr.highest() {
            if v <= in_service {
                return None;
            }
        }
        Some(v)
    }

    /// The CPU takes the highest deliverable vector: IRR -> ISR.
    pub fn dispatch(&mut self) -> Option<Vector> {
        let v = self.deliverable()?;
        self.irr.clear(v);
        self.isr.set(v);
        Some(v)
    }

    /// End of interrupt: retire the highest in-service vector.
    /// Returns it, or `None` for a spurious EOI.
    pub fn eoi(&mut self) -> Option<Vector> {
        let v = self.isr.highest()?;
        self.isr.clear(v);
        self.eois += 1;
        Some(v)
    }

    /// Pending (requested, not yet dispatched) vector count indicator.
    pub fn has_pending(&self) -> bool {
        !self.irr.is_empty()
    }

    /// Whether any interrupt is in service.
    pub fn in_service(&self) -> bool {
        !self.isr.is_empty()
    }

    /// Lifetime accepted interrupts.
    pub fn accepted_count(&self) -> u64 {
        self.accepted
    }

    /// Lifetime EOIs.
    pub fn eoi_count(&self) -> u64 {
        self.eois
    }
}

#[cfg(test)]
mod lapic_tests {
    use super::*;

    #[test]
    fn accept_dispatch_eoi_cycle() {
        let mut l = LapicState::new();
        l.accept(0x40);
        assert!(l.has_pending());
        assert_eq!(l.dispatch(), Some(0x40));
        assert!(!l.has_pending());
        assert!(l.in_service());
        assert_eq!(l.eoi(), Some(0x40));
        assert!(!l.in_service());
        assert_eq!(l.accepted_count(), 1);
        assert_eq!(l.eoi_count(), 1);
    }

    #[test]
    fn priority_order_highest_first() {
        let mut l = LapicState::new();
        l.accept(0x31);
        l.accept(0xE0);
        l.accept(0x55);
        assert_eq!(l.dispatch(), Some(0xE0));
        assert_eq!(l.eoi(), Some(0xE0));
        assert_eq!(l.dispatch(), Some(0x55));
        assert_eq!(l.eoi(), Some(0x55));
        assert_eq!(l.dispatch(), Some(0x31));
    }

    #[test]
    fn lower_priority_blocked_while_in_service() {
        let mut l = LapicState::new();
        l.accept(0x80);
        l.dispatch().unwrap();
        l.accept(0x40);
        assert_eq!(l.deliverable(), None, "0x40 < in-service 0x80");
        // But a higher vector nests.
        l.accept(0xC0);
        assert_eq!(l.dispatch(), Some(0xC0));
        // EOI retires the highest in-service first.
        assert_eq!(l.eoi(), Some(0xC0));
        assert_eq!(l.eoi(), Some(0x80));
        assert_eq!(l.dispatch(), Some(0x40));
    }

    #[test]
    fn tpr_masks_low_classes() {
        let mut l = LapicState::new();
        l.tpr = 0x50;
        l.accept(0x4F);
        assert_eq!(l.deliverable(), None);
        l.accept(0x61);
        assert_eq!(l.dispatch(), Some(0x61));
        assert_eq!(l.eoi(), Some(0x61));
        l.tpr = 0;
        assert_eq!(l.dispatch(), Some(0x4F));
    }

    #[test]
    fn spurious_eoi_is_none() {
        assert_eq!(LapicState::new().eoi(), None);
    }

    #[test]
    fn bitmap_highest_across_words() {
        let mut b = VectorBitmap::default();
        assert_eq!(b.highest(), None);
        b.set(3);
        b.set(200);
        assert_eq!(b.highest(), Some(200));
        b.clear(200);
        assert_eq!(b.highest(), Some(3));
        assert!(!b.get(200));
        assert!(b.get(3));
    }
}
