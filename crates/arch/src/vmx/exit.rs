//! VM-exit reasons and qualifications.

use std::fmt;

/// The architectural reason a VM exit occurred.
///
/// Discriminants match the Intel SDM basic exit reason numbers so the
/// value stored in [`super::field::VM_EXIT_REASON`] round-trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u16)]
#[non_exhaustive]
pub enum ExitReason {
    /// Exception or NMI.
    ExceptionNmi = 0,
    /// External interrupt arrived while in guest mode.
    ExternalInterrupt = 1,
    /// `cpuid` executed.
    Cpuid = 10,
    /// `hlt` executed with HLT exiting enabled.
    Hlt = 12,
    /// `vmcall` (hypercall) executed.
    Vmcall = 18,
    /// `vmclear` executed by a guest hypervisor.
    Vmclear = 19,
    /// `vmlaunch` executed by a guest hypervisor.
    Vmlaunch = 20,
    /// `vmptrld` executed by a guest hypervisor.
    Vmptrld = 21,
    /// `vmptrst` executed by a guest hypervisor.
    Vmptrst = 22,
    /// `vmread` of a non-shadowed field by a guest hypervisor.
    Vmread = 23,
    /// `vmresume` executed by a guest hypervisor.
    Vmresume = 24,
    /// `vmwrite` of a non-shadowed field by a guest hypervisor.
    Vmwrite = 25,
    /// `vmxoff` executed.
    Vmxoff = 26,
    /// `vmxon` executed.
    Vmxon = 27,
    /// `rdmsr` of a trapped MSR.
    MsrRead = 31,
    /// `wrmsr` of a trapped MSR (LAPIC timer deadline, x2APIC ICR, ...).
    MsrWrite = 32,
    /// Access to the APIC page (non-APICv or unhandled register).
    ApicAccess = 44,
    /// EOI-induced exit (virtual-interrupt delivery bookkeeping).
    EoiInduced = 45,
    /// EPT violation: guest-physical access not mapped/permitted.
    EptViolation = 48,
    /// EPT misconfiguration: used for MMIO regions, as in KVM.
    EptMisconfig = 49,
    /// `invept` executed by a guest hypervisor.
    Invept = 50,
    /// VMX-preemption timer expired.
    PreemptionTimer = 52,
    /// `invvpid` executed by a guest hypervisor.
    Invvpid = 53,
    /// APIC write (APICv trap-like exit).
    ApicWrite = 56,
}

impl ExitReason {
    /// Whether this exit was caused by executing a VMX instruction —
    /// i.e. it can only have come from a (guest) hypervisor.
    pub fn is_vmx_instruction(self) -> bool {
        matches!(
            self,
            ExitReason::Vmclear
                | ExitReason::Vmlaunch
                | ExitReason::Vmptrld
                | ExitReason::Vmptrst
                | ExitReason::Vmread
                | ExitReason::Vmresume
                | ExitReason::Vmwrite
                | ExitReason::Vmxoff
                | ExitReason::Vmxon
                | ExitReason::Invept
                | ExitReason::Invvpid
        )
    }

    /// The architectural basic exit reason number.
    pub fn number(self) -> u16 {
        self as u16
    }

    /// Decodes a basic exit reason number.
    pub fn from_number(n: u16) -> Option<ExitReason> {
        use ExitReason::*;
        Some(match n {
            0 => ExceptionNmi,
            1 => ExternalInterrupt,
            10 => Cpuid,
            12 => Hlt,
            18 => Vmcall,
            19 => Vmclear,
            20 => Vmlaunch,
            21 => Vmptrld,
            22 => Vmptrst,
            23 => Vmread,
            24 => Vmresume,
            25 => Vmwrite,
            26 => Vmxoff,
            27 => Vmxon,
            31 => MsrRead,
            32 => MsrWrite,
            44 => ApicAccess,
            45 => EoiInduced,
            48 => EptViolation,
            49 => EptMisconfig,
            50 => Invept,
            52 => PreemptionTimer,
            53 => Invvpid,
            56 => ApicWrite,
            _ => return None,
        })
    }
}

impl fmt::Display for ExitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Reason-specific exit details, the analogue of the exit qualification
/// plus the auxiliary read-only fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExitQualification {
    /// The raw qualification value (meaning depends on the reason).
    pub raw: u64,
    /// Guest-physical address, for EPT and APIC-access exits.
    pub guest_physical: u64,
    /// MSR index, for MSR exits.
    pub msr: u32,
    /// MSR value being written, for `wrmsr` exits.
    pub msr_value: u64,
    /// VMCS field encoding, for `vmread`/`vmwrite` exits.
    pub vmcs_field: u32,
    /// Value being written, for `vmwrite` exits.
    pub vmcs_value: u64,
}

impl ExitQualification {
    /// A qualification for an MSR write exit.
    pub fn msr_write(msr: u32, value: u64) -> ExitQualification {
        ExitQualification {
            msr,
            msr_value: value,
            ..ExitQualification::default()
        }
    }

    /// A qualification for an MMIO (EPT misconfig) exit at `gpa`.
    pub fn mmio(gpa: u64, value: u64) -> ExitQualification {
        ExitQualification {
            guest_physical: gpa,
            msr_value: value,
            ..ExitQualification::default()
        }
    }

    /// A qualification for a `vmwrite` exit.
    pub fn vmwrite(field: u32, value: u64) -> ExitQualification {
        ExitQualification {
            vmcs_field: field,
            vmcs_value: value,
            ..ExitQualification::default()
        }
    }

    /// A qualification for a `vmread` exit.
    pub fn vmread(field: u32) -> ExitQualification {
        ExitQualification {
            vmcs_field: field,
            ..ExitQualification::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_reason_numbers_round_trip() {
        for n in 0..64u16 {
            if let Some(r) = ExitReason::from_number(n) {
                assert_eq!(r.number(), n);
            }
        }
    }

    #[test]
    fn vmx_instructions_classified() {
        assert!(ExitReason::Vmread.is_vmx_instruction());
        assert!(ExitReason::Vmresume.is_vmx_instruction());
        assert!(!ExitReason::Hlt.is_vmx_instruction());
        assert!(!ExitReason::Vmcall.is_vmx_instruction());
    }

    #[test]
    fn unknown_number_is_none() {
        assert_eq!(ExitReason::from_number(999), None);
        assert_eq!(ExitReason::from_number(2), None);
    }

    #[test]
    fn qualification_constructors() {
        let q = ExitQualification::msr_write(0x6E0, 42);
        assert_eq!(q.msr, 0x6E0);
        assert_eq!(q.msr_value, 42);
        let q = ExitQualification::mmio(0xFEE0_0000, 7);
        assert_eq!(q.guest_physical, 0xFEE0_0000);
    }
}
