//! VM-entry consistency predicates, modeled on Intel SDM Vol. 3
//! §26.2/§26.3 ("Checks on VMX Controls and Host-State / Guest-State
//! Areas"), restricted to the control combinations this simulator
//! actually models.
//!
//! Real hardware refuses a VM entry whose VMCS is internally
//! inconsistent; this simulator historically just *assumed*
//! consistency. These predicates make the assumption checkable: the
//! hypervisor crate calls [`validate_vmentry`] on every simulated VM
//! entry when consistency checking is enabled, and the `dvh-checker`
//! crate runs the same predicates over a whole VMCS hierarchy.

use super::{cap, ctrl, field, Vmcs};
use std::fmt;

/// The lowest interrupt vector usable for posted-interrupt
/// notification: vectors 0–31 are architecturally reserved for
/// exceptions.
pub const FIRST_VALID_NOTIFICATION_VECTOR: u64 = 32;

/// One VM-entry consistency violation found in a VMCS.
///
/// Reported with the field encoding whose value (or absence) broke the
/// rule; the caller adds the owning level and vCPU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmentryViolation {
    /// Encoding of the VMCS field at fault.
    pub field: u32,
    /// Stable, kebab-case rule identifier (one per invariant).
    pub rule: &'static str,
    /// Human-readable description of the inconsistency.
    pub detail: String,
}

impl fmt::Display for VmentryViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] field {:#06x}: {}",
            self.rule, self.field, self.detail
        )
    }
}

/// Validates the control/state combinations of one VMCS as hardware
/// would at VM entry.
///
/// `advertised_dvh_caps` is the DVH capability word the platform
/// advertises to this VMCS's owner (bits from [`cap`]); DVH execution
/// controls may only enable features the platform advertised.
///
/// Returns every violation found (empty = the entry is consistent).
pub fn validate_vmentry(vmcs: &Vmcs, advertised_dvh_caps: u64) -> Vec<VmentryViolation> {
    let mut v = Vec::new();
    let pin = vmcs.read(field::PIN_BASED_EXEC_CONTROLS);
    let cpu = vmcs.read(field::CPU_BASED_EXEC_CONTROLS);
    let secondary = vmcs.read(field::SECONDARY_EXEC_CONTROLS);

    // SDM 26.2.1.1: secondary controls may only be consulted when the
    // primary controls activate them.
    if secondary != 0 && cpu & ctrl::cpu::SECONDARY_CONTROLS == 0 {
        v.push(VmentryViolation {
            field: field::SECONDARY_EXEC_CONTROLS,
            rule: "secondary-controls-activated",
            detail: format!(
                "secondary execution controls {secondary:#x} set without the \
                 activate-secondary-controls bit in the primary controls"
            ),
        });
    }

    // SDM 26.2.1.1: posted interrupts require a valid (non-exception)
    // notification vector and a non-null descriptor address.
    if pin & ctrl::pin::POSTED_INTERRUPTS != 0 {
        let vector = vmcs.read(field::POSTED_INTR_NOTIFICATION_VECTOR);
        if !(FIRST_VALID_NOTIFICATION_VECTOR..=255).contains(&vector) {
            v.push(VmentryViolation {
                field: field::POSTED_INTR_NOTIFICATION_VECTOR,
                rule: "posted-interrupt-vector",
                detail: format!(
                    "posted-interrupt processing enabled with invalid \
                     notification vector {vector:#x} (must be 32..=255)"
                ),
            });
        }
        if vmcs.read(field::POSTED_INTR_DESC_ADDR) == 0 {
            v.push(VmentryViolation {
                field: field::POSTED_INTR_DESC_ADDR,
                rule: "posted-interrupt-descriptor",
                detail: "posted-interrupt processing enabled with a null \
                         descriptor address"
                    .into(),
            });
        }
    }

    // SDM 26.2.1.1 / 24.10: VMCS shadowing requires a usable link
    // pointer for the shadow VMCS.
    if secondary & ctrl::secondary::SHADOW_VMCS != 0 && vmcs.read(field::VMCS_LINK_POINTER) == 0 {
        v.push(VmentryViolation {
            field: field::VMCS_LINK_POINTER,
            rule: "shadow-vmcs-link-pointer",
            detail: "VMCS shadowing enabled with a null VMCS link pointer".into(),
        });
    }

    // SDM 26.2.1.1: EPT enabled requires a programmed EPT pointer —
    // in this simulator EPT exits are possible exactly when the
    // control is set, so a null EPTP means EPT faults would walk a
    // nonexistent hierarchy.
    if secondary & ctrl::secondary::ENABLE_EPT != 0 && vmcs.read(field::EPT_POINTER) == 0 {
        v.push(VmentryViolation {
            field: field::EPT_POINTER,
            rule: "ept-pointer",
            detail: "EPT enabled with a null EPT pointer".into(),
        });
    }

    // DVH (§3.2–3.3): a hypervisor may only enable virtual-hardware
    // features the platform advertised to it via IA32_VMX_DVH_CAP.
    // The enable bits are defined 1:1 with the capability bits.
    let dvh = vmcs.read(field::DVH_EXEC_CONTROLS);
    let unadvertised = dvh & !advertised_dvh_caps;
    if unadvertised != 0 {
        v.push(VmentryViolation {
            field: field::DVH_EXEC_CONTROLS,
            rule: "dvh-capability",
            detail: format!(
                "DVH execution controls enable unadvertised features \
                 (controls {dvh:#x}, advertised {advertised_dvh_caps:#x}, \
                 offending bits {unadvertised:#x})"
            ),
        });
    }
    if vmcs.read(field::DVH_VCIMTAR) != 0 && advertised_dvh_caps & cap::VCIMTAR == 0 {
        v.push(VmentryViolation {
            field: field::DVH_VCIMTAR,
            rule: "dvh-capability",
            detail: "VCIMT address register programmed without the VCIMTAR \
                     capability"
                .into(),
        });
    }

    v
}

#[cfg(test)]
mod tests {
    use super::*;

    fn consistent_vmcs() -> Vmcs {
        let mut m = Vmcs::new();
        m.set_bits(
            field::CPU_BASED_EXEC_CONTROLS,
            ctrl::cpu::SECONDARY_CONTROLS,
        );
        m.set_bits(field::SECONDARY_EXEC_CONTROLS, ctrl::secondary::ENABLE_EPT);
        m.write(field::EPT_POINTER, 0x5000);
        m.set_bits(field::PIN_BASED_EXEC_CONTROLS, ctrl::pin::POSTED_INTERRUPTS);
        m.write(field::POSTED_INTR_NOTIFICATION_VECTOR, 0xF2);
        m.write(field::POSTED_INTR_DESC_ADDR, 0x3000);
        m
    }

    #[test]
    fn consistent_vmcs_passes() {
        assert!(validate_vmentry(&consistent_vmcs(), cap::VIRTUAL_TIMER).is_empty());
    }

    #[test]
    fn empty_vmcs_passes() {
        // A cleared VMCS enables nothing, so nothing can be inconsistent.
        assert!(validate_vmentry(&Vmcs::new(), 0).is_empty());
    }

    #[test]
    fn null_pi_descriptor_flagged() {
        let mut m = consistent_vmcs();
        m.write(field::POSTED_INTR_DESC_ADDR, 0);
        let v = validate_vmentry(&m, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "posted-interrupt-descriptor");
        assert_eq!(v[0].field, field::POSTED_INTR_DESC_ADDR);
    }

    #[test]
    fn exception_range_notification_vector_flagged() {
        let mut m = consistent_vmcs();
        m.write(field::POSTED_INTR_NOTIFICATION_VECTOR, 14); // #PF
        let v = validate_vmentry(&m, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "posted-interrupt-vector");
    }

    #[test]
    fn shadow_without_link_pointer_flagged() {
        let mut m = consistent_vmcs();
        m.set_bits(field::SECONDARY_EXEC_CONTROLS, ctrl::secondary::SHADOW_VMCS);
        let v = validate_vmentry(&m, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "shadow-vmcs-link-pointer");
        m.write(field::VMCS_LINK_POINTER, 0x7000);
        assert!(validate_vmentry(&m, 0).is_empty());
    }

    #[test]
    fn ept_without_pointer_flagged() {
        let mut m = consistent_vmcs();
        m.write(field::EPT_POINTER, 0);
        let v = validate_vmentry(&m, 0);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "ept-pointer");
    }

    #[test]
    fn secondary_without_activation_flagged() {
        let mut m = consistent_vmcs();
        m.clear_bits(
            field::CPU_BASED_EXEC_CONTROLS,
            ctrl::cpu::SECONDARY_CONTROLS,
        );
        let v = validate_vmentry(&m, 0);
        assert_eq!(v[0].rule, "secondary-controls-activated");
    }

    #[test]
    fn unadvertised_dvh_controls_flagged() {
        let mut m = consistent_vmcs();
        m.set_bits(
            field::DVH_EXEC_CONTROLS,
            ctrl::dvh::VIRTUAL_TIMER | ctrl::dvh::VIRTUAL_IPI,
        );
        // Only the timer is advertised: the IPI bit is a violation.
        let v = validate_vmentry(&m, cap::VIRTUAL_TIMER);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "dvh-capability");
        assert!(v[0].detail.contains("offending"));
        // Advertising both fixes it.
        assert!(validate_vmentry(&m, cap::VIRTUAL_TIMER | cap::VIRTUAL_IPI).is_empty());
    }

    #[test]
    fn vcimtar_requires_capability() {
        let mut m = consistent_vmcs();
        m.write(field::DVH_VCIMTAR, 0x9000);
        let v = validate_vmentry(&m, cap::VIRTUAL_TIMER | cap::VIRTUAL_IPI);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "dvh-capability");
        assert!(validate_vmentry(&m, cap::VCIMTAR).is_empty());
    }

    #[test]
    fn violations_display_rule_and_field() {
        let mut m = consistent_vmcs();
        m.write(field::POSTED_INTR_DESC_ADDR, 0);
        let s = validate_vmentry(&m, 0)[0].to_string();
        assert!(s.contains("posted-interrupt-descriptor"));
        assert!(s.contains("0x2016"));
    }
}
