//! Perfect-index slot table for VMCS field encodings.
//!
//! The simulator's innermost loop is `Vmcs::read`/`Vmcs::write`: every
//! simulated `vmread`/`vmwrite`, every world-switch program step, and
//! every vmcs12→vmcs02 merge goes through them. Storing fields in a
//! `BTreeMap<u32, u64>` puts an ordered-map lookup on that path. This
//! module instead assigns every *known* field encoding (all constants in
//! [`super::field`]) a dense slot index at compile time, so `Vmcs` can
//! keep field values in a flat array and `ShadowFieldSet` can answer
//! coverage queries with a single bitset test.
//!
//! The mapping is a direct-index table: encodings span `0x0000..=0x6C16`,
//! so a byte table of that size (built in a `const` context) maps any
//! encoding to its slot in O(1) with no hashing and no branches beyond a
//! bounds check. Unknown encodings (there are none in-tree, but the
//! `Vmcs` API accepts arbitrary `u32`s) fall back to an overflow map in
//! `Vmcs` itself.

use super::field as f;

/// Every known VMCS field encoding, sorted ascending. The position of an
/// encoding in this array is its *slot*.
///
/// Sorted order matters: it lets `Vmcs::iter` yield fields in encoding
/// order (the `BTreeMap` contract the rest of the tree relies on) by a
/// simple linear walk merged with the overflow map.
pub const SLOT_ENCODINGS: [u32; NUM_SLOTS] = [
    f::VPID,
    f::POSTED_INTR_NOTIFICATION_VECTOR,
    f::GUEST_CS_SELECTOR,
    f::MSR_BITMAP_ADDR,
    f::TSC_OFFSET,
    f::VIRTUAL_APIC_PAGE_ADDR,
    f::POSTED_INTR_DESC_ADDR,
    f::EPT_POINTER,
    f::VMREAD_BITMAP_ADDR,
    f::VMWRITE_BITMAP_ADDR,
    f::GUEST_PHYSICAL_ADDRESS,
    f::VMCS_LINK_POINTER,
    f::DVH_EXEC_CONTROLS,
    f::DVH_VTIMER_DEADLINE,
    f::DVH_VTIMER_VECTOR,
    f::DVH_VCIMTAR,
    f::PIN_BASED_EXEC_CONTROLS,
    f::CPU_BASED_EXEC_CONTROLS,
    f::EXCEPTION_BITMAP,
    f::VM_EXIT_CONTROLS,
    f::VM_ENTRY_CONTROLS,
    f::VM_ENTRY_INTR_INFO,
    f::VM_ENTRY_INSTRUCTION_LEN,
    f::SECONDARY_EXEC_CONTROLS,
    f::VM_INSTRUCTION_ERROR,
    f::VM_EXIT_REASON,
    f::VM_EXIT_INTR_INFO,
    f::VM_EXIT_INTR_ERROR_CODE,
    f::IDT_VECTORING_INFO,
    f::IDT_VECTORING_ERROR_CODE,
    f::VM_EXIT_INSTRUCTION_LEN,
    f::VM_EXIT_INSTRUCTION_INFO,
    f::GUEST_INTERRUPTIBILITY,
    f::GUEST_ACTIVITY_STATE,
    f::PREEMPTION_TIMER_VALUE,
    f::EXIT_QUALIFICATION,
    f::GUEST_LINEAR_ADDRESS,
    f::GUEST_CR3,
    f::GUEST_RSP,
    f::GUEST_RIP,
    f::GUEST_RFLAGS,
    f::HOST_RIP,
];

/// Number of known field encodings. Must stay ≤ 64 so a slot set fits in
/// a single `u64` bitset (`Vmcs::written`, `ShadowFieldSet` coverage).
pub const NUM_SLOTS: usize = 42;

/// Sentinel in [`SLOT_TABLE`] for "encoding has no slot".
const NO_SLOT: u8 = 0xFF;

/// Direct-index table: `SLOT_TABLE[encoding] == slot`, or [`NO_SLOT`].
const TABLE_SIZE: usize = f::HOST_RIP as usize + 1;

static SLOT_TABLE: [u8; TABLE_SIZE] = build_slot_table();

const fn build_slot_table() -> [u8; TABLE_SIZE] {
    let mut table = [NO_SLOT; TABLE_SIZE];
    let mut slot = 0;
    while slot < NUM_SLOTS {
        let enc = SLOT_ENCODINGS[slot] as usize;
        assert!(
            table[enc] == NO_SLOT,
            "duplicate encoding in SLOT_ENCODINGS"
        );
        if slot > 0 {
            assert!(
                SLOT_ENCODINGS[slot - 1] < SLOT_ENCODINGS[slot],
                "SLOT_ENCODINGS must be sorted ascending"
            );
        }
        table[enc] = slot as u8;
        slot += 1;
    }
    table
}

/// Maps a field encoding to its dense slot, or `None` for encodings not
/// known to the architecture model.
#[inline(always)]
pub fn slot_of(field: u32) -> Option<usize> {
    if (field as usize) < TABLE_SIZE {
        let s = SLOT_TABLE[field as usize];
        if s != NO_SLOT {
            return Some(s as usize);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_encoding_round_trips_through_its_slot() {
        for (slot, enc) in SLOT_ENCODINGS.iter().enumerate() {
            assert_eq!(slot_of(*enc), Some(slot), "encoding {enc:#x}");
        }
    }

    #[test]
    fn unknown_encodings_have_no_slot() {
        assert_eq!(slot_of(0x0004), None);
        assert_eq!(slot_of(0x7000), None);
        assert_eq!(slot_of(u32::MAX), None);
    }

    #[test]
    fn slot_count_fits_a_u64_bitset() {
        const { assert!(NUM_SLOTS <= 64) };
        assert_eq!(SLOT_ENCODINGS.len(), NUM_SLOTS);
    }

    #[test]
    fn merge_and_dirty_field_lists_are_fully_dense() {
        // The hot vmcs12 merge paths must never hit the overflow map.
        for enc in f::VMCS12_MERGE_FIELDS.iter().chain(f::VMCS12_DIRTY_FIELDS) {
            assert!(slot_of(*enc).is_some(), "{enc:#x} missing from slot table");
        }
    }
}
