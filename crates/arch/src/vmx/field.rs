//! VMCS field encodings.
//!
//! Encodings follow the Intel SDM numbering scheme so the hypervisor
//! code reads like real KVM. The DVH fields use encodings from an
//! architecturally unused range, as a real hardware extension would.

// ---- 16-bit control fields ---------------------------------------------

/// Posted-interrupt notification vector.
pub const POSTED_INTR_NOTIFICATION_VECTOR: u32 = 0x0002;
/// Virtual-processor identifier.
pub const VPID: u32 = 0x0000;

// ---- 16-bit guest-state fields ------------------------------------------

/// Guest CS selector.
pub const GUEST_CS_SELECTOR: u32 = 0x0802;

// ---- 64-bit control fields ----------------------------------------------

/// Address of the MSR bitmaps.
pub const MSR_BITMAP_ADDR: u32 = 0x2004;
/// TSC offset added to guest `rdtsc`.
pub const TSC_OFFSET: u32 = 0x2010;
/// Virtual-APIC page address (APICv).
pub const VIRTUAL_APIC_PAGE_ADDR: u32 = 0x2012;
/// Posted-interrupt descriptor address.
pub const POSTED_INTR_DESC_ADDR: u32 = 0x2016;
/// EPT pointer.
pub const EPT_POINTER: u32 = 0x201A;
/// VMCS link pointer (shadow VMCS).
pub const VMCS_LINK_POINTER: u32 = 0x2800;
/// Address of the vmread shadow bitmap.
pub const VMREAD_BITMAP_ADDR: u32 = 0x2026;
/// Address of the vmwrite shadow bitmap.
pub const VMWRITE_BITMAP_ADDR: u32 = 0x2028;

// ---- DVH 64-bit control fields (virtual hardware, §3.2–3.3) -------------

/// DVH execution controls; bits in [`crate::vmx::ctrl::dvh`].
pub const DVH_EXEC_CONTROLS: u32 = 0x2FF0;
/// Virtual LAPIC timer deadline (TSC units, guest time base).
pub const DVH_VTIMER_DEADLINE: u32 = 0x2FF2;
/// Virtual LAPIC timer interrupt vector programmed by the nested VM.
pub const DVH_VTIMER_VECTOR: u32 = 0x2FF4;
/// Virtual CPU interrupt mapping table address register (VCIMTAR, §3.3).
pub const DVH_VCIMTAR: u32 = 0x2FF6;

// ---- 32-bit control fields ----------------------------------------------

/// Pin-based VM-execution controls.
pub const PIN_BASED_EXEC_CONTROLS: u32 = 0x4000;
/// Primary processor-based VM-execution controls.
pub const CPU_BASED_EXEC_CONTROLS: u32 = 0x4002;
/// Exception bitmap.
pub const EXCEPTION_BITMAP: u32 = 0x4004;
/// VM-exit controls.
pub const VM_EXIT_CONTROLS: u32 = 0x400C;
/// VM-entry controls.
pub const VM_ENTRY_CONTROLS: u32 = 0x4012;
/// VM-entry interruption-information field (event injection).
pub const VM_ENTRY_INTR_INFO: u32 = 0x4016;
/// VM-entry instruction length.
pub const VM_ENTRY_INSTRUCTION_LEN: u32 = 0x401A;
/// Secondary processor-based VM-execution controls.
pub const SECONDARY_EXEC_CONTROLS: u32 = 0x401E;
/// VMX-preemption timer value.
pub const PREEMPTION_TIMER_VALUE: u32 = 0x482E;

// ---- 32-bit read-only data fields ----------------------------------------

/// VM-instruction error.
pub const VM_INSTRUCTION_ERROR: u32 = 0x4400;
/// Exit reason.
pub const VM_EXIT_REASON: u32 = 0x4402;
/// VM-exit interruption information.
pub const VM_EXIT_INTR_INFO: u32 = 0x4404;
/// VM-exit interruption error code.
pub const VM_EXIT_INTR_ERROR_CODE: u32 = 0x4406;
/// IDT-vectoring information.
pub const IDT_VECTORING_INFO: u32 = 0x4408;
/// IDT-vectoring error code.
pub const IDT_VECTORING_ERROR_CODE: u32 = 0x440A;
/// VM-exit instruction length.
pub const VM_EXIT_INSTRUCTION_LEN: u32 = 0x440C;
/// VM-exit instruction information.
pub const VM_EXIT_INSTRUCTION_INFO: u32 = 0x440E;

// ---- 32-bit guest-state fields --------------------------------------------

/// Guest interruptibility state.
pub const GUEST_INTERRUPTIBILITY: u32 = 0x4824;
/// Guest activity state (active/HLT/shutdown).
pub const GUEST_ACTIVITY_STATE: u32 = 0x4826;

// ---- natural-width read-only data fields -----------------------------------

/// Exit qualification.
pub const EXIT_QUALIFICATION: u32 = 0x6400;
/// Guest linear address for the exit.
pub const GUEST_LINEAR_ADDRESS: u32 = 0x640A;
/// Guest physical address for EPT exits.
pub const GUEST_PHYSICAL_ADDRESS: u32 = 0x2400;

// ---- natural-width guest-state fields ---------------------------------------

/// Guest RIP.
pub const GUEST_RIP: u32 = 0x681E;
/// Guest RSP.
pub const GUEST_RSP: u32 = 0x681C;
/// Guest RFLAGS.
pub const GUEST_RFLAGS: u32 = 0x6820;
/// Guest CR3.
pub const GUEST_CR3: u32 = 0x6802;

// ---- natural-width host-state fields -----------------------------------------

/// Host RIP (where the hypervisor resumes on exit).
pub const HOST_RIP: u32 = 0x6C16;

/// The full list of fields KVM copies when merging vmcs12 into vmcs02
/// on a nested VM entry (a representative subset; used for merge cost
/// accounting and state copying).
pub const VMCS12_MERGE_FIELDS: &[u32] = &[
    PIN_BASED_EXEC_CONTROLS,
    CPU_BASED_EXEC_CONTROLS,
    SECONDARY_EXEC_CONTROLS,
    EXCEPTION_BITMAP,
    VM_EXIT_CONTROLS,
    VM_ENTRY_CONTROLS,
    VM_ENTRY_INTR_INFO,
    VM_ENTRY_INSTRUCTION_LEN,
    TSC_OFFSET,
    EPT_POINTER,
    MSR_BITMAP_ADDR,
    VIRTUAL_APIC_PAGE_ADDR,
    POSTED_INTR_DESC_ADDR,
    POSTED_INTR_NOTIFICATION_VECTOR,
    GUEST_RIP,
    GUEST_RSP,
    GUEST_RFLAGS,
    GUEST_CR3,
    GUEST_CS_SELECTOR,
    GUEST_INTERRUPTIBILITY,
    GUEST_ACTIVITY_STATE,
    VPID,
    DVH_EXEC_CONTROLS,
    DVH_VTIMER_DEADLINE,
    DVH_VTIMER_VECTOR,
    DVH_VCIMTAR,
];

/// The subset of vmcs12 fields KVM actually flushes to vmcs02 on a
/// typical nested entry once dirty-field tracking has settled (the
/// full [`VMCS12_MERGE_FIELDS`] copy only happens on the first launch).
pub const VMCS12_DIRTY_FIELDS: &[u32] = &[
    GUEST_RIP,
    GUEST_RSP,
    GUEST_INTERRUPTIBILITY,
    VM_ENTRY_INTR_INFO,
    VM_ENTRY_INSTRUCTION_LEN,
    CPU_BASED_EXEC_CONTROLS,
    TSC_OFFSET,
    EPT_POINTER,
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn merge_fields_are_unique() {
        let set: BTreeSet<u32> = VMCS12_MERGE_FIELDS.iter().copied().collect();
        assert_eq!(set.len(), VMCS12_MERGE_FIELDS.len());
    }

    #[test]
    fn dirty_fields_are_a_subset_of_merge_fields() {
        for f in VMCS12_DIRTY_FIELDS {
            assert!(VMCS12_MERGE_FIELDS.contains(f), "{f:#x} not in merge set");
        }
    }

    #[test]
    fn dvh_fields_do_not_collide_with_architectural_ones() {
        for dvh in [
            DVH_EXEC_CONTROLS,
            DVH_VTIMER_DEADLINE,
            DVH_VTIMER_VECTOR,
            DVH_VCIMTAR,
        ] {
            assert!(
                (0x2FF0..0x3000).contains(&dvh),
                "DVH field {dvh:#x} outside reserved range"
            );
        }
    }
}
