//! The VMX-like virtualization architecture: VMCS, controls, exit
//! reasons, and capability registers.
//!
//! This module models single-level architectural support for
//! virtualization, as on real x86: only the software running in root mode
//! (the host hypervisor, L0) can execute VMX instructions natively; any
//! guest hypervisor's VMX instructions trap to L0 (Section 2 of the
//! paper). The structures here are deliberately close to the Intel SDM
//! layout — field encodings, control bits, exit reason numbers — so the
//! hypervisor crate reads like real KVM code.
//!
//! The DVH paper adds *virtual hardware* discoverable through new
//! capability bits ([`cap`]) and enabled through new execution-control
//! bits ([`ctrl::dvh`]); those are defined here too, because from the
//! guest hypervisor's point of view they are simply "additional hardware
//! capabilities provided by the underlying system" (Section 3).

mod exit;
pub mod field;
pub mod slots;
pub mod validate;

pub use exit::{ExitQualification, ExitReason};
pub use slots::{slot_of, NUM_SLOTS, SLOT_ENCODINGS};

use std::collections::BTreeMap;
use std::fmt;

/// VMX execution-control and capability bit definitions.
pub mod ctrl {
    /// Pin-based VM-execution controls (field [`super::field::PIN_BASED_EXEC_CONTROLS`]).
    pub mod pin {
        /// External interrupts cause VM exits.
        pub const EXT_INTR_EXITING: u64 = 1 << 0;
        /// Process posted interrupts on notification vector receipt.
        pub const POSTED_INTERRUPTS: u64 = 1 << 7;
        /// VMX-preemption timer counts down in guest mode.
        pub const PREEMPTION_TIMER: u64 = 1 << 6;
    }

    /// Primary processor-based VM-execution controls
    /// (field [`super::field::CPU_BASED_EXEC_CONTROLS`]).
    pub mod cpu {
        /// `hlt` causes a VM exit. Virtual idle (§3.4) works by guest
        /// hypervisors *clearing* this bit for their nested VMs.
        pub const HLT_EXITING: u64 = 1 << 7;
        /// Use the TSC offset in the VMCS for guest `rdtsc`.
        pub const USE_TSC_OFFSETTING: u64 = 1 << 3;
        /// `rdmsr`/`wrmsr` consult the MSR bitmaps instead of always exiting.
        pub const USE_MSR_BITMAPS: u64 = 1 << 28;
        /// Activate secondary processor-based controls.
        pub const SECONDARY_CONTROLS: u64 = 1 << 31;
        /// VM exit on interrupt-window open.
        pub const INTR_WINDOW_EXITING: u64 = 1 << 2;
    }

    /// Secondary processor-based VM-execution controls
    /// (field [`super::field::SECONDARY_EXEC_CONTROLS`]).
    pub mod secondary {
        /// Enable extended page tables.
        pub const ENABLE_EPT: u64 = 1 << 1;
        /// Virtualize APIC accesses (APICv).
        pub const VIRTUALIZE_APIC: u64 = 1 << 0;
        /// APIC-register virtualization (APICv).
        pub const APIC_REGISTER_VIRT: u64 = 1 << 8;
        /// Virtual-interrupt delivery (APICv).
        pub const VIRTUAL_INTR_DELIVERY: u64 = 1 << 9;
        /// VMCS shadowing: guest `vmread`/`vmwrite` of shadowed fields
        /// do not exit.
        pub const SHADOW_VMCS: u64 = 1 << 14;
        /// Enable VM functions.
        pub const ENABLE_VMFUNC: u64 = 1 << 13;
    }

    /// DVH execution controls (field [`super::field::DVH_EXEC_CONTROLS`]).
    ///
    /// These are the per-VM enable bits the paper adds: "we add one bit
    /// in the VMX capability register and one in the VM execution control
    /// register to enable the guest hypervisor to discover and
    /// enable/disable the virtual timer functionality" (§3.2), and
    /// likewise for virtual IPIs (§3.3).
    pub mod dvh {
        /// Enable the virtual LAPIC timer for this VM's guest.
        pub const VIRTUAL_TIMER: u64 = 1 << 0;
        /// Enable the virtual ICR / virtual IPIs for this VM's guest.
        pub const VIRTUAL_IPI: u64 = 1 << 1;
    }
}

/// DVH virtual-hardware capability bits, advertised in the
/// [`crate::msr::IA32_VMX_DVH_CAP`] capability MSR.
pub mod cap {
    /// The platform provides per-vCPU virtual LAPIC timers (§3.2).
    pub const VIRTUAL_TIMER: u64 = 1 << 0;
    /// The platform provides virtual ICRs and the VCIMT (§3.3).
    pub const VIRTUAL_IPI: u64 = 1 << 1;
    /// The platform honours the VCIMT address register.
    pub const VCIMTAR: u64 = 1 << 2;
}

/// A Virtual Machine Control Structure.
///
/// Stores 16/32/64-bit fields keyed by their architectural encodings
/// (see [`field`]). A `Vmcs` may also act as a *shadow* VMCS: when a
/// guest hypervisor has VMCS shadowing enabled, `vmread`/`vmwrite` of
/// fields present in the shadow bitmap operate on the linked shadow
/// without causing VM exits.
///
/// # Example
///
/// ```
/// use dvh_arch::vmx::{Vmcs, field};
///
/// let mut vmcs = Vmcs::new();
/// vmcs.write(field::TSC_OFFSET, 0x1000);
/// vmcs.set_bits(field::CPU_BASED_EXEC_CONTROLS, dvh_arch::vmx::ctrl::cpu::HLT_EXITING);
/// assert!(vmcs.has_bits(field::CPU_BASED_EXEC_CONTROLS, 1 << 7));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Vmcs {
    /// Values of the known fields, indexed by [`slots::slot_of`]. A slot
    /// whose `written` bit is clear always holds 0, so `read` never has
    /// to consult the bitset.
    values: [u64; NUM_SLOTS],
    /// Bit `i` set ⇔ slot `i` has been written since the last `clear`.
    /// Tracked so `len`/`iter` keep the "fields ever written" semantics
    /// of the previous map-based representation.
    written: u64,
    /// Fields with encodings outside the compile-time slot table. Empty
    /// for everything the simulator itself does; exists so the public
    /// API still accepts arbitrary encodings.
    overflow: BTreeMap<u32, u64>,
    launched: bool,
}

impl Default for Vmcs {
    fn default() -> Vmcs {
        Vmcs {
            values: [0; NUM_SLOTS],
            written: 0,
            overflow: BTreeMap::new(),
            launched: false,
        }
    }
}

impl Vmcs {
    /// Creates an empty (cleared) VMCS.
    pub fn new() -> Vmcs {
        Vmcs::default()
    }

    /// Reads a field, returning 0 for never-written fields (cleared
    /// VMCS state is architecturally zero in this model).
    #[inline(always)]
    pub fn read(&self, field: u32) -> u64 {
        match slot_of(field) {
            Some(slot) => self.values[slot],
            None => self.overflow.get(&field).copied().unwrap_or(0),
        }
    }

    /// Writes a field.
    #[inline(always)]
    pub fn write(&mut self, field: u32, value: u64) {
        match slot_of(field) {
            Some(slot) => {
                self.values[slot] = value;
                self.written |= 1 << slot;
            }
            None => {
                self.overflow.insert(field, value);
            }
        }
    }

    /// Sets `bits` in a control field (read-modify-write OR).
    pub fn set_bits(&mut self, field: u32, bits: u64) {
        let v = self.read(field);
        self.write(field, v | bits);
    }

    /// Clears `bits` in a control field.
    pub fn clear_bits(&mut self, field: u32, bits: u64) {
        let v = self.read(field);
        self.write(field, v & !bits);
    }

    /// Whether all of `bits` are set in `field`.
    #[inline(always)]
    pub fn has_bits(&self, field: u32, bits: u64) -> bool {
        self.read(field) & bits == bits
    }

    /// Whether this VMCS has been launched (vmlaunch vs. vmresume).
    pub fn launched(&self) -> bool {
        self.launched
    }

    /// Marks the VMCS launched.
    pub fn set_launched(&mut self, launched: bool) {
        self.launched = launched;
    }

    /// Clears all state, as `vmclear` would.
    pub fn clear(&mut self) {
        self.values = [0; NUM_SLOTS];
        self.written = 0;
        self.overflow.clear();
        self.launched = false;
    }

    /// Number of distinct fields ever written. Used by tests and by the
    /// vmcs02 merge cost accounting.
    pub fn len(&self) -> usize {
        self.written.count_ones() as usize + self.overflow.len()
    }

    /// Whether no field has been written.
    pub fn is_empty(&self) -> bool {
        self.written == 0 && self.overflow.is_empty()
    }

    /// Iterates over `(field, value)` pairs in encoding order.
    ///
    /// `SLOT_ENCODINGS` is sorted ascending, so merging the written-slot
    /// walk with the (sorted) overflow map preserves the encoding-order
    /// contract of the old `BTreeMap` representation.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        let dense = SLOT_ENCODINGS
            .iter()
            .enumerate()
            .filter(move |(slot, _)| self.written & (1 << slot) != 0)
            .map(move |(slot, enc)| (*enc, self.values[slot]));
        let overflow = self.overflow.iter().map(|(k, v)| (*k, *v));
        MergeByEncoding {
            a: dense.peekable(),
            b: overflow.peekable(),
        }
    }
}

/// Merges two encoding-sorted `(field, value)` streams, preserving order.
struct MergeByEncoding<A: Iterator, B: Iterator> {
    a: std::iter::Peekable<A>,
    b: std::iter::Peekable<B>,
}

impl<A, B> Iterator for MergeByEncoding<A, B>
where
    A: Iterator<Item = (u32, u64)>,
    B: Iterator<Item = (u32, u64)>,
{
    type Item = (u32, u64);

    fn next(&mut self) -> Option<(u32, u64)> {
        match (self.a.peek(), self.b.peek()) {
            (Some((ka, _)), Some((kb, _))) => {
                if ka <= kb {
                    self.a.next()
                } else {
                    self.b.next()
                }
            }
            (Some(_), None) => self.a.next(),
            (None, _) => self.b.next(),
        }
    }
}

impl fmt::Display for Vmcs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Vmcs({} fields, {})",
            self.len(),
            if self.launched { "launched" } else { "clear" }
        )
    }
}

/// The set of VMCS fields covered by hardware VMCS shadowing.
///
/// When a guest hypervisor runs with
/// [`ctrl::secondary::SHADOW_VMCS`] enabled, reads and writes of these
/// fields are satisfied from the shadow VMCS without a VM exit. The set
/// mirrors the fields KVM puts in its shadow bitmaps: the hot fields of
/// the exit-handling path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShadowFieldSet {
    /// Bit `i` set ⇔ a `vmread` of `SLOT_ENCODINGS[i]` is shadowed.
    read_bits: u64,
    /// Bit `i` set ⇔ a `vmwrite` of `SLOT_ENCODINGS[i]` is shadowed.
    write_bits: u64,
}

impl ShadowFieldSet {
    /// Builds a set from explicit field lists. Every field must be a
    /// known encoding (shadow bitmaps only make sense for architectural
    /// fields); unknown encodings panic.
    pub fn from_fields(read: &[u32], write: &[u32]) -> ShadowFieldSet {
        let bits = |fields: &[u32]| {
            fields.iter().fold(0u64, |acc, f| {
                let slot =
                    slot_of(*f).unwrap_or_else(|| panic!("shadow field {f:#x} has no dense slot"));
                acc | (1 << slot)
            })
        };
        ShadowFieldSet {
            read_bits: bits(read),
            write_bits: bits(write),
        }
    }

    /// The KVM-like default shadow field set.
    pub fn kvm_default() -> ShadowFieldSet {
        use field as f;
        ShadowFieldSet::from_fields(
            &[
                f::VM_EXIT_REASON,
                f::EXIT_QUALIFICATION,
                f::GUEST_RIP,
                f::GUEST_RSP,
                f::VM_EXIT_INSTRUCTION_LEN,
                f::VM_EXIT_INTR_INFO,
                f::VM_EXIT_INTR_ERROR_CODE,
                f::IDT_VECTORING_INFO,
                f::IDT_VECTORING_ERROR_CODE,
                f::GUEST_PHYSICAL_ADDRESS,
                f::GUEST_LINEAR_ADDRESS,
                f::GUEST_INTERRUPTIBILITY,
                f::VM_INSTRUCTION_ERROR,
                f::GUEST_CS_SELECTOR,
            ],
            &[
                f::GUEST_RIP,
                f::GUEST_RSP,
                f::GUEST_INTERRUPTIBILITY,
                f::VM_ENTRY_INTR_INFO,
                f::CPU_BASED_EXEC_CONTROLS,
                f::VM_ENTRY_INSTRUCTION_LEN,
            ],
        )
    }

    /// An empty set: every `vmread`/`vmwrite` traps. This is the
    /// situation of L2+ hypervisors, for which shadowing is not
    /// virtualized (as on real KVM), and is the root cause of the
    /// further ~23x cost blow-up from L2 to L3 in Table 3.
    pub fn empty() -> ShadowFieldSet {
        ShadowFieldSet {
            read_bits: 0,
            write_bits: 0,
        }
    }

    /// Whether a guest `vmread` of `field` is shadowed (no exit).
    #[inline(always)]
    pub fn covers_read(&self, field: u32) -> bool {
        match slot_of(field) {
            Some(slot) => self.read_bits & (1 << slot) != 0,
            None => false,
        }
    }

    /// Whether a guest `vmwrite` of `field` is shadowed (no exit).
    #[inline(always)]
    pub fn covers_write(&self, field: u32) -> bool {
        match slot_of(field) {
            Some(slot) => self.write_bits & (1 << slot) != 0,
            None => false,
        }
    }

    /// Number of shadowed readable fields.
    pub fn read_len(&self) -> usize {
        self.read_bits.count_ones() as usize
    }

    /// Number of shadowed writable fields.
    pub fn write_len(&self) -> usize {
        self.write_bits.count_ones() as usize
    }
}

impl Default for ShadowFieldSet {
    fn default() -> ShadowFieldSet {
        ShadowFieldSet::kvm_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vmcs_read_unwritten_is_zero() {
        let vmcs = Vmcs::new();
        assert_eq!(vmcs.read(field::GUEST_RIP), 0);
    }

    #[test]
    fn vmcs_write_then_read() {
        let mut vmcs = Vmcs::new();
        vmcs.write(field::GUEST_RIP, 0xdead_beef);
        assert_eq!(vmcs.read(field::GUEST_RIP), 0xdead_beef);
    }

    #[test]
    fn vmcs_bit_ops() {
        let mut vmcs = Vmcs::new();
        vmcs.set_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING);
        vmcs.set_bits(
            field::CPU_BASED_EXEC_CONTROLS,
            ctrl::cpu::USE_TSC_OFFSETTING,
        );
        assert!(vmcs.has_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING));
        vmcs.clear_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING);
        assert!(!vmcs.has_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING));
        assert!(vmcs.has_bits(
            field::CPU_BASED_EXEC_CONTROLS,
            ctrl::cpu::USE_TSC_OFFSETTING
        ));
    }

    #[test]
    fn vmcs_clear_resets_everything() {
        let mut vmcs = Vmcs::new();
        vmcs.write(field::TSC_OFFSET, 42);
        vmcs.set_launched(true);
        vmcs.clear();
        assert!(vmcs.is_empty());
        assert!(!vmcs.launched());
    }

    #[test]
    fn shadow_set_covers_hot_read_fields() {
        let s = ShadowFieldSet::kvm_default();
        assert!(s.covers_read(field::VM_EXIT_REASON));
        assert!(s.covers_read(field::EXIT_QUALIFICATION));
        assert!(s.covers_write(field::GUEST_RIP));
        // TSC offset is not in the hot shadow set: writing it traps.
        assert!(!s.covers_write(field::TSC_OFFSET));
    }

    #[test]
    fn empty_shadow_set_covers_nothing() {
        let s = ShadowFieldSet::empty();
        assert!(!s.covers_read(field::VM_EXIT_REASON));
        assert!(!s.covers_write(field::GUEST_RIP));
    }

    #[test]
    fn dvh_control_bits_are_distinct() {
        assert_ne!(ctrl::dvh::VIRTUAL_TIMER, ctrl::dvh::VIRTUAL_IPI);
        assert_eq!(cap::VIRTUAL_TIMER & cap::VIRTUAL_IPI, 0);
    }

    #[test]
    fn vmcs_display_nonempty() {
        assert!(!Vmcs::new().to_string().is_empty());
    }

    #[test]
    fn vmcs_unknown_encoding_goes_through_overflow() {
        let mut vmcs = Vmcs::new();
        assert_eq!(slots::slot_of(0x9999), None);
        vmcs.write(0x9999, 77);
        assert_eq!(vmcs.read(0x9999), 77);
        assert_eq!(vmcs.len(), 1);
        vmcs.clear();
        assert_eq!(vmcs.read(0x9999), 0);
        assert!(vmcs.is_empty());
    }

    #[test]
    fn vmcs_write_zero_still_counts_as_written() {
        let mut vmcs = Vmcs::new();
        vmcs.write(field::GUEST_RIP, 0);
        assert_eq!(vmcs.len(), 1);
        assert!(!vmcs.is_empty());
    }

    #[test]
    fn vmcs_iter_is_in_encoding_order_across_dense_and_overflow() {
        let mut vmcs = Vmcs::new();
        vmcs.write(field::GUEST_RIP, 1); // 0x681E, dense
        vmcs.write(0x4401, 2); // unknown, overflow
        vmcs.write(field::VPID, 3); // 0x0000, dense
        vmcs.write(0x9999, 4); // unknown, overflow
        let got: Vec<(u32, u64)> = vmcs.iter().collect();
        assert_eq!(
            got,
            vec![
                (field::VPID, 3),
                (0x4401, 2),
                (field::GUEST_RIP, 1),
                (0x9999, 4),
            ]
        );
    }

    #[test]
    fn shadow_set_lens_match_kvm_defaults() {
        let s = ShadowFieldSet::kvm_default();
        assert_eq!(s.read_len(), 14);
        assert_eq!(s.write_len(), 6);
        assert_eq!(ShadowFieldSet::empty().read_len(), 0);
    }
}
