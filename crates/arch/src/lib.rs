//! # dvh-arch
//!
//! An x86/VMX-like architecture model for the DVH nested-virtualization
//! simulator — the hardware substrate on which the DVH reproduction of
//! *"Optimizing Nested Virtualization Performance Using Direct Virtual
//! Hardware"* (Lim & Nieh, ASPLOS 2020) is built.
//!
//! The model captures the parts of the architecture that determine nested
//! virtualization performance:
//!
//! * [`vmx`] — the Virtual Machine Control Structure (VMCS), execution and
//!   exit controls, exit reasons, and the VMX capability registers,
//!   including the three DVH capability/control bits the paper adds
//!   (virtual timers, virtual IPIs, and the VCIMT address register).
//! * [`apic`] — the local APIC register file (x2APIC layout), the interrupt
//!   command register (ICR), the TSC-deadline timer, and posted-interrupt
//!   descriptors.
//! * [`costs`] — a calibrated cycle-cost model for hardware transitions and
//!   privileged operations. Single-level costs are calibrated against the
//!   paper's Table 3; all nested costs in the simulator are *emergent* from
//!   trap-and-emulate recursion, not table lookups.
//! * [`cpu`] — physical CPUs with per-CPU cycle clocks and idle state.
//!
//! The crate is `#![forbid(unsafe_code)]`, deterministic, and free of
//! wall-clock time: all time is simulated [`Cycles`].
//!
//! ## Example
//!
//! ```
//! use dvh_arch::{costs::CostModel, vmx::Vmcs, vmx::field};
//!
//! let costs = CostModel::calibrated();
//! let mut vmcs = Vmcs::new();
//! vmcs.write(field::GUEST_RIP, 0x1000);
//! assert_eq!(vmcs.read(field::GUEST_RIP), 0x1000);
//! assert!(costs.vmexit_to_root.as_u64() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apic;
pub mod arm;
pub mod costs;
pub mod cpu;
pub mod cycles;
pub mod idle;
pub mod msr;
pub mod vmx;

pub use costs::CostModel;
pub use cpu::{CpuId, PhysCpu};
pub use cycles::Cycles;
