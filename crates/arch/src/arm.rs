//! An ARM64-flavoured architecture personality.
//!
//! The paper notes (§3) that "DVH is essentially a system design
//! concept, which can be applied to and realized on different
//! architectures with single-level virtualization hardware support",
//! and that the authors "directly used DVH mechanisms such as
//! virtual-passthrough on other architectures such as ARM", with ARM
//! DVH-VP results omitted for space. This module supplies the ARM side
//! of that story: the architectural structures whose x86 counterparts
//! drive the simulator, with the correspondence made explicit:
//!
//! | x86 | ARM64 |
//! |---|---|
//! | VMCS | EL2 system-register context (no in-memory VMCS — and no VMCS-shadowing analogue before NEVE) |
//! | `vmcall` | `hvc` |
//! | `hlt` | `wfi` |
//! | LAPIC TSC-deadline timer | generic timer (`CNTV_CVAL_EL0` / `CNTV_CTL_EL0`) |
//! | ICR write (IPI) | `ICC_SGI1R_EL1` write (SGI) |
//! | APICv posted interrupts | GICv4 direct vLPI injection |
//! | EPT violation | stage-2 data abort |
//!
//! The exception-class encodings follow the ARMv8 ESR_EL2 EC field so
//! the mapping onto the simulator's exit reasons is checkable.

use crate::vmx::ExitReason;
use std::fmt;

/// ESR_EL2 exception classes relevant to virtualization (EC field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum ExceptionClass {
    /// Trapped WFI/WFE (EC=0b000001).
    WfiWfe = 0x01,
    /// HVC instruction from AArch64 (EC=0b010110).
    Hvc64 = 0x16,
    /// Trapped MSR/MRS system-register access (EC=0b011000).
    SysReg = 0x18,
    /// Instruction abort from a lower EL (EC=0b100000).
    InstAbortLower = 0x20,
    /// Data abort from a lower EL — stage-2 faults and MMIO
    /// emulation (EC=0b100100).
    DataAbortLower = 0x24,
}

impl ExceptionClass {
    /// The raw EC field value.
    pub fn ec(self) -> u8 {
        self as u8
    }

    /// Maps the ARM exception class to the simulator's
    /// architecture-neutral exit reason, preserving semantics:
    /// MMIO-flavoured data aborts map to `EptMisconfig`, translation
    /// faults to `EptViolation`.
    pub fn to_exit_reason(self, is_mmio: bool) -> ExitReason {
        match self {
            ExceptionClass::WfiWfe => ExitReason::Hlt,
            ExceptionClass::Hvc64 => ExitReason::Vmcall,
            ExceptionClass::SysReg => ExitReason::MsrWrite,
            ExceptionClass::InstAbortLower => ExitReason::EptViolation,
            ExceptionClass::DataAbortLower => {
                if is_mmio {
                    ExitReason::EptMisconfig
                } else {
                    ExitReason::EptViolation
                }
            }
        }
    }
}

impl fmt::Display for ExceptionClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// System-register encodings (op0, op1, CRn, CRm, op2) for the
/// registers the simulator traps, packed like an ISS would be.
pub mod sysreg {
    /// Packs an (op0, op1, CRn, CRm, op2) system-register encoding the
    /// way ESR_EL2.ISS reports trapped MSR/MRS accesses.
    pub const fn encode(op0: u32, op1: u32, crn: u32, crm: u32, op2: u32) -> u32 {
        (op0 << 20) | (op1 << 14) | (crn << 10) | (crm << 1) | (op2 << 17)
    }

    /// Virtual timer compare value (op0=3, op1=3, CRn=14, CRm=3, op2=2).
    pub const CNTV_CVAL_EL0: u32 = encode(3, 3, 14, 3, 2);
    /// Virtual timer control (op0=3, op1=3, CRn=14, CRm=3, op2=1).
    pub const CNTV_CTL_EL0: u32 = encode(3, 3, 14, 3, 1);
    /// SGI generation register, the ARM "ICR" (op0=3, op1=0, CRn=12,
    /// CRm=11, op2=5).
    pub const ICC_SGI1R_EL1: u32 = encode(3, 0, 12, 11, 5);
}

/// A decoded `ICC_SGI1R_EL1` write: ARM's software-generated
/// interrupt, the IPI of the GIC world.
///
/// The encoding follows the ARM GICv3 layout: the SGI INTID (0..15)
/// in bits 27:24, the target list in bits 15:0, the affinity-1 cluster
/// in bits 23:16.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SgiValue {
    /// SGI interrupt ID (0..=15).
    pub intid: u8,
    /// Target CPU within the cluster (bit per CPU, we model one
    /// target).
    pub target: u32,
}

impl SgiValue {
    /// Creates an SGI of `intid` to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `intid > 15` (architectural limit for SGIs).
    pub fn new(intid: u8, target: u32) -> SgiValue {
        assert!(intid <= 15, "SGI INTIDs are 0..=15");
        SgiValue { intid, target }
    }

    /// Encodes to the ICC_SGI1R_EL1 layout.
    pub fn encode(self) -> u64 {
        ((self.intid as u64) << 24)
            | (1u64 << (self.target % 16))
            | ((self.target as u64 / 16) << 16)
    }

    /// Decodes from the ICC_SGI1R_EL1 layout.
    pub fn decode(raw: u64) -> SgiValue {
        let intid = ((raw >> 24) & 0xF) as u8;
        let list = raw & 0xFFFF;
        let cluster = ((raw >> 16) & 0xFF) as u32;
        let first = list.trailing_zeros().min(15);
        SgiValue {
            intid,
            target: cluster * 16 + first,
        }
    }
}

impl fmt::Display for SgiValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SGI{} -> cpu{}", self.intid, self.target)
    }
}

/// The ARM generic (virtual) timer: `CNTV_CVAL_EL0` compare value plus
/// the `CNTV_CTL_EL0` enable/mask bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GenericTimer {
    /// Compare value (counter ticks).
    pub cval: u64,
    /// Control: bit 0 enable, bit 1 imask.
    pub ctl: u64,
}

impl GenericTimer {
    /// CTL enable bit.
    pub const CTL_ENABLE: u64 = 1 << 0;
    /// CTL interrupt-mask bit.
    pub const CTL_IMASK: u64 = 1 << 1;

    /// Arms the timer for `cval`.
    pub fn arm(&mut self, cval: u64) {
        self.cval = cval;
        self.ctl = Self::CTL_ENABLE;
    }

    /// Disarms (disables) the timer.
    pub fn disarm(&mut self) {
        self.ctl &= !Self::CTL_ENABLE;
    }

    /// Whether the timer would assert its interrupt at counter `now`.
    pub fn fires(&self, now: u64) -> bool {
        self.ctl & Self::CTL_ENABLE != 0 && self.ctl & Self::CTL_IMASK == 0 && now >= self.cval
    }
}

/// A GICv4 direct-injection descriptor: the ARM analogue of the x86
/// posted-interrupt descriptor — a pending table plus a doorbell that
/// lets devices (and, under DVH, the host hypervisor) make a vLPI
/// pending in a running vCPU without any trap.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VlpiPending {
    /// Pending vLPI INTIDs (sparse; LPIs start at 8192).
    pending: Vec<u32>,
    /// Doorbell target physical CPU.
    pub doorbell_cpu: u32,
}

impl VlpiPending {
    /// Creates a table with the doorbell aimed at `cpu`.
    pub fn new(cpu: u32) -> VlpiPending {
        VlpiPending {
            pending: Vec::new(),
            doorbell_cpu: cpu,
        }
    }

    /// Makes `intid` pending; returns whether the doorbell should ring
    /// (first pending interrupt).
    pub fn post(&mut self, intid: u32) -> bool {
        let was_empty = self.pending.is_empty();
        if !self.pending.contains(&intid) {
            self.pending.push(intid);
        }
        was_empty
    }

    /// Drains pending vLPIs in posting order.
    pub fn drain(&mut self) -> Vec<u32> {
        std::mem::take(&mut self.pending)
    }

    /// Whether anything is pending.
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exception_classes_map_to_neutral_reasons() {
        assert_eq!(
            ExceptionClass::Hvc64.to_exit_reason(false),
            ExitReason::Vmcall
        );
        assert_eq!(
            ExceptionClass::WfiWfe.to_exit_reason(false),
            ExitReason::Hlt
        );
        assert_eq!(
            ExceptionClass::DataAbortLower.to_exit_reason(true),
            ExitReason::EptMisconfig
        );
        assert_eq!(
            ExceptionClass::DataAbortLower.to_exit_reason(false),
            ExitReason::EptViolation
        );
        assert_eq!(
            ExceptionClass::SysReg.to_exit_reason(false),
            ExitReason::MsrWrite
        );
    }

    #[test]
    fn sgi_round_trip() {
        for intid in [0u8, 7, 15] {
            for target in [0u32, 3, 17] {
                let sgi = SgiValue::new(intid, target);
                assert_eq!(SgiValue::decode(sgi.encode()), sgi, "{sgi}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "SGI INTIDs")]
    fn sgi_intid_range_enforced() {
        SgiValue::new(16, 0);
    }

    #[test]
    fn generic_timer_semantics() {
        let mut t = GenericTimer::default();
        assert!(!t.fires(u64::MAX));
        t.arm(1_000);
        assert!(!t.fires(999));
        assert!(t.fires(1_000));
        t.ctl |= GenericTimer::CTL_IMASK;
        assert!(!t.fires(2_000), "masked timers do not fire");
        t.disarm();
        t.ctl &= !GenericTimer::CTL_IMASK;
        assert!(!t.fires(u64::MAX));
    }

    #[test]
    fn vlpi_doorbell_rings_once() {
        let mut v = VlpiPending::new(2);
        assert!(v.post(8193));
        assert!(!v.post(8194));
        assert!(!v.post(8193), "duplicates don't re-ring");
        assert_eq!(v.drain(), vec![8193, 8194]);
        assert!(!v.has_pending());
        assert!(v.post(8200), "doorbell re-arms after drain");
    }

    #[test]
    fn exception_class_numbers_match_the_arm_arm() {
        assert_eq!(ExceptionClass::WfiWfe.ec(), 0x01);
        assert_eq!(ExceptionClass::Hvc64.ec(), 0x16);
        assert_eq!(ExceptionClass::SysReg.ec(), 0x18);
        assert_eq!(ExceptionClass::DataAbortLower.ec(), 0x24);
    }
}

/// The GICv3 CPU-interface acceptance model: per-INTID priorities and
/// group enables in the (re)distributor, the priority mask and running
/// priority in the CPU interface — the ARM counterpart of
/// [`crate::apic::LapicState`].
///
/// Like APICv on x86, hardware virtualization of the CPU interface
/// (the GIC's list registers / vGIC) lets a guest acknowledge and EOI
/// interrupts without trapping; what still traps on ARM is the
/// *generation* side — SGIs via `ICC_SGI1R_EL1` — which is exactly
/// where DVH's virtual IPIs help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GicCpuInterface {
    /// Pending INTIDs with their priorities (lower value = higher
    /// priority, per GIC convention).
    pending: Vec<(u32, u8)>,
    /// Active (acknowledged, not yet EOI'd) INTIDs, in ack order.
    active: Vec<(u32, u8)>,
    /// Priority mask (ICC_PMR): only priorities strictly below it are
    /// signalled.
    pub pmr: u8,
    /// Group enable (ICC_IGRPEN1).
    pub group_enabled: bool,
}

impl Default for GicCpuInterface {
    fn default() -> GicCpuInterface {
        GicCpuInterface {
            pending: Vec::new(),
            active: Vec::new(),
            pmr: 0xFF, // reset: nothing masked
            group_enabled: true,
        }
    }
}

impl GicCpuInterface {
    /// Creates a reset-state CPU interface.
    pub fn new() -> GicCpuInterface {
        GicCpuInterface::default()
    }

    /// A (re)distributor forwards `intid` at `priority`.
    pub fn pend(&mut self, intid: u32, priority: u8) {
        if !self.pending.iter().any(|(i, _)| *i == intid) {
            self.pending.push((intid, priority));
        }
    }

    /// The highest-priority pending interrupt that may be signalled
    /// (group enabled, priority below PMR and below the running
    /// priority).
    pub fn signalled(&self) -> Option<u32> {
        if !self.group_enabled {
            return None;
        }
        let running = self.active.iter().map(|(_, p)| *p).min().unwrap_or(0xFF);
        self.pending
            .iter()
            .filter(|(_, p)| *p < self.pmr && *p < running)
            .min_by_key(|(i, p)| (*p, *i))
            .map(|(i, _)| *i)
    }

    /// `ICC_IAR1_EL1` read: acknowledge the signalled interrupt,
    /// moving it pending → active. Returns 1023 (the spurious INTID)
    /// when nothing is signallable.
    pub fn acknowledge(&mut self) -> u32 {
        match self.signalled() {
            Some(intid) => {
                let pos = self
                    .pending
                    .iter()
                    .position(|(i, _)| *i == intid)
                    .expect("signalled is pending");
                let e = self.pending.remove(pos);
                self.active.push(e);
                intid
            }
            None => 1023,
        }
    }

    /// `ICC_EOIR1_EL1` write: retire the most recent activation of
    /// `intid`. Returns `false` for an INTID that is not active (a
    /// software bug real hardware tolerates but flags).
    pub fn eoi(&mut self, intid: u32) -> bool {
        match self.active.iter().rposition(|(i, _)| *i == intid) {
            Some(pos) => {
                self.active.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Whether anything is pending (signallable or masked).
    pub fn has_pending(&self) -> bool {
        !self.pending.is_empty()
    }

    /// Whether any interrupt is active.
    pub fn in_service(&self) -> bool {
        !self.active.is_empty()
    }
}

#[cfg(test)]
mod gic_tests {
    use super::*;

    #[test]
    fn ack_eoi_cycle() {
        let mut g = GicCpuInterface::new();
        g.pend(32, 0x80);
        assert_eq!(g.acknowledge(), 32);
        assert!(g.in_service());
        assert!(g.eoi(32));
        assert!(!g.in_service());
        assert_eq!(g.acknowledge(), 1023, "nothing left: spurious");
    }

    #[test]
    fn lower_priority_value_wins() {
        let mut g = GicCpuInterface::new();
        g.pend(40, 0xA0);
        g.pend(41, 0x20); // higher priority (lower value)
        assert_eq!(g.acknowledge(), 41);
        // 40 is blocked by the running priority until EOI.
        assert_eq!(g.acknowledge(), 1023);
        g.eoi(41);
        assert_eq!(g.acknowledge(), 40);
    }

    #[test]
    fn pmr_masks() {
        let mut g = GicCpuInterface::new();
        g.pmr = 0x40;
        g.pend(50, 0x80);
        assert_eq!(g.acknowledge(), 1023, "0x80 not below PMR 0x40");
        g.pmr = 0xFF;
        assert_eq!(g.acknowledge(), 50);
    }

    #[test]
    fn group_disable_blocks_everything() {
        let mut g = GicCpuInterface::new();
        g.group_enabled = false;
        g.pend(60, 0x10);
        assert_eq!(g.acknowledge(), 1023);
        assert!(g.has_pending());
    }

    #[test]
    fn duplicate_pends_coalesce() {
        let mut g = GicCpuInterface::new();
        g.pend(70, 0x50);
        g.pend(70, 0x50);
        assert_eq!(g.acknowledge(), 70);
        assert_eq!(g.acknowledge(), 1023);
    }

    #[test]
    fn eoi_of_inactive_intid_is_flagged() {
        let mut g = GicCpuInterface::new();
        assert!(!g.eoi(99));
    }

    #[test]
    fn nested_interrupts_retire_in_any_order() {
        let mut g = GicCpuInterface::new();
        g.pend(80, 0x80);
        assert_eq!(g.acknowledge(), 80);
        g.pend(81, 0x20);
        assert_eq!(g.acknowledge(), 81); // preempts
        assert!(g.eoi(80), "out-of-order EOI tolerated");
        assert!(g.eoi(81));
        assert!(!g.in_service());
    }
}
