//! The calibrated cycle-cost model.
//!
//! Every hardware action in the simulator charges cycles through a
//! [`CostModel`]. The philosophy, per DESIGN.md:
//!
//! * **Single-level costs are calibrated** so that the paper's Table 3
//!   "VM" column is reproduced (Hypercall 1,575 cycles, DevNotify 4,984,
//!   ProgramTimer 2,005, SendIPI 3,273 on the paper's Xeon Silver 4114).
//! * **All nested costs are emergent.** The simulator never looks up an
//!   "L2 hypercall cost"; it runs the guest hypervisor's exit handler and
//!   charges each privileged operation, which recursively traps.
//!
//! The cost model is a plain struct of public fields so experiments can
//! perturb individual costs (e.g. for ablations of faster hardware).

use crate::cycles::Cycles;

/// Cycle costs for every hardware-level action in the simulator.
///
/// Construct with [`CostModel::calibrated`] for the paper-calibrated
/// values, or [`CostModel::uniform`] for a degenerate model useful in
/// unit tests (every action costs the same, so tests can count actions
/// by dividing total time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    // ---- Hardware virtualization transitions -------------------------
    /// A VM exit: guest mode to root mode (hypervisor) transition,
    /// including the hardware state save/load.
    pub vmexit_to_root: Cycles,
    /// A VM entry: root mode to guest mode transition.
    pub vmentry_from_root: Cycles,

    // ---- VMX instructions executed in root mode (natively) -----------
    /// A native `vmread` of one VMCS field.
    pub vmread: Cycles,
    /// A native `vmwrite` of one VMCS field.
    pub vmwrite: Cycles,
    /// A native `vmptrld` (switch current VMCS).
    pub vmptrld: Cycles,
    /// A native `vmclear`.
    pub vmclear: Cycles,
    /// A native `invept`/`invvpid` TLB shootdown of combined mappings.
    pub invept: Cycles,

    // ---- VMX instructions executed in guest mode with VMCS shadowing --
    /// A `vmread` of a *shadowed* field from a guest hypervisor: handled
    /// by hardware against the shadow VMCS without an exit.
    pub shadow_vmread: Cycles,
    /// A `vmwrite` of a shadowed field from a guest hypervisor.
    pub shadow_vmwrite: Cycles,

    // ---- Ordinary privileged instructions -----------------------------
    /// A native `rdmsr`.
    pub rdmsr: Cycles,
    /// A native `wrmsr`.
    pub wrmsr: Cycles,
    /// Reading the TSC (`rdtsc`), never trapped in our configurations.
    pub rdtsc: Cycles,
    /// Executing `hlt` natively (entering C1).
    pub hlt_enter: Cycles,
    /// Latency from a wake event to the first instruction after `hlt`.
    pub idle_wake: Cycles,

    // ---- Interrupt hardware -------------------------------------------
    /// Issuing a physical IPI / posted-interrupt notification from one
    /// CPU, as seen by the sender (ICR write + interconnect injection).
    pub ipi_send: Cycles,
    /// Receiver-side cost of accepting a posted interrupt into a running
    /// guest without a VM exit (APICv virtual-interrupt delivery).
    pub posted_intr_delivery: Cycles,
    /// Receiver-side cost of taking an ordinary external interrupt in
    /// root mode (IDT vectoring etc.).
    pub external_intr: Cycles,
    /// Cost of injecting an event through the VMCS entry-interruption
    /// field (charged to the injecting hypervisor as part of entry).
    pub event_injection: Cycles,

    // ---- Memory-system costs -------------------------------------------
    /// One memory reference during a hardware page-table or descriptor
    /// walk that misses the caches (EPT walks, VCIMT lookups, PI
    /// descriptor updates from another CPU).
    pub walk_mem_ref: Cycles,
    /// Copying one byte between buffers (amortized, streaming).
    ///
    /// Set so that a ~1500-byte packet copy costs ~500 cycles, roughly a
    /// memcpy at 2.2 GHz with cache-resident data.
    pub copy_per_byte_milli: Cycles,

    // ---- Software path lengths (host hypervisor, run natively) ---------
    /// L0 dispatch from hardware exit to the reason-specific handler.
    pub l0_dispatch: Cycles,
    /// Handling a hypercall that does no work (the paper's Hypercall
    /// microbenchmark body).
    pub hypercall_body: Cycles,
    /// x86 instruction fetch + decode for MMIO emulation.
    pub mmio_decode: Cycles,
    /// Resolving an MMIO GPA to a registered device region (bus lookup).
    pub mmio_bus_lookup: Cycles,
    /// Signalling an ioeventfd/doorbell to a vhost-style backend thread.
    pub ioeventfd_signal: Cycles,
    /// Programming a high-resolution software timer (hrtimer start).
    pub hrtimer_program: Cycles,
    /// Software bookkeeping to emulate an ICR write (decode, find dest).
    pub icr_emulate: Cycles,
    /// Updating a posted-interrupt descriptor (locked or cross-core op).
    pub pi_desc_update: Cycles,
    /// Scheduler cost of blocking a vCPU that executed HLT.
    pub vcpu_block: Cycles,
    /// Scheduler cost of waking a blocked vCPU (before VM entry).
    pub vcpu_kick: Cycles,

    // ---- Nested-virtualization software path lengths --------------------
    /// L0 work to decide whether an exit from a nested VM is handled
    /// locally or reflected to the guest hypervisor (checking vmcs12
    /// controls), excluding the vmreads themselves.
    pub nested_exit_triage: Cycles,
    /// L0 work to construct the synthetic exit state in vmcs12 when
    /// reflecting an exit to a guest hypervisor.
    pub nested_reflect_build: Cycles,
    /// L0 work to merge vmcs12 into vmcs02 when emulating a guest
    /// hypervisor's vmlaunch/vmresume (the "prepare vmcs02" path),
    /// excluding the individual vmwrites.
    pub vmcs02_merge: Cycles,
    /// L0 software emulation body for a trapped VMX instruction from a
    /// guest hypervisor: locating and validating vmcs12, keeping the
    /// shadow/ordinary VMCS caches coherent, and the cache pollution
    /// the paper identifies as a first-order exit cost (§2, citing
    /// SplitX).
    pub vmx_insn_emulate: Cycles,
}

impl CostModel {
    /// The paper-calibrated cost model.
    ///
    /// Values are chosen so that the simulator reproduces the "VM"
    /// column of the paper's Table 3 and so that nested columns emerge
    /// within a few percent of the published values. See
    /// `EXPERIMENTS.md` for the paper-vs-measured table.
    pub fn calibrated() -> CostModel {
        CostModel {
            vmexit_to_root: Cycles::new(700),
            vmentry_from_root: Cycles::new(600),

            vmread: Cycles::new(25),
            vmwrite: Cycles::new(25),
            vmptrld: Cycles::new(130),
            vmclear: Cycles::new(100),
            invept: Cycles::new(250),

            shadow_vmread: Cycles::new(45),
            shadow_vmwrite: Cycles::new(55),

            rdmsr: Cycles::new(50),
            wrmsr: Cycles::new(60),
            rdtsc: Cycles::new(20),
            hlt_enter: Cycles::new(150),
            idle_wake: Cycles::new(450),

            ipi_send: Cycles::new(500),
            posted_intr_delivery: Cycles::new(400),
            external_intr: Cycles::new(300),
            event_injection: Cycles::new(120),

            walk_mem_ref: Cycles::new(360),
            copy_per_byte_milli: Cycles::new(330), // 0.33 cycles/byte

            l0_dispatch: Cycles::new(100),
            hypercall_body: Cycles::new(45),
            mmio_decode: Cycles::new(2_490),
            mmio_bus_lookup: Cycles::new(350),
            ioeventfd_signal: Cycles::new(620),
            hrtimer_program: Cycles::new(430),
            icr_emulate: Cycles::new(160),
            pi_desc_update: Cycles::new(140),
            vcpu_block: Cycles::new(220),
            vcpu_kick: Cycles::new(260),

            nested_exit_triage: Cycles::new(260),
            nested_reflect_build: Cycles::new(420),
            vmcs02_merge: Cycles::new(900),
            vmx_insn_emulate: Cycles::new(1_690),
        }
    }

    /// An ARM64-flavoured cost model (VHE-era KVM/ARM, GICv3/v4).
    ///
    /// Transitions are somewhat cheaper than x86 (no VMCS to reload on
    /// the world-switch path with VHE), system-register accesses are
    /// cheap natively, but there is **no VMCS-shadowing analogue**: a
    /// guest hypervisor's system-register context accesses always trap
    /// (the problem NEVE, the authors' earlier work, addresses in
    /// hardware). Paired with [`crate::vmx::ShadowFieldSet::empty`]
    /// semantics via the ARM hypervisor profile.
    pub fn calibrated_arm() -> CostModel {
        let mut m = CostModel::calibrated();
        m.vmexit_to_root = Cycles::new(550);
        m.vmentry_from_root = Cycles::new(450);
        m.vmread = Cycles::new(15); // mrs
        m.vmwrite = Cycles::new(15); // msr
        m.vmptrld = Cycles::new(90); // vttbr/context switch piece
        m.hlt_enter = Cycles::new(120); // wfi
        m.ipi_send = Cycles::new(450); // ICC_SGI1R + GIC propagation
        m.posted_intr_delivery = Cycles::new(350); // GICv4 vLPI
        m.mmio_decode = Cycles::new(1_600); // ISS-assisted decode is cheaper
        m.vmx_insn_emulate = Cycles::new(1_400); // sysreg emulation for L1
        m
    }

    /// A degenerate model in which every action costs exactly `c`
    /// cycles. Useful in unit tests that want to count actions.
    pub fn uniform(c: u64) -> CostModel {
        let c = Cycles::new(c);
        CostModel {
            vmexit_to_root: c,
            vmentry_from_root: c,
            vmread: c,
            vmwrite: c,
            vmptrld: c,
            vmclear: c,
            invept: c,
            shadow_vmread: c,
            shadow_vmwrite: c,
            rdmsr: c,
            wrmsr: c,
            rdtsc: c,
            hlt_enter: c,
            idle_wake: c,
            ipi_send: c,
            posted_intr_delivery: c,
            external_intr: c,
            event_injection: c,
            walk_mem_ref: c,
            copy_per_byte_milli: c,
            l0_dispatch: c,
            hypercall_body: c,
            mmio_decode: c,
            mmio_bus_lookup: c,
            ioeventfd_signal: c,
            hrtimer_program: c,
            icr_emulate: c,
            pi_desc_update: c,
            vcpu_block: c,
            vcpu_kick: c,
            vmx_insn_emulate: c,
            nested_exit_triage: c,
            nested_reflect_build: c,
            vmcs02_merge: c,
        }
    }

    /// Cost of copying `bytes` bytes between buffers.
    ///
    /// ```
    /// use dvh_arch::costs::CostModel;
    /// let m = CostModel::calibrated();
    /// // A full-size Ethernet frame costs on the order of 500 cycles.
    /// let c = m.copy_cost(1500).as_u64();
    /// assert!(c > 300 && c < 700, "copy cost {c}");
    /// ```
    pub fn copy_cost(&self, bytes: u64) -> Cycles {
        Cycles::new(self.copy_per_byte_milli.as_u64().saturating_mul(bytes) / 1000)
    }

    /// Cost of a hardware two-dimensional (nested) EPT walk with
    /// `levels_a` x `levels_b` page-table dimensions.
    ///
    /// A nested walk over two 4-level trees touches up to
    /// `(4+1)*(4+1) - 1 = 24` memory references; this is what makes the
    /// paper's DevNotify-with-DVH cost noticeably more at L2 than L1
    /// (Section 4, Table 3 discussion).
    pub fn nested_walk_cost(&self, levels_a: u64, levels_b: u64) -> Cycles {
        let refs = (levels_a + 1) * (levels_b + 1) - 1;
        self.walk_mem_ref * refs
    }
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibrated_matches_table3_vm_hypercall_skeleton() {
        // VM-level hypercall: exit + dispatch + 2 vmreads + body +
        // 1 vmwrite (advance RIP) + entry should land at 1,575 exactly;
        // the full check lives in the hypervisor crate's tests, but the
        // raw transition budget must leave room for the handler.
        let m = CostModel::calibrated();
        let transitions = m.vmexit_to_root + m.vmentry_from_root;
        assert!(transitions.as_u64() < 1_575);
        assert!(transitions.as_u64() > 1_000);
    }

    #[test]
    fn uniform_counts_actions() {
        let m = CostModel::uniform(10);
        assert_eq!(m.vmread, m.vmcs02_merge);
        assert_eq!(m.vmread.as_u64(), 10);
    }

    #[test]
    fn nested_walk_is_24_refs_for_4x4() {
        let m = CostModel::calibrated();
        assert_eq!(m.nested_walk_cost(4, 4), m.walk_mem_ref * 24);
    }

    #[test]
    fn copy_cost_scales_linearly() {
        let m = CostModel::calibrated();
        let one = m.copy_cost(1_000);
        let two = m.copy_cost(2_000);
        assert_eq!(two, one * 2);
    }

    #[test]
    fn default_is_calibrated() {
        assert_eq!(CostModel::default(), CostModel::calibrated());
    }
}
