//! VM-entry consistency checking: the runtime half of `dvh-checker`.
//!
//! Real hardware validates a VMCS at every VM entry (Intel SDM Vol. 3
//! §26) and refuses inconsistent entries. The simulator models entries
//! as cycle charges, so the equivalent is a *check hook*: every path
//! that simulates a VM entry funnels through [`World::l0_vmentry`] (for
//! L0's native entries) or [`World::on_vmentry`] (for emulated nested
//! entries), and when checking is enabled each entered VMCS is run
//! through [`dvh_arch::vmx::validate::validate_vmentry`].
//!
//! Checking is off by default and costs one branch per entry. Enable
//! it with [`World::enable_vmentry_checks`]; collected findings are
//! drained with [`World::take_vmentry_findings`].

use crate::world::World;
use dvh_arch::vmx::validate::{validate_vmentry, VmentryViolation};
use std::fmt;

/// A VM-entry consistency violation, located in the VMCS hierarchy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmentryFinding {
    /// The hypervisor level owning the offending VMCS (`vmcs[level]`
    /// controls the VM at `level + 1`).
    pub level: usize,
    /// The vCPU whose VMCS is inconsistent.
    pub cpu: usize,
    /// The rule that fired, with the field encoding at fault.
    pub violation: VmentryViolation,
}

impl fmt::Display for VmentryFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{} cpu{}: {}", self.level, self.cpu, self.violation)
    }
}

impl World {
    /// Turns on VM-entry consistency checking for every subsequent
    /// simulated entry.
    pub fn enable_vmentry_checks(&mut self) {
        self.vmentry_checks = true;
    }

    /// Whether VM-entry checking is currently enabled.
    pub fn vmentry_checks_enabled(&self) -> bool {
        self.vmentry_checks
    }

    /// Findings collected so far (without draining them).
    pub fn vmentry_findings(&self) -> &[VmentryFinding] {
        &self.vmentry_findings
    }

    /// Drains and returns all collected findings.
    pub fn take_vmentry_findings(&mut self) -> Vec<VmentryFinding> {
        std::mem::take(&mut self.vmentry_findings)
    }

    /// A simulated VM entry into the VMCS owned by `level` on `cpu`:
    /// validates the entered VMCS when checking is enabled. The
    /// disabled path — every entry of a production run — is a single
    /// inlined branch; validation itself stays out of line so it does
    /// not bloat the exit engine's hot loop.
    #[inline(always)]
    pub(crate) fn on_vmentry(&mut self, level: usize, cpu: usize) {
        if !self.vmentry_checks {
            return;
        }
        self.validate_entry(level, cpu);
    }

    /// Out-of-line checking-enabled path of [`World::on_vmentry`].
    #[inline(never)]
    fn validate_entry(&mut self, level: usize, cpu: usize) {
        let caps = self.dvh_advertised;
        let violations = validate_vmentry(self.vmcs(level, cpu), caps);
        self.vmentry_findings
            .extend(violations.into_iter().map(|violation| VmentryFinding {
                level,
                cpu,
                violation,
            }));
    }

    /// L0's native VM entry on `cpu`: charges the entry cost and (when
    /// enabled) validates vmcs01. Every simulated entry from root mode
    /// goes through here instead of charging `vmentry_from_root` raw,
    /// so the consistency checker sees them all.
    pub fn l0_vmentry(&mut self, cpu: usize) {
        self.compute(cpu, self.costs.vmentry_from_root);
        self.on_vmentry(0, cpu);
    }

    /// Validates every VMCS in the hierarchy as hardware would at the
    /// next VM entry, without running anything. Used by `dvh check`
    /// for a whole-world sweep independent of which entries a workload
    /// happens to exercise.
    pub fn validate_all_vmcs(&self) -> Vec<VmentryFinding> {
        let mut out = Vec::new();
        for level in 0..self.config.levels {
            for cpu in 0..self.config.leaf_vcpus {
                for violation in validate_vmentry(self.vmcs(level, cpu), self.dvh_advertised) {
                    out.push(VmentryFinding {
                        level,
                        cpu,
                        violation,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use dvh_arch::costs::CostModel;
    use dvh_arch::vmx::field;

    #[test]
    fn default_worlds_are_consistent() {
        for levels in 1..=4 {
            let w = World::new(CostModel::calibrated(), WorldConfig::baseline(levels));
            assert!(
                w.validate_all_vmcs().is_empty(),
                "baseline({levels}) hierarchy inconsistent"
            );
            let w = World::new(CostModel::calibrated(), WorldConfig::dvh(levels));
            assert!(w.validate_all_vmcs().is_empty());
        }
    }

    #[test]
    fn checks_off_by_default_and_free() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.guest_hypercall(0);
        assert!(!w.vmentry_checks_enabled());
        assert!(w.vmentry_findings().is_empty());
    }

    #[test]
    fn workload_under_checks_is_clean() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(3));
        w.enable_vmentry_checks();
        w.guest_hypercall(0);
        w.guest_program_timer(0, 1_000_000);
        assert!(w.take_vmentry_findings().is_empty());
    }

    #[test]
    fn tampered_ept_pointer_is_caught_at_entry() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_vmentry_checks();
        w.vmcs_mut(0, 0).write(field::EPT_POINTER, 0);
        w.guest_hypercall(0);
        let findings = w.take_vmentry_findings();
        assert!(!findings.is_empty());
        let f = &findings[0];
        assert_eq!((f.level, f.cpu), (0, 0));
        assert_eq!(f.violation.rule, "ept-pointer");
        assert!(f.to_string().contains("L0 cpu0"));
    }

    #[test]
    fn nested_entry_validates_guest_hypervisor_vmcs() {
        // Tamper with vmcs11 (L1's VMCS for L2): the violation must be
        // attributed to level 1, caught when L1's vmresume is emulated.
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_vmentry_checks();
        w.vmcs_mut(1, 0).write(field::EPT_POINTER, 0);
        w.guest_hypercall(0);
        let findings = w.take_vmentry_findings();
        assert!(findings.iter().any(|f| f.level == 1));
    }

    #[test]
    fn unadvertised_dvh_control_is_caught() {
        use dvh_arch::vmx::ctrl;
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.dvh_advertised = 0;
        w.enable_vmentry_checks();
        w.vmcs_mut(0, 0)
            .set_bits(field::DVH_EXEC_CONTROLS, ctrl::dvh::VIRTUAL_TIMER);
        w.guest_hypercall(0);
        let findings = w.take_vmentry_findings();
        assert!(findings
            .iter()
            .any(|f| f.violation.rule == "dvh-capability"));
    }
}
