//! Run statistics: exit counts by level and reason, interventions,
//! cycle accounting.

use dvh_arch::vmx::ExitReason;
use dvh_arch::Cycles;
use std::collections::BTreeMap;
use std::fmt;

/// One row per level in [`ExitLedger`]: a slot for every basic exit
/// reason number (the largest architectural discriminant we model is
/// [`ExitReason::ApicWrite`] = 56).
const REASON_SLOTS: usize = 57;

/// Dense per-(level, reason) exit counters.
///
/// `record` is on the engine's innermost path (once per simulated
/// hardware exit), so the ledger is a flat `Vec` indexed by
/// `level * REASON_SLOTS + reason.number()` instead of an ordered map.
/// Iteration yields only touched entries, sorted by `(level, reason)`
/// exactly like the `BTreeMap<(usize, ExitReason), u64>` it replaced:
/// `ExitReason`'s derived `Ord` compares discriminants, which are the
/// reason numbers the row is indexed by.
#[derive(Debug, Clone, Default)]
pub struct ExitLedger {
    counts: Vec<u64>,
}

impl ExitLedger {
    /// Creates an empty ledger.
    pub fn new() -> ExitLedger {
        ExitLedger::default()
    }

    /// Increments the counter for (`level`, `reason`), growing the
    /// level rows on first use.
    #[inline(always)]
    pub fn record(&mut self, level: usize, reason: ExitReason) {
        let idx = level * REASON_SLOTS + reason.number() as usize;
        if idx >= self.counts.len() {
            self.counts.resize((level + 1) * REASON_SLOTS, 0);
        }
        self.counts[idx] += 1;
    }

    /// The count for (`level`, `reason`).
    pub fn get(&self, level: usize, reason: ExitReason) -> u64 {
        self.counts
            .get(level * REASON_SLOTS + reason.number() as usize)
            .copied()
            .unwrap_or(0)
    }

    /// Sum over all levels and reasons.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Sum over all reasons for one level.
    pub fn level_total(&self, level: usize) -> u64 {
        let start = (level * REASON_SLOTS).min(self.counts.len());
        let end = ((level + 1) * REASON_SLOTS).min(self.counts.len());
        self.counts[start..end].iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&n| n == 0)
    }

    /// Iterates touched `((level, reason), count)` entries in
    /// `(level, reason)` order.
    pub fn iter(&self) -> impl Iterator<Item = ((usize, ExitReason), u64)> + '_ {
        self.counts.iter().enumerate().filter_map(|(idx, &n)| {
            if n == 0 {
                return None;
            }
            let level = idx / REASON_SLOTS;
            let reason = ExitReason::from_number((idx % REASON_SLOTS) as u16)
                .expect("ledger row holds only valid reason numbers");
            Some(((level, reason), n))
        })
    }

    /// Adds every entry of `other` into this ledger.
    pub fn merge(&mut self, other: &ExitLedger) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
    }
}

impl PartialEq for ExitLedger {
    fn eq(&self, other: &ExitLedger) -> bool {
        // Trailing all-zero rows are representation artifacts, not
        // content; compare touched entries only.
        self.iter().eq(other.iter())
    }
}

impl Eq for ExitLedger {}

/// Dense per-level intervention counters, indexed directly by the
/// guest hypervisor's level. Like [`ExitLedger`] this sits on the
/// reflection path (once per delivered exit), so it is a flat `Vec`
/// rather than an ordered map; iteration order and equality match the
/// `BTreeMap<usize, u64>` it replaced.
#[derive(Debug, Clone, Default)]
pub struct InterventionLedger {
    counts: Vec<u64>,
}

impl InterventionLedger {
    /// Creates an empty ledger.
    pub fn new() -> InterventionLedger {
        InterventionLedger::default()
    }

    /// Increments the counter for `level`, growing on first use.
    #[inline(always)]
    pub fn record(&mut self, level: usize) {
        if let Some(c) = self.counts.get_mut(level) {
            *c += 1;
        } else {
            // Cold: first intervention at this level.
            self.counts.resize(level + 1, 0);
            *self.counts.last_mut().expect("just resized to level + 1") += 1;
        }
    }

    /// The count for `level`.
    pub fn get(&self, level: usize) -> u64 {
        self.counts.get(level).copied().unwrap_or(0)
    }

    /// Sum over all levels.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.iter().all(|&n| n == 0)
    }

    /// Iterates touched `(level, count)` entries in level order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter_map(|(level, &n)| if n == 0 { None } else { Some((level, n)) })
    }

    /// Adds every entry of `other` into this ledger.
    pub fn merge(&mut self, other: &InterventionLedger) {
        if self.counts.len() < other.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(other.counts.iter()) {
            *dst += src;
        }
    }
}

impl PartialEq for InterventionLedger {
    fn eq(&self, other: &InterventionLedger) -> bool {
        self.iter().eq(other.iter())
    }
}

impl Eq for InterventionLedger {}

/// Statistics accumulated while a simulated machine runs.
///
/// The exit ledger is the backbone of the test suite: DVH claims are
/// claims about *which exits stop happening* (e.g. with virtual timers
/// enabled, a nested VM's timer writes are never delivered to the guest
/// hypervisor).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Hardware exits, keyed by (exiting level, reason). Every exit
    /// lands at L0 first (single-level architectural support); this
    /// records where it came *from*.
    pub exits: ExitLedger,
    /// Exits that were delivered to a guest hypervisor at the indexed
    /// level (1-based) — the "guest hypervisor interventions" the paper
    /// counts as the root cause of nested overhead.
    pub interventions: InterventionLedger,
    /// Exits handled entirely by L0 on behalf of a nested VM thanks to
    /// a DVH mechanism.
    pub dvh_intercepts: BTreeMap<&'static str, u64>,
    /// Posted interrupts delivered without any exit.
    pub posted_deliveries: u64,
    /// Interrupts that required exit-based injection.
    pub injected_interrupts: u64,
    /// Cycles spent with a physical CPU halted (not burned).
    pub idle_cycles: Cycles,
    /// Cycles burned busy-polling instead of halting (the `idle=poll`
    /// alternative §3.4 contrasts with virtual idle).
    pub burned_idle_cycles: Cycles,
    /// Cycles attributed to each *outermost* exit, by (level, reason):
    /// the full cost of handling that exit, including every nested
    /// trap it caused. Answers "where did the time go?".
    pub cycles_by_reason: BTreeMap<(usize, ExitReason), Cycles>,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Records a hardware exit from `level` with `reason`.
    #[inline(always)]
    pub fn record_exit(&mut self, level: usize, reason: ExitReason) {
        self.exits.record(level, reason);
    }

    /// Records delivery of an exit to the guest hypervisor at `level`.
    #[inline(always)]
    pub fn record_intervention(&mut self, level: usize) {
        self.interventions.record(level);
    }

    /// Records a DVH interception by mechanism name.
    pub fn record_dvh(&mut self, mechanism: &'static str) {
        *self.dvh_intercepts.entry(mechanism).or_insert(0) += 1;
    }

    /// Attributes `cycles` to the outermost exit (level, reason).
    pub fn attribute_cycles(&mut self, level: usize, reason: ExitReason, cycles: Cycles) {
        *self
            .cycles_by_reason
            .entry((level, reason))
            .or_insert(Cycles::ZERO) += cycles;
    }

    /// Total attributed cycles across all outermost exits.
    pub fn total_attributed_cycles(&self) -> Cycles {
        self.cycles_by_reason.values().copied().sum()
    }

    /// Total hardware exits from all levels.
    pub fn total_exits(&self) -> u64 {
        self.exits.total()
    }

    /// Total exits from the given level.
    pub fn exits_from_level(&self, level: usize) -> u64 {
        self.exits.level_total(level)
    }

    /// Exits from `level` with `reason`.
    pub fn exits_with(&self, level: usize, reason: ExitReason) -> u64 {
        self.exits.get(level, reason)
    }

    /// Total guest-hypervisor interventions (any level >= 1).
    pub fn total_interventions(&self) -> u64 {
        self.interventions.total()
    }

    /// Total DVH interceptions.
    pub fn total_dvh_intercepts(&self) -> u64 {
        self.dvh_intercepts.values().sum()
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &RunStats) {
        self.exits.merge(&other.exits);
        self.interventions.merge(&other.interventions);
        for (k, v) in &other.dvh_intercepts {
            *self.dvh_intercepts.entry(k).or_insert(0) += v;
        }
        self.posted_deliveries += other.posted_deliveries;
        self.injected_interrupts += other.injected_interrupts;
        self.idle_cycles += other.idle_cycles;
        self.burned_idle_cycles += other.burned_idle_cycles;
        for (k, v) in &other.cycles_by_reason {
            *self.cycles_by_reason.entry(*k).or_insert(Cycles::ZERO) += *v;
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "exits={} interventions={} dvh={} posted={} injected={}",
            self.total_exits(),
            self.total_interventions(),
            self.total_dvh_intercepts(),
            self.posted_deliveries,
            self.injected_interrupts
        )?;
        for ((level, reason), n) in self.exits.iter() {
            writeln!(f, "  L{level} {reason}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_ledger() {
        let mut s = RunStats::new();
        s.record_exit(2, ExitReason::Vmcall);
        s.record_exit(2, ExitReason::Vmcall);
        s.record_exit(1, ExitReason::Vmresume);
        assert_eq!(s.total_exits(), 3);
        assert_eq!(s.exits_from_level(2), 2);
        assert_eq!(s.exits_with(2, ExitReason::Vmcall), 2);
        assert_eq!(s.exits_with(3, ExitReason::Vmcall), 0);
    }

    #[test]
    fn interventions_and_dvh() {
        let mut s = RunStats::new();
        s.record_intervention(1);
        s.record_intervention(1);
        s.record_dvh("vtimer");
        assert_eq!(s.total_interventions(), 2);
        assert_eq!(s.total_dvh_intercepts(), 1);
    }

    #[test]
    fn merge_sums() {
        let mut a = RunStats::new();
        a.record_exit(1, ExitReason::Hlt);
        let mut b = RunStats::new();
        b.record_exit(1, ExitReason::Hlt);
        b.posted_deliveries = 3;
        a.merge(&b);
        assert_eq!(a.exits_with(1, ExitReason::Hlt), 2);
        assert_eq!(a.posted_deliveries, 3);
    }

    #[test]
    fn display_lists_reasons() {
        let mut s = RunStats::new();
        s.record_exit(2, ExitReason::Hlt);
        let text = s.to_string();
        assert!(text.contains("L2 Hlt: 1"));
    }
}
