//! Run statistics: exit counts by level and reason, interventions,
//! cycle accounting.

use dvh_arch::vmx::ExitReason;
use dvh_arch::Cycles;
use std::collections::BTreeMap;
use std::fmt;

/// Statistics accumulated while a simulated machine runs.
///
/// The exit ledger is the backbone of the test suite: DVH claims are
/// claims about *which exits stop happening* (e.g. with virtual timers
/// enabled, a nested VM's timer writes are never delivered to the guest
/// hypervisor).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Hardware exits, keyed by (exiting level, reason). Every exit
    /// lands at L0 first (single-level architectural support); this
    /// records where it came *from*.
    pub exits: BTreeMap<(usize, ExitReason), u64>,
    /// Exits that were delivered to a guest hypervisor at the keyed
    /// level (1-based) — the "guest hypervisor interventions" the paper
    /// counts as the root cause of nested overhead.
    pub interventions: BTreeMap<usize, u64>,
    /// Exits handled entirely by L0 on behalf of a nested VM thanks to
    /// a DVH mechanism.
    pub dvh_intercepts: BTreeMap<&'static str, u64>,
    /// Posted interrupts delivered without any exit.
    pub posted_deliveries: u64,
    /// Interrupts that required exit-based injection.
    pub injected_interrupts: u64,
    /// Cycles spent with a physical CPU halted (not burned).
    pub idle_cycles: Cycles,
    /// Cycles burned busy-polling instead of halting (the `idle=poll`
    /// alternative §3.4 contrasts with virtual idle).
    pub burned_idle_cycles: Cycles,
    /// Cycles attributed to each *outermost* exit, by (level, reason):
    /// the full cost of handling that exit, including every nested
    /// trap it caused. Answers "where did the time go?".
    pub cycles_by_reason: BTreeMap<(usize, ExitReason), Cycles>,
}

impl RunStats {
    /// Creates empty statistics.
    pub fn new() -> RunStats {
        RunStats::default()
    }

    /// Records a hardware exit from `level` with `reason`.
    pub fn record_exit(&mut self, level: usize, reason: ExitReason) {
        *self.exits.entry((level, reason)).or_insert(0) += 1;
    }

    /// Records delivery of an exit to the guest hypervisor at `level`.
    pub fn record_intervention(&mut self, level: usize) {
        *self.interventions.entry(level).or_insert(0) += 1;
    }

    /// Records a DVH interception by mechanism name.
    pub fn record_dvh(&mut self, mechanism: &'static str) {
        *self.dvh_intercepts.entry(mechanism).or_insert(0) += 1;
    }

    /// Attributes `cycles` to the outermost exit (level, reason).
    pub fn attribute_cycles(&mut self, level: usize, reason: ExitReason, cycles: Cycles) {
        *self
            .cycles_by_reason
            .entry((level, reason))
            .or_insert(Cycles::ZERO) += cycles;
    }

    /// Total attributed cycles across all outermost exits.
    pub fn total_attributed_cycles(&self) -> Cycles {
        self.cycles_by_reason.values().copied().sum()
    }

    /// Total hardware exits from all levels.
    pub fn total_exits(&self) -> u64 {
        self.exits.values().sum()
    }

    /// Total exits from the given level.
    pub fn exits_from_level(&self, level: usize) -> u64 {
        self.exits
            .iter()
            .filter(|((l, _), _)| *l == level)
            .map(|(_, n)| *n)
            .sum()
    }

    /// Exits from `level` with `reason`.
    pub fn exits_with(&self, level: usize, reason: ExitReason) -> u64 {
        self.exits.get(&(level, reason)).copied().unwrap_or(0)
    }

    /// Total guest-hypervisor interventions (any level >= 1).
    pub fn total_interventions(&self) -> u64 {
        self.interventions.values().sum()
    }

    /// Total DVH interceptions.
    pub fn total_dvh_intercepts(&self) -> u64 {
        self.dvh_intercepts.values().sum()
    }

    /// Merges another stats block into this one.
    pub fn merge(&mut self, other: &RunStats) {
        for (k, v) in &other.exits {
            *self.exits.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.interventions {
            *self.interventions.entry(*k).or_insert(0) += v;
        }
        for (k, v) in &other.dvh_intercepts {
            *self.dvh_intercepts.entry(k).or_insert(0) += v;
        }
        self.posted_deliveries += other.posted_deliveries;
        self.injected_interrupts += other.injected_interrupts;
        self.idle_cycles += other.idle_cycles;
        self.burned_idle_cycles += other.burned_idle_cycles;
        for (k, v) in &other.cycles_by_reason {
            *self.cycles_by_reason.entry(*k).or_insert(Cycles::ZERO) += *v;
        }
    }
}

impl fmt::Display for RunStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "exits={} interventions={} dvh={} posted={} injected={}",
            self.total_exits(),
            self.total_interventions(),
            self.total_dvh_intercepts(),
            self.posted_deliveries,
            self.injected_interrupts
        )?;
        for ((level, reason), n) in &self.exits {
            writeln!(f, "  L{level} {reason}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_ledger() {
        let mut s = RunStats::new();
        s.record_exit(2, ExitReason::Vmcall);
        s.record_exit(2, ExitReason::Vmcall);
        s.record_exit(1, ExitReason::Vmresume);
        assert_eq!(s.total_exits(), 3);
        assert_eq!(s.exits_from_level(2), 2);
        assert_eq!(s.exits_with(2, ExitReason::Vmcall), 2);
        assert_eq!(s.exits_with(3, ExitReason::Vmcall), 0);
    }

    #[test]
    fn interventions_and_dvh() {
        let mut s = RunStats::new();
        s.record_intervention(1);
        s.record_intervention(1);
        s.record_dvh("vtimer");
        assert_eq!(s.total_interventions(), 2);
        assert_eq!(s.total_dvh_intercepts(), 1);
    }

    #[test]
    fn merge_sums() {
        let mut a = RunStats::new();
        a.record_exit(1, ExitReason::Hlt);
        let mut b = RunStats::new();
        b.record_exit(1, ExitReason::Hlt);
        b.posted_deliveries = 3;
        a.merge(&b);
        assert_eq!(a.exits_with(1, ExitReason::Hlt), 2);
        assert_eq!(a.posted_deliveries, 3);
    }

    #[test]
    fn display_lists_reasons() {
        let mut s = RunStats::new();
        s.record_exit(2, ExitReason::Hlt);
        let text = s.to_string();
        assert!(text.contains("L2 Hlt: 1"));
    }
}
