//! Simulation configuration: virtualization depth, I/O model, DVH
//! mechanisms, guest-hypervisor personality.

use std::fmt;

/// Which I/O virtualization model the nested VM uses (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoModel {
    /// Cascaded virtual I/O devices: every hypervisor level provides
    /// its own virtio device to its guest (Fig. 2a).
    #[default]
    Virtio,
    /// Physical device passthrough: an SR-IOV VF is assigned through
    /// every level to the leaf VM (Fig. 2b). No I/O interposition.
    Passthrough,
    /// DVH virtual-passthrough: the host hypervisor's virtio device is
    /// assigned through the levels to the leaf VM via virtual IOMMUs
    /// (Fig. 2c).
    VirtualPassthrough,
}

impl fmt::Display for IoModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoModel::Virtio => "virtio",
            IoModel::Passthrough => "passthrough",
            IoModel::VirtualPassthrough => "virtual-passthrough",
        };
        f.write_str(s)
    }
}

/// Which DVH mechanisms are active, mirroring the incremental
/// configurations of Fig. 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DvhFlags {
    /// §3.1 virtual-passthrough is implied by
    /// [`IoModel::VirtualPassthrough`]; this flag adds the posted-
    /// interrupt support in the virtual IOMMU (the "+ posted
    /// interrupts" step of Fig. 8).
    pub viommu_posted_interrupts: bool,
    /// §3.2 virtual timers.
    pub virtual_timers: bool,
    /// §3.3 virtual IPIs (virtual ICR + VCIMT).
    pub virtual_ipis: bool,
    /// §3.4 virtual idle.
    pub virtual_idle: bool,
}

impl DvhFlags {
    /// No DVH mechanisms (vanilla nested virtualization).
    pub const NONE: DvhFlags = DvhFlags {
        viommu_posted_interrupts: false,
        virtual_timers: false,
        virtual_ipis: false,
        virtual_idle: false,
    };

    /// All DVH mechanisms (the paper's "DVH" configuration).
    pub const ALL: DvhFlags = DvhFlags {
        viommu_posted_interrupts: true,
        virtual_timers: true,
        virtual_ipis: true,
        virtual_idle: true,
    };

    /// Whether any mechanism is enabled.
    pub fn any(self) -> bool {
        self.viommu_posted_interrupts
            || self.virtual_timers
            || self.virtual_ipis
            || self.virtual_idle
    }
}

/// Guest-hypervisor personality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum HvKind {
    /// KVM-like guest hypervisor.
    #[default]
    Kvm,
    /// Xen-like guest hypervisor (Fig. 10): heavier world switches, no
    /// DVH awareness beyond virtual-passthrough (which needs none).
    Xen,
    /// KVM/ARM guest hypervisor (§3: DVH "can be applied to and
    /// realized on different architectures"; the paper used
    /// virtual-passthrough on ARM). Use with
    /// [`dvh_arch::costs::CostModel::calibrated_arm`].
    KvmArm,
}

impl fmt::Display for HvKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HvKind::Kvm => f.write_str("KVM"),
            HvKind::Xen => f.write_str("Xen"),
            HvKind::KvmArm => f.write_str("KVM/ARM"),
        }
    }
}

/// Full configuration of a simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorldConfig {
    /// Virtualization depth: 1 = VM, 2 = nested VM, 3 = L3 VM, ...
    pub levels: usize,
    /// Number of vCPUs in the leaf VM (the paper uses 4).
    pub leaf_vcpus: usize,
    /// I/O model for the leaf VM.
    pub io_model: IoModel,
    /// Active DVH mechanisms.
    pub dvh: DvhFlags,
    /// Guest hypervisor personality (levels 1..n-1; L0 is always KVM).
    pub guest_hv: HvKind,
    /// Whether hardware VMCS shadowing is available to the L1
    /// hypervisor (the paper's testbed has it; deeper hypervisors
    /// never get it, as on real KVM).
    pub vmcs_shadowing: bool,
}

impl WorldConfig {
    /// A paper-like configuration at the given depth: 4 leaf vCPUs,
    /// virtio I/O, no DVH, VMCS shadowing available.
    pub fn baseline(levels: usize) -> WorldConfig {
        WorldConfig {
            levels,
            leaf_vcpus: 4,
            io_model: IoModel::Virtio,
            dvh: DvhFlags::NONE,
            guest_hv: HvKind::Kvm,
            vmcs_shadowing: true,
        }
    }

    /// The full-DVH variant of [`WorldConfig::baseline`].
    pub fn dvh(levels: usize) -> WorldConfig {
        WorldConfig {
            io_model: IoModel::VirtualPassthrough,
            dvh: DvhFlags::ALL,
            ..WorldConfig::baseline(levels)
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.levels == 0 {
            return Err("at least one virtualization level is required".into());
        }
        if self.leaf_vcpus == 0 {
            return Err("the leaf VM needs at least one vCPU".into());
        }
        if self.dvh.any() && self.levels < 2 && self.dvh != DvhFlags::NONE {
            // DVH is defined for nested VMs; for a plain VM it is inert
            // but harmless. Not an error, per §3: "For non-nested
            // virtualization, DVH provides no real benefit".
        }
        if self.guest_hv == HvKind::Xen
            && (self.dvh.virtual_timers || self.dvh.virtual_ipis || self.dvh.virtual_idle)
        {
            return Err(
                "the Xen guest hypervisor is DVH-unaware: only virtual-passthrough \
                 (with or without vIOMMU posted interrupts) can be enabled"
                    .into(),
            );
        }
        if self.guest_hv == HvKind::KvmArm
            && (self.dvh.virtual_timers || self.dvh.virtual_ipis || self.dvh.virtual_idle)
        {
            return Err(
                "the ARM port implements virtual-passthrough only (as in the paper); \
                 virtual timers/IPIs/idle are x86 mechanisms here"
                    .into(),
            );
        }
        Ok(())
    }
}

impl Default for WorldConfig {
    fn default() -> WorldConfig {
        WorldConfig::baseline(2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_is_valid() {
        WorldConfig::baseline(1).validate().unwrap();
        WorldConfig::baseline(3).validate().unwrap();
        WorldConfig::dvh(2).validate().unwrap();
    }

    #[test]
    fn zero_levels_invalid() {
        assert!(WorldConfig::baseline(0).validate().is_err());
    }

    #[test]
    fn xen_with_dvh_mechanisms_invalid() {
        let mut c = WorldConfig::dvh(2);
        c.guest_hv = HvKind::Xen;
        assert!(c.validate().is_err());
        // Xen + VP only is fine.
        c.dvh = DvhFlags {
            viommu_posted_interrupts: false,
            ..DvhFlags::NONE
        };
        c.io_model = IoModel::VirtualPassthrough;
        c.validate().unwrap();
    }

    #[test]
    fn dvh_flags_any() {
        assert!(!DvhFlags::NONE.any());
        assert!(DvhFlags::ALL.any());
    }

    #[test]
    fn io_model_display() {
        assert_eq!(
            IoModel::VirtualPassthrough.to_string(),
            "virtual-passthrough"
        );
    }
}
