//! Execution tracing: a per-world event log of everything the exit
//! engine does, for debugging, visualization, and fine-grained tests.
//!
//! Tracing is off by default (zero overhead beyond a branch); enable
//! it with [`World::enable_tracing`] and drain events with
//! [`World::take_trace`].

use crate::world::World;
use dvh_arch::vmx::ExitReason;
use dvh_arch::Cycles;
use std::fmt;

/// One traced event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A hardware VM exit landed at L0.
    Exit {
        /// Simulated time on the exiting CPU.
        at: Cycles,
        /// CPU the exit happened on.
        cpu: usize,
        /// Level the guest was running at.
        from_level: usize,
        /// Architectural reason.
        reason: ExitReason,
        /// For `Vmread`/`Vmwrite` exits, the VMCS field encoding the
        /// guest hypervisor was accessing (used by the trace linter to
        /// catch shadow-bypass reflections); `None` otherwise.
        vmcs_field: Option<u32>,
    },
    /// An outermost exit finished: the CPU re-entered the level it
    /// exited from, with `spent` simulated cycles consumed end to end.
    /// Emitted only for top-level exits (`exit_depth` returning to 0),
    /// mirroring [`crate::stats::RunStats::attribute_cycles`] so the
    /// trace linter can prove cycle conservation.
    Completed {
        /// Time the exit finished (re-entry to the guest).
        at: Cycles,
        /// CPU.
        cpu: usize,
        /// Level whose exit this completes.
        from_level: usize,
        /// The architectural reason of the completed exit.
        reason: ExitReason,
        /// Cycles consumed between the exit and this completion.
        spent: Cycles,
    },
    /// A *nested* (non-outermost) exit finished its round trip: the
    /// handler chain for it ran to completion and control returned to
    /// the enclosing exit's handling. Together with [`Exit`] this
    /// gives every inner exit an exact, non-overlapping interval
    /// `[exit.at, returned.at]`, which is what lets the causality
    /// layer ([`dvh_obs::causal`]) rebuild the full causal tree of an
    /// outermost exit and partition its cycles into per-frame self
    /// times. Outermost exits close with [`Completed`] instead (which
    /// additionally carries the attributed `spent` for the ledger).
    ///
    /// [`Exit`]: TraceEvent::Exit
    /// [`Completed`]: TraceEvent::Completed
    Returned {
        /// Time the nested exit's handling finished.
        at: Cycles,
        /// CPU.
        cpu: usize,
        /// Level whose nested exit this closes.
        from_level: usize,
        /// The architectural reason of the closed exit.
        reason: ExitReason,
    },
    /// An exit was delivered to a guest hypervisor.
    Intervention {
        /// Time of delivery.
        at: Cycles,
        /// CPU.
        cpu: usize,
        /// The guest hypervisor's level.
        hv_level: usize,
        /// The reason being delivered.
        reason: ExitReason,
    },
    /// A DVH mechanism handled an exit at L0.
    DvhIntercept {
        /// Time of interception.
        at: Cycles,
        /// CPU.
        cpu: usize,
        /// Mechanism name ("vtimer", "vipi", ...).
        mechanism: &'static str,
    },
    /// An interrupt became visible to the leaf vCPU.
    IrqDelivered {
        /// Time of delivery on the destination CPU.
        at: Cycles,
        /// Destination CPU.
        cpu: usize,
        /// Vector delivered.
        vector: u8,
        /// Whether the destination had been halted.
        woke: bool,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> Cycles {
        match self {
            TraceEvent::Exit { at, .. }
            | TraceEvent::Completed { at, .. }
            | TraceEvent::Returned { at, .. }
            | TraceEvent::Intervention { at, .. }
            | TraceEvent::DvhIntercept { at, .. }
            | TraceEvent::IrqDelivered { at, .. } => *at,
        }
    }

    /// The CPU the event occurred on.
    pub fn cpu(&self) -> usize {
        match self {
            TraceEvent::Exit { cpu, .. }
            | TraceEvent::Completed { cpu, .. }
            | TraceEvent::Returned { cpu, .. }
            | TraceEvent::Intervention { cpu, .. }
            | TraceEvent::DvhIntercept { cpu, .. }
            | TraceEvent::IrqDelivered { cpu, .. } => *cpu,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Exit {
                at,
                cpu,
                from_level,
                reason,
                vmcs_field,
            } => {
                write!(f, "[{at}] cpu{cpu} exit L{from_level} {reason}")?;
                if let Some(enc) = vmcs_field {
                    write!(f, " field {enc:#06x}")?;
                }
                Ok(())
            }
            TraceEvent::Completed {
                at,
                cpu,
                from_level,
                reason,
                spent,
            } => write!(
                f,
                "[{at}] cpu{cpu} resume L{from_level} {reason} (spent {spent})"
            ),
            TraceEvent::Returned {
                at,
                cpu,
                from_level,
                reason,
            } => write!(f, "[{at}] cpu{cpu} return L{from_level} {reason}"),
            TraceEvent::Intervention {
                at,
                cpu,
                hv_level,
                reason,
            } => write!(f, "[{at}] cpu{cpu} -> L{hv_level} hypervisor ({reason})"),
            TraceEvent::DvhIntercept { at, cpu, mechanism } => {
                write!(f, "[{at}] cpu{cpu} DVH {mechanism}")
            }
            TraceEvent::IrqDelivered {
                at,
                cpu,
                vector,
                woke,
            } => write!(
                f,
                "[{at}] cpu{cpu} irq {vector:#x}{}",
                if *woke { " (woke)" } else { "" }
            ),
        }
    }
}

/// A bounded trace buffer (oldest events are dropped when full).
///
/// Eviction is a compacting ring: events append to a backing `Vec`
/// allowed to grow to twice the logical capacity; when it fills, the
/// stale front half is drained in one batch. Each event is moved at
/// most once per `capacity` evictions — amortized O(1) per record,
/// where the old `Vec::remove(0)` was O(n) per event (quadratic over
/// a full traced run) — while the live window stays contiguous, so
/// [`Tracer::events`] is still a borrowed oldest-first slice.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Lifetime events recorded (retained + evicted).
    total: u64,
}

impl Tracer {
    /// Creates a tracer holding up to `capacity` events.
    ///
    /// The buffer is reserved up front (capped, so pathological
    /// capacities don't allocate gigabytes eagerly) — recording an
    /// event on the hot path never grows the Vec until the cap.
    pub fn new(capacity: usize) -> Tracer {
        Tracer {
            events: Vec::with_capacity(capacity.saturating_mul(2).min(1 << 16)),
            capacity,
            total: 0,
        }
    }

    /// Records an event.
    pub fn record(&mut self, e: TraceEvent) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.events.len() >= self.capacity.saturating_mul(2) {
            // One O(capacity) compaction per `capacity` evictions.
            self.events.drain(..self.events.len() - self.capacity);
        }
        self.events.push(e);
    }

    /// Events recorded, oldest first (the most recent `capacity` of
    /// them).
    pub fn events(&self) -> &[TraceEvent] {
        let start = self.events.len().saturating_sub(self.capacity);
        &self.events[start..]
    }

    /// How many events were evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.total.saturating_sub(self.capacity as u64)
    }

    /// Consumes the tracer, returning the retained events oldest
    /// first.
    pub fn into_events(mut self) -> Vec<TraceEvent> {
        let start = self.events.len().saturating_sub(self.capacity);
        if start > 0 {
            self.events.drain(..start);
        }
        self.events
    }
}

impl World {
    /// Turns on tracing with the given buffer capacity.
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.tracer = Some(Tracer::new(capacity));
        self.trace_on = true;
    }

    /// Stops tracing and returns the recorded events.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace_on = false;
        self.tracer
            .take()
            .map(Tracer::into_events)
            .unwrap_or_default()
    }

    /// Events recorded so far without stopping tracing (empty when
    /// tracing is off).
    pub fn trace_events(&self) -> &[TraceEvent] {
        self.tracer.as_ref().map(|t| t.events()).unwrap_or(&[])
    }

    /// How many trace events have been evicted from the bounded
    /// buffer. The trace linter refuses to certify a truncated trace.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.as_ref().map(|t| t.dropped()).unwrap_or(0)
    }

    /// Records an event if tracing is enabled. The disabled path is a
    /// single inlined branch on [`World::trace_on`]; the closure gets
    /// `&World` so event construction (timestamps and all) is fully
    /// lazy — with tracing off, none of it is evaluated and the
    /// optimizer can delete the capture setup at every call site.
    #[inline(always)]
    pub(crate) fn trace(&mut self, e: impl FnOnce(&World) -> TraceEvent) {
        if !self.trace_on {
            return;
        }
        self.trace_record(e);
    }

    /// Out-of-line tracing-enabled path of [`World::trace`].
    #[inline(never)]
    fn trace_record(&mut self, e: impl FnOnce(&World) -> TraceEvent) {
        let event = e(self);
        if let Some(t) = self.tracer.as_mut() {
            t.record(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use dvh_arch::costs::CostModel;

    #[test]
    fn trace_captures_exit_chain() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_tracing(4096);
        w.guest_hypercall(0);
        let events = w.take_trace();
        assert!(!events.is_empty());
        // First event is the leaf's Vmcall exit.
        assert!(matches!(
            events[0],
            TraceEvent::Exit {
                from_level: 2,
                reason: ExitReason::Vmcall,
                ..
            }
        ));
        // Exactly one intervention (the L1 hypervisor handles it).
        let interventions = events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Intervention { .. }))
            .count();
        assert_eq!(interventions, 1);
        // Timestamps are monotone per CPU.
        let mut last = Cycles::ZERO;
        for e in &events {
            if e.cpu() == 0 {
                assert!(e.at() >= last);
                last = e.at();
            }
        }
    }

    #[test]
    fn nested_exits_are_closed_by_returned_events() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_tracing(1 << 16);
        w.guest_hypercall(0);
        let events = w.take_trace();
        let count = |f: fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
        let exits = count(|e| matches!(e, TraceEvent::Exit { .. }));
        let returned = count(|e| matches!(e, TraceEvent::Returned { .. }));
        let completed = count(|e| matches!(e, TraceEvent::Completed { .. }));
        assert!(returned > 0, "a reflected L2 hypercall must nest");
        assert_eq!(completed, 1, "exactly one outermost exit");
        assert_eq!(
            exits,
            returned + completed,
            "every exit closes exactly once"
        );
        // A Returned never closes the outermost exit: the Completed is
        // the last engine close event.
        let last_close = events
            .iter()
            .rposition(|e| matches!(e, TraceEvent::Returned { .. }))
            .unwrap();
        let completed_at = events
            .iter()
            .position(|e| matches!(e, TraceEvent::Completed { .. }))
            .unwrap();
        assert!(last_close < completed_at);
    }

    #[test]
    fn tracing_off_records_nothing() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.guest_hypercall(0);
        assert!(w.take_trace().is_empty());
    }

    #[test]
    fn bounded_buffer_drops_oldest() {
        let mut t = Tracer::new(2);
        for i in 0..5u8 {
            t.record(TraceEvent::IrqDelivered {
                at: Cycles::new(i as u64),
                cpu: 0,
                vector: i,
                woke: false,
            });
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.events()[0].at(), Cycles::new(3));
    }

    fn irq_at(i: u64) -> TraceEvent {
        TraceEvent::IrqDelivered {
            at: Cycles::new(i),
            cpu: 0,
            vector: (i % 256) as u8,
            woke: false,
        }
    }

    #[test]
    fn eviction_keeps_oldest_first_across_compactions() {
        // Capacity 4, 11 events: crosses the 2x-capacity compaction
        // boundary more than once. The window must always be the most
        // recent 4, oldest first.
        let mut t = Tracer::new(4);
        for i in 0..11 {
            t.record(irq_at(i));
            let events = t.events();
            let expect_len = ((i + 1) as usize).min(4);
            assert_eq!(events.len(), expect_len);
            let oldest = (i + 1).saturating_sub(4);
            for (k, e) in events.iter().enumerate() {
                assert_eq!(e.at(), Cycles::new(oldest + k as u64));
            }
        }
        assert_eq!(t.dropped(), 7);
    }

    #[test]
    fn at_capacity_nothing_is_dropped() {
        let mut t = Tracer::new(3);
        for i in 0..3 {
            t.record(irq_at(i));
        }
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.events().len(), 3);
        assert_eq!(t.events()[0].at(), Cycles::ZERO);
        // One past capacity evicts exactly one.
        t.record(irq_at(3));
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.events()[0].at(), Cycles::new(1));
    }

    #[test]
    fn into_events_matches_events_view() {
        for n in [2u64, 3, 4, 7, 16] {
            let mut t = Tracer::new(3);
            for i in 0..n {
                t.record(irq_at(i));
            }
            let view: Vec<TraceEvent> = t.events().to_vec();
            assert_eq!(t.into_events(), view, "{n} events");
        }
    }

    #[test]
    fn take_trace_agrees_with_trace_events_past_capacity() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        // Small enough that a hypercall overflows it.
        w.enable_tracing(8);
        w.guest_hypercall(0);
        assert!(w.trace_dropped() > 0, "trace should have wrapped");
        let view: Vec<TraceEvent> = w.trace_events().to_vec();
        assert_eq!(view.len(), 8);
        let taken = w.take_trace();
        assert_eq!(taken, view);
        // Timestamps still monotone (per CPU; this run is CPU 0 only).
        for pair in taken.windows(2) {
            assert!(pair[0].at() <= pair[1].at());
        }
    }

    #[test]
    fn take_trace_agrees_with_trace_events_at_capacity() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_tracing(1 << 16);
        w.guest_hypercall(0);
        assert_eq!(w.trace_dropped(), 0);
        let view: Vec<TraceEvent> = w.trace_events().to_vec();
        assert_eq!(w.take_trace(), view);
    }

    #[test]
    fn display_is_informative() {
        let e = TraceEvent::Exit {
            at: Cycles::new(100),
            cpu: 1,
            from_level: 2,
            reason: ExitReason::Hlt,
            vmcs_field: None,
        };
        let s = e.to_string();
        assert!(s.contains("cpu1") && s.contains("L2") && s.contains("Hlt"));
    }

    #[test]
    fn dvh_intercepts_are_traced() {
        use crate::extension::{Intercept, L0Extension};
        use dvh_arch::vmx::ExitQualification;

        struct Claim;
        impl L0Extension for Claim {
            fn name(&self) -> &'static str {
                "claim-all"
            }
            fn try_intercept(
                &mut self,
                w: &mut World,
                cpu: usize,
                _from: usize,
                _reason: ExitReason,
                _qual: &ExitQualification,
            ) -> Intercept {
                w.compute(cpu, Cycles::new(1));
                Intercept::Handled
            }
        }
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.register_extension(Box::new(Claim));
        w.enable_tracing(128);
        w.guest_hypercall(0);
        let events = w.take_trace();
        assert!(events.iter().any(|e| matches!(
            e,
            TraceEvent::DvhIntercept {
                mechanism: "claim-all",
                ..
            }
        )));
    }
}
