//! vCPU lifecycle: pausing and resuming the leaf VM, as live
//! migration's stop-and-copy phase requires.
//!
//! A paused vCPU accepts no interrupts — they accumulate in its
//! posted-interrupt descriptor with the suppress-notification bit set
//! (exactly how KVM parks vCPUs) and are delivered in order when the
//! vCPU resumes. Nothing is lost across a migration blackout.

use crate::world::World;
use dvh_arch::Cycles;

impl World {
    /// Whether the leaf vCPU on `cpu` is paused.
    pub fn is_paused(&self, cpu: usize) -> bool {
        self.paused[cpu]
    }

    /// Pauses one leaf vCPU: kick it out of guest mode if running and
    /// park it; pending interrupt notifications are suppressed.
    pub fn pause_vcpu(&mut self, cpu: usize) {
        if self.paused[cpu] {
            return;
        }
        if !self.is_halted(cpu) {
            // Kick: an IPI-induced exit plus scheduler dequeue.
            self.vmexit(
                self.leaf_level(),
                cpu,
                dvh_arch::vmx::ExitReason::ExternalInterrupt,
                dvh_arch::vmx::ExitQualification::default(),
            );
            self.compute(cpu, self.costs.vcpu_block);
        }
        self.paused[cpu] = true;
        self.pi_desc[cpu].sn = true;
    }

    /// Pauses every leaf vCPU (migration stop-and-copy).
    pub fn pause_all(&mut self) {
        for cpu in 0..self.num_cpus() {
            self.pause_vcpu(cpu);
        }
    }

    /// Resumes a paused vCPU, delivering everything that queued while
    /// it was paused.
    pub fn resume_vcpu(&mut self, cpu: usize) {
        if !self.paused[cpu] {
            return;
        }
        self.paused[cpu] = false;
        self.pi_desc[cpu].sn = false;
        self.compute(cpu, self.costs.vcpu_kick);
        self.l0_vmentry(cpu);
        let pending = self.pi_desc[cpu].drain();
        for v in pending {
            self.lapic[cpu].accept(v);
        }
        self.service_after_resume(cpu);
    }

    /// Resumes every leaf vCPU.
    pub fn resume_all(&mut self) {
        for cpu in 0..self.num_cpus() {
            self.resume_vcpu(cpu);
        }
    }

    fn service_after_resume(&mut self, cpu: usize) {
        while self.lapic[cpu].dispatch().is_some() {
            self.compute(cpu, Cycles::new(80));
            self.lapic[cpu].eoi();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::runtime::IrqPath;
    use dvh_arch::costs::CostModel;

    fn world() -> World {
        World::new(CostModel::calibrated(), WorldConfig::baseline(2))
    }

    #[test]
    fn pause_resume_round_trip() {
        let mut w = world();
        w.pause_vcpu(0);
        assert!(w.is_paused(0));
        w.resume_vcpu(0);
        assert!(!w.is_paused(0));
    }

    #[test]
    fn interrupts_during_pause_are_queued_not_lost() {
        let mut w = world();
        w.pause_vcpu(0);
        let before = w.lapic[0].accepted_count();
        let t = w.now(1);
        w.deliver_leaf_interrupt(0, 0x71, t, IrqPath::PostedDirect);
        w.deliver_leaf_interrupt(0, 0x72, t, IrqPath::PostedDirect);
        // Still parked: nothing accepted yet, both pending in the PIR.
        assert_eq!(w.lapic[0].accepted_count(), before);
        assert!(w.pi_desc[0].is_pending(0x71));
        assert!(w.pi_desc[0].is_pending(0x72));
        w.resume_vcpu(0);
        assert_eq!(w.lapic[0].accepted_count(), before + 2);
        assert_eq!(w.lapic[0].eoi_count(), before + 2);
        assert!(!w.pi_desc[0].has_pending());
    }

    #[test]
    fn pause_is_idempotent() {
        let mut w = world();
        w.pause_vcpu(0);
        let t = w.now(0);
        w.pause_vcpu(0);
        assert_eq!(w.now(0), t, "second pause is free");
        w.resume_vcpu(0);
        let t = w.now(0);
        w.resume_vcpu(0);
        assert_eq!(w.now(0), t, "second resume is free");
    }

    #[test]
    fn pause_all_covers_every_vcpu() {
        let mut w = world();
        w.pause_all();
        for cpu in 0..w.num_cpus() {
            assert!(w.is_paused(cpu));
        }
        w.resume_all();
        for cpu in 0..w.num_cpus() {
            assert!(!w.is_paused(cpu));
        }
    }

    #[test]
    fn pausing_a_running_vcpu_costs_an_exit() {
        let mut w = world();
        let before = w.stats.total_exits();
        w.pause_vcpu(0);
        assert!(w.stats.total_exits() > before);
    }
}
