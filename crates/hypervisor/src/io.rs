//! I/O datapaths for the three models of Fig. 2: cascaded virtio,
//! physical device passthrough, and virtual-passthrough.
//!
//! Bytes really move: the leaf's buffers live in host memory at their
//! canonical translated addresses, the backend reads/writes them
//! through the appropriate translation structure (shadow I/O table,
//! physical IOMMU domain, or L0's own stage table), and frames really
//! reach the NIC — so data-integrity tests can check end-to-end
//! payloads while the cost ledger records who trapped where.

use crate::config::IoModel;
use crate::runtime::IrqPath;
use crate::world::{World, LEAF_BUF_BASE_PFN, STAGE_PFN_OFFSET};
use dvh_arch::vmx::{ExitQualification, ExitReason};
use dvh_arch::Cycles;
use dvh_devices::nic::Frame;
use dvh_devices::virtio::net::NOTIFY_BAR_OFFSET;
use dvh_devices::virtio::queue::Descriptor;
use dvh_memory::{DirtyBitmap, Gpa};

/// The MSI vector virtio-net RX completion uses.
pub const RX_VECTOR: u8 = 0x51;

impl World {
    /// The canonical host PFN backing leaf-GPA page `leaf_pfn` (the
    /// composition of every EPT stage in the canonical layout).
    pub fn leaf_host_pfn(&self, leaf_pfn: u64) -> u64 {
        leaf_pfn + self.config.levels as u64 * STAGE_PFN_OFFSET
    }

    /// Writes `data` into the leaf VM's memory at `leaf_gpa` as a CPU
    /// store (through the EPT chain), marking it dirty for migration.
    pub fn guest_write_memory(&mut self, cpu: usize, leaf_gpa: Gpa, data: &[u8]) {
        let host = Gpa::from_pfn(self.leaf_host_pfn(leaf_gpa.pfn())).offset(leaf_gpa.page_offset());
        self.host_mem.write(host, data);
        self.leaf_dirty.mark(leaf_gpa);
        self.l1_dirty
            .mark_pfn(leaf_gpa.pfn() + (self.config.levels as u64 - 1) * STAGE_PFN_OFFSET);
        self.compute(cpu, self.costs.copy_cost(data.len() as u64));
    }

    /// Reads leaf memory at `leaf_gpa`.
    pub fn guest_read_memory(&self, leaf_gpa: Gpa, len: usize) -> Vec<u8> {
        let host = Gpa::from_pfn(self.leaf_host_pfn(leaf_gpa.pfn())).offset(leaf_gpa.page_offset());
        self.host_mem.read(host, len)
    }

    /// Transmits `packets` frames of `bytes` each from the leaf VM.
    /// Frame payloads are read from the leaf's buffer pool (write them
    /// first with [`World::guest_write_memory`] for integrity checks;
    /// otherwise they are zero-filled). Returns the completion time on
    /// the sending CPU.
    pub fn guest_net_tx(&mut self, cpu: usize, packets: u32, bytes: u32) -> Cycles {
        // Driver side: ring bookkeeping, runs at native speed.
        self.compute(cpu, Cycles::new(120) * packets as u64);
        let leaf_dev = self.leaf_device_idx();
        for p in 0..packets {
            let buf_pfn = LEAF_BUF_BASE_PFN + (p as u64 % 32);
            let desc = Descriptor {
                addr: Gpa::from_pfn(buf_pfn),
                len: bytes,
                device_writes: false,
            };
            // Queues are finite; drain completions if full.
            if self.virtio[leaf_dev].tx.add_chain(vec![desc]).is_err() {
                while self.virtio[leaf_dev].tx.pop_used().is_some() {}
                let _ = self.virtio[leaf_dev].tx.add_chain(vec![Descriptor {
                    addr: Gpa::from_pfn(buf_pfn),
                    len: bytes,
                    device_writes: false,
                }]);
            }
        }
        self.virtio[leaf_dev].tx.kick();
        match self.config.io_model {
            IoModel::Passthrough => {
                // The doorbell write goes straight to the VF: no exit.
                // The device DMAs the payload out through the physical
                // IOMMU.
                let vf = self.nic.function_bdf(1);
                for _ in 0..packets {
                    let chain = match self.virtio[leaf_dev].tx.pop_avail() {
                        Some(c) => c,
                        None => break,
                    };
                    let mut payload = Vec::new();
                    let mut faulted = false;
                    for d in &chain.descs {
                        let iova = d.addr.pfn();
                        match self.phys_iommu.translate(vf, iova, dvh_memory::Perms::RO) {
                            // Grow the frame once per descriptor and
                            // gather in place — no temporary Vec per
                            // DMA read.
                            Ok(host_pfn) => {
                                let start = payload.len();
                                payload.resize(start + d.len as usize, 0);
                                self.host_mem.read_into(
                                    Gpa::from_pfn(host_pfn).offset(d.addr.page_offset()),
                                    &mut payload[start..],
                                );
                            }
                            // A faulting DMA is dropped by the IOMMU;
                            // the frame never reaches the wire.
                            Err(_) => faulted = true,
                        }
                    }
                    self.virtio[leaf_dev].tx.push_used(chain.head, 0);
                    if !faulted {
                        self.nic.transmit(1, Frame { payload });
                    }
                }
            }
            IoModel::VirtualPassthrough => {
                // One doorbell exit, straight to L0 (the device is
                // L0's); the vhost backend drains the whole batch.
                let bar = self.virtio[0].pci().bar(0).unwrap().base;
                self.vmexit(
                    self.leaf_level(),
                    cpu,
                    ExitReason::EptMisconfig,
                    ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 1),
                );
            }
            IoModel::Virtio => {
                // One doorbell exit to the providing hypervisor; the
                // cascade forwards hop by hop (each hop reflected as
                // needed by the exit engine).
                let owner = self.leaf_level() - 1;
                let bar = self.virtio_dev(owner).pci().bar(0).unwrap().base;
                self.vmexit(
                    self.leaf_level(),
                    cpu,
                    ExitReason::EptMisconfig,
                    ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 1),
                );
            }
        }
        self.now(cpu)
    }

    /// Index of the virtio device the leaf VM drives.
    pub fn leaf_device_idx(&self) -> usize {
        match self.config.io_model {
            IoModel::VirtualPassthrough => 0,
            _ => self.virtio.len() - 1,
        }
    }

    /// A block I/O request from the leaf VM (`write` selects the data
    /// direction): one doorbell, a data copy per interposing level, a
    /// backend submit, and a completion interrupt.
    ///
    /// Storage follows the paper's testbed: the SSD is always a
    /// *virtual* block device (`cache=none`), so under physical NIC
    /// passthrough the disk still uses the cascaded virtio model —
    /// MySQL keeps paying guest hypervisor interventions for its log
    /// writes even when the network does not.
    pub fn guest_blk_io(&mut self, cpu: usize, bytes: u32, write: bool) -> Cycles {
        let t0 = self.now(cpu);
        // Driver side: build the request chain (writes also pay the
        // in-guest copy into the bounce buffer).
        self.compute(cpu, Cycles::new(150));
        if write {
            self.compute(cpu, self.costs.copy_cost(bytes as u64 / 4));
        }
        // A real request travels the blk queue: validated against the
        // device geometry, completed at the backend hop.
        let sector = (self.blk.queue.kick_count() * 64) % (1 << 20);
        let req = dvh_devices::virtio::blk::BlkRequest {
            op: if write {
                dvh_devices::virtio::blk::BlkOp::Write
            } else {
                dvh_devices::virtio::blk::BlkOp::Read
            },
            sector,
            len: bytes.div_ceil(512) * 512,
        };
        // Promoted from a debug assertion: an out-of-geometry request
        // would silently clip I/O cost accounting in release builds.
        assert!(
            self.blk.validate(req),
            "blk request outside device geometry"
        );
        let desc = Descriptor {
            addr: Gpa::from_pfn(LEAF_BUF_BASE_PFN + 48),
            len: req.len,
            device_writes: !write,
        };
        if self.blk.queue.add_chain(vec![desc]).is_err() {
            while self.blk.queue.pop_used().is_some() {}
            let _ = self.blk.queue.add_chain(vec![Descriptor {
                addr: Gpa::from_pfn(LEAF_BUF_BASE_PFN + 48),
                len: req.len,
                device_writes: !write,
            }]);
        }
        self.blk.queue.kick();
        let effective_vp = self.config.io_model == IoModel::VirtualPassthrough;
        self.pending_blk_bytes = Some(bytes as u64);
        if effective_vp {
            // The host's blk device is assigned through the levels,
            // like the NIC: one exit to L0.
            let bar = self.virtio[0].pci().bar(0).unwrap().base;
            self.vmexit(
                self.leaf_level(),
                cpu,
                ExitReason::EptMisconfig,
                ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 2),
            );
        } else {
            // Cascaded virtio (also the passthrough configuration:
            // there is no SR-IOV disk).
            let owner = self.leaf_level() - 1;
            let dev = if self.config.io_model == IoModel::Passthrough {
                // The blk cascade still exists even though net is
                // passed through; its doorbell belongs to the owner.
                owner.min(self.virtio.len() - 1)
            } else {
                owner
            };
            let bar = self.virtio[dev].pci().bar(0).unwrap().base;
            if owner == 0 {
                self.vmexit(
                    1,
                    cpu,
                    ExitReason::EptMisconfig,
                    ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 2),
                );
            } else {
                self.vmexit(
                    self.leaf_level(),
                    cpu,
                    ExitReason::EptMisconfig,
                    ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 2),
                );
            }
        }
        self.pending_blk_bytes = None;
        // Completion interrupt: direct when the blk device is VP'd
        // with vIOMMU posted interrupts (or at L1), otherwise relayed
        // by each intermediate hypervisor.
        if self.config.levels >= 2 && !(effective_vp && self.config.dvh.viommu_posted_interrupts) {
            self.relay_irq_for_blk(cpu);
        }
        let t = self.now(cpu);
        self.deliver_leaf_interrupt(cpu, 0x52, t, IrqPath::PostedDirect);
        self.now(cpu) - t0
    }

    /// Completion-side relay for block I/O through intermediate
    /// hypervisors (shared by the cascade and non-PI VP paths).
    fn relay_irq_for_blk(&mut self, cpu: usize) {
        let n = self.config.levels;
        for j in 1..n {
            self.stats.record_intervention(j);
            self.vmexit(
                self.leaf_level(),
                cpu,
                ExitReason::ExternalInterrupt,
                ExitQualification::default(),
            );
            self.exit_side_program(j, cpu);
            self.compute(cpu, self.costs.icr_emulate);
            self.compute(cpu, self.costs.event_injection);
            self.vmresume_insn(j, cpu);
        }
    }

    /// L0's doorbell handler: the kick reached the host's own virtio
    /// device (plain L1 virtio, the last cascade hop, or a
    /// virtual-passthrough kick from a nested VM).
    pub(crate) fn l0_doorbell(&mut self, cpu: usize, from_level: usize, _qual: &ExitQualification) {
        if from_level >= 2 {
            if self.mmio_doorbell_cached {
                // MMIO fast path: the GPA→device resolution is cached;
                // no EPT walk and no instruction decode.
                self.compute(cpu, Cycles::new(800));
            } else {
                // Virtual-passthrough from a nested VM, slow path: L0
                // walks the guest's EPT hierarchy to confirm the fault
                // is a genuine MMIO access and not a missing mapping —
                // the extra cost the paper measures in DevNotify-with-
                // DVH (Table 3).
                self.compute(cpu, self.costs.nested_walk_cost(4, 4));
                self.compute(cpu, self.costs.mmio_decode);
                self.compute(cpu, self.costs.mmio_bus_lookup);
                self.mmio_doorbell_cached = true;
            }
        } else {
            self.compute(cpu, self.costs.mmio_decode);
            self.compute(cpu, self.costs.mmio_bus_lookup);
        }
        self.compute(cpu, self.costs.ioeventfd_signal);
        if let Some(bytes) = self.pending_blk_bytes {
            // Block backend: complete the queued request, copy the
            // payload, and submit to the (cache=none) host storage
            // stack.
            if let Some(chain) = self.blk.queue.pop_avail() {
                let head = chain.head;
                self.blk.queue.push_used(head, 0);
                self.blk.queue.interrupt_sent();
            }
            self.compute(cpu, self.costs.copy_cost(bytes));
            self.compute(cpu, Cycles::new(800));
            return;
        }
        self.l0_vhost_service_tx(cpu);
    }

    /// L0's vhost backend drains the TX queue of its device and puts
    /// frames on the wire.
    fn l0_vhost_service_tx(&mut self, cpu: usize) {
        let mut q = std::mem::replace(
            &mut self.virtio[0].tx,
            dvh_devices::virtio::queue::VirtQueue::new(1),
        );
        let frames = match self.config.io_model {
            IoModel::VirtualPassthrough => {
                let mut shadow = self.shadow_io.take().unwrap_or_default();
                let frames = self.vhost[0].service_tx(&mut q, &self.host_mem, &mut shadow);
                self.shadow_io = Some(shadow);
                frames
            }
            _ => {
                // L1's own device: descriptors hold L1 GPAs; translate
                // through L0's stage table.
                let mut stage = std::mem::take(&mut self.l0_io_stage);
                let frames = self.vhost[0].service_tx(&mut q, &self.host_mem, &mut stage);
                self.l0_io_stage = stage;
                frames
            }
        };
        self.virtio[0].tx = q;
        for f in &frames {
            self.compute(cpu, self.costs.copy_cost(f.len() as u64));
        }
        self.compute(cpu, Cycles::new(150) * frames.len() as u64);
        for f in frames {
            self.nic.transmit(0, f);
        }
    }

    /// A cascade hypervisor's doorbell handler (`owner` ≥ 1): its vhost
    /// drains its device's queue, copies the payload, and re-transmits
    /// through the device one level down — whose doorbell is an MMIO
    /// write by `owner`, trapping again.
    pub(crate) fn owner_doorbell(&mut self, owner: usize, cpu: usize) {
        if let Some(bytes) = self.pending_blk_bytes {
            // Block cascade hop: copy and re-submit one level down.
            self.compute(cpu, self.costs.copy_cost(bytes));
            self.compute(cpu, Cycles::new(150));
            let next = owner - 1;
            let dev = next.min(self.virtio.len() - 1);
            let bar = self.virtio[dev].pci().bar(0).unwrap().base;
            self.vmexit(
                owner,
                cpu,
                ExitReason::EptMisconfig,
                ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 2),
            );
            return;
        }
        // Drain this level's queue (chains were queued by the level
        // above; the leaf's queue has real entries, intermediate hops
        // re-add them below).
        let mut moved: Vec<(u64, u32)> = Vec::new();
        while let Some(chain) = self.virtio_dev_mut(owner).tx.pop_avail() {
            for d in &chain.descs {
                moved.push((d.addr.pfn(), d.len));
            }
            let head = chain.head;
            self.virtio_dev_mut(owner).tx.push_used(head, 0);
        }
        for (_, len) in &moved {
            // The vhost copy between adjacent address spaces.
            self.compute(cpu, self.costs.copy_cost(*len as u64));
            self.compute(cpu, Cycles::new(150));
        }
        if moved.is_empty() {
            return;
        }
        // Re-queue one stage down: addresses shift by one stage offset.
        let next = owner - 1;
        for (pfn, len) in &moved {
            let desc = Descriptor {
                addr: Gpa::from_pfn(pfn + STAGE_PFN_OFFSET),
                len: *len,
                device_writes: false,
            };
            if self.virtio[next].tx.add_chain(vec![desc]).is_err() {
                while self.virtio[next].tx.pop_used().is_some() {}
                let _ = self.virtio[next].tx.add_chain(vec![Descriptor {
                    addr: Gpa::from_pfn(pfn + STAGE_PFN_OFFSET),
                    len: *len,
                    device_writes: false,
                }]);
            }
        }
        self.virtio[next].tx.kick();
        // Kick the next level's doorbell: an MMIO write executed by
        // the hypervisor at `owner`, i.e. guest code at level `owner`.
        let bar = self.virtio[next].pci().bar(0).unwrap().base;
        self.vmexit(
            owner,
            cpu,
            ExitReason::EptMisconfig,
            ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 1),
        );
    }

    /// An external packet arrives from the wire for the leaf vCPU on
    /// `dest`. Returns the time at which the leaf sees the RX
    /// interrupt.
    pub fn external_packet_arrival(&mut self, dest: usize, frame: Frame) -> Cycles {
        let bytes = frame.len() as u64;
        match self.config.io_model {
            IoModel::Passthrough => {
                // Device DMA straight into the leaf buffer via the
                // physical IOMMU, then a VT-d posted interrupt. No CPU
                // cost on the DMA side, no interposition (and hence no
                // dirty tracking — the migration story of §3.6).
                let vf = self.nic.function_bdf(1);
                self.post_rx_buffer(dest);
                let idx = self.leaf_device_idx();
                let mut q = std::mem::replace(
                    &mut self.virtio[idx].rx,
                    dvh_devices::virtio::queue::VirtQueue::new(1),
                );
                if let Some(dom) = self.phys_iommu.domain_mut(vf) {
                    let mut vhost = std::mem::take(&mut self.vhost[idx]);
                    vhost.deliver_rx(&mut q, &mut self.host_mem, dom, &frame, None);
                    self.vhost[idx] = vhost;
                }
                self.virtio[idx].rx = q;
                self.nic.receive(1, Frame { payload: vec![] });
                match self.rx_msix_vector(idx) {
                    Some(v) => {
                        let t = self.now(dest);
                        self.deliver_leaf_interrupt(dest, v, t, IrqPath::PostedDirect)
                    }
                    None => self.now(dest),
                }
            }
            IoModel::VirtualPassthrough => {
                // L0's vhost writes into the leaf buffer through the
                // shadow I/O table, dirtying pages (interposition is
                // preserved). Interrupt delivery depends on vIOMMU
                // posted-interrupt support.
                self.post_rx_buffer(dest);
                self.compute(dest, self.costs.copy_cost(bytes));
                self.compute(dest, Cycles::new(150));
                let mut host_dirty = DirtyBitmap::new();
                let mut q = std::mem::replace(
                    &mut self.virtio[0].rx,
                    dvh_devices::virtio::queue::VirtQueue::new(1),
                );
                let mut shadow = self.shadow_io.take().unwrap_or_default();
                let mut vhost = std::mem::take(&mut self.vhost[0]);
                vhost.deliver_rx(
                    &mut q,
                    &mut self.host_mem,
                    &mut shadow,
                    &frame,
                    Some(&mut host_dirty),
                );
                self.vhost[0] = vhost;
                self.shadow_io = Some(shadow);
                self.virtio[0].rx = q;
                let lvl = self.config.levels as u64;
                for host_pfn in host_dirty.harvest() {
                    self.leaf_dirty.mark_pfn(host_pfn - lvl * STAGE_PFN_OFFSET);
                    self.l1_dirty.mark_pfn(host_pfn - STAGE_PFN_OFFSET);
                }
                let Some(vector) = self.rx_msix_vector(0) else {
                    return self.now(dest);
                };
                // Resolve the device MSI through the innermost
                // vIOMMU's interrupt-remapping tables, as the hardware
                // (here: L0's emulation of it) would.
                let bdf = self.virtio[0].pci().bdf();
                let posted = match self.viommus.last() {
                    Some(vm) => matches!(
                        vm.unit().resolve_msi(
                            bdf,
                            dvh_devices::msi::MsiMessage::remappable(dest as u32, vector)
                        ),
                        dvh_devices::iommu::IrteTarget::Posted { .. }
                    ),
                    None => true, // L1: APICv handles it directly
                };
                let t = self.now(dest);
                if posted {
                    self.deliver_leaf_interrupt(dest, vector, t, IrqPath::PostedDirect)
                } else {
                    // Without vIOMMU PI support, each intermediate
                    // hypervisor relays the MSI (DVH-VP in Fig. 8).
                    self.relay_irq_through_chain(dest);
                    let t = self.now(dest);
                    self.deliver_leaf_interrupt(dest, vector, t, IrqPath::PostedDirect)
                }
            }
            IoModel::Virtio => {
                // Cascade: L0's vhost fills the L1 device, interrupts
                // L1; each level's backend copies and re-raises until
                // the leaf is reached.
                self.post_rx_buffer(dest);
                self.compute(dest, self.costs.copy_cost(bytes));
                self.compute(dest, Cycles::new(150));
                let n = self.config.levels;
                if n == 1 {
                    // Deliver into the leaf's queue for real.
                    let mut q = std::mem::replace(
                        &mut self.virtio[0].rx,
                        dvh_devices::virtio::queue::VirtQueue::new(1),
                    );
                    let mut stage = std::mem::take(&mut self.l0_io_stage);
                    let mut vhost = std::mem::take(&mut self.vhost[0]);
                    vhost.deliver_rx(&mut q, &mut self.host_mem, &mut stage, &frame, None);
                    self.vhost[0] = vhost;
                    self.l0_io_stage = stage;
                    self.virtio[0].rx = q;
                    let Some(vector) = self.rx_msix_vector(0) else {
                        return self.now(dest);
                    };
                    let t = self.now(dest);
                    return self.deliver_leaf_interrupt(dest, vector, t, IrqPath::PostedDirect);
                }
                // Materialize the payload at the canonical leaf buffer
                // so end-to-end integrity holds, then charge the
                // cascade costs level by level.
                let host = Gpa::from_pfn(self.leaf_host_pfn(LEAF_BUF_BASE_PFN));
                self.host_mem.write(host, &frame.payload);
                self.leaf_dirty.mark_pfn(LEAF_BUF_BASE_PFN);
                for j in 1..n {
                    // Kick hypervisor j: the leaf is running on this
                    // CPU, so the interrupt exits and the chain runs
                    // hv j's RX softirq.
                    self.stats.record_intervention(j);
                    self.vmexit(
                        self.leaf_level(),
                        dest,
                        ExitReason::ExternalInterrupt,
                        ExitQualification::default(),
                    );
                    self.exit_side_program(j, dest);
                    // vhost copy at level j plus re-raise to level j+1
                    // via its (emulated) posted-interrupt send.
                    self.compute(dest, self.costs.copy_cost(bytes));
                    self.compute(dest, Cycles::new(150));
                    self.compute(dest, self.costs.icr_emulate);
                    self.compute(dest, self.costs.pi_desc_update);
                    let icr = dvh_arch::apic::IcrValue::fixed(RX_VECTOR, dest as u32);
                    self.hv_wrmsr(j, dest, dvh_arch::msr::IA32_X2APIC_ICR, icr.encode());
                    self.entry_side_program(j, dest);
                    self.vmresume_insn(j, dest);
                }
                self.now(dest)
            }
        }
    }

    /// A coalesced receive burst: `packets` frames of `bytes` each
    /// arrive back-to-back and are delivered with a single interrupt
    /// (NAPI-style polling picks up the rest) — how all three I/O
    /// models behave under throughput load. Per-packet costs (copies
    /// at each interposing level) are still charged.
    pub fn net_rx_burst(&mut self, dest: usize, packets: u32, bytes: u32) -> Cycles {
        if packets == 0 {
            return self.now(dest);
        }
        // Copy costs for the coalesced remainder, at every level that
        // interposes on the data path.
        let interposing_levels: u64 = match self.config.io_model {
            IoModel::Passthrough => 0,
            IoModel::VirtualPassthrough => 1,
            IoModel::Virtio => self.config.levels as u64,
        };
        let extra = (packets - 1) as u64;
        let per_packet = self.costs.copy_cost(bytes as u64) + Cycles::new(150);
        self.compute(dest, per_packet * extra * interposing_levels);
        // One full interrupt-bearing delivery.
        self.external_packet_arrival(dest, Frame::patterned(bytes as usize, 7));
        self.now(dest)
    }

    /// Resolves the RX completion vector through the leaf device's
    /// MSI-X table; `None` means the entry is masked and the interrupt
    /// was latched pending (delivered on unmask).
    pub(crate) fn rx_msix_vector(&mut self, dev: usize) -> Option<u8> {
        self.virtio[dev].msix.trigger(1).map(|m| m.vector)
    }

    /// The guest unmasks the device's RX vector: any pending
    /// completion interrupt fires now.
    pub fn unmask_rx_vector(&mut self, cpu: usize) -> Option<Cycles> {
        let dev = self.leaf_device_idx();
        let msg = self.virtio[dev].msix.unmask(1)?;
        let t = self.now(cpu);
        Some(self.deliver_leaf_interrupt(cpu, msg.vector, t, IrqPath::PostedDirect))
    }

    /// Ensures the leaf's RX queue has a buffer posted.
    fn post_rx_buffer(&mut self, _cpu: usize) {
        let idx = self.leaf_device_idx();
        while self.virtio[idx].rx.pop_used().is_some() {}
        if self.virtio[idx].rx.avail_len() < 4 {
            let _ = self.virtio[idx].rx.add_chain(vec![Descriptor {
                addr: Gpa::from_pfn(LEAF_BUF_BASE_PFN + 32),
                len: 4096,
                device_writes: true,
            }]);
        }
    }

    /// Relays a device MSI through every intermediate hypervisor
    /// (virtual-passthrough without vIOMMU posted-interrupt support).
    fn relay_irq_through_chain(&mut self, dest: usize) {
        let n = self.config.levels;
        for j in 1..n {
            self.stats.record_intervention(j);
            self.vmexit(
                self.leaf_level(),
                dest,
                ExitReason::ExternalInterrupt,
                ExitQualification::default(),
            );
            // The relaying hypervisor takes the interrupt, remaps it,
            // and re-injects — a lighter path than a full emulated
            // exit (no reason-specific handling, no full world
            // switch on the exit side is re-done by deeper levels).
            self.exit_side_program(j, dest);
            self.compute(dest, self.costs.icr_emulate);
            self.compute(dest, self.costs.event_injection);
            self.vmresume_insn(j, dest);
        }
    }
}
