//! Memory virtualization: per-level extended page tables, lazy
//! population, and the nested EPT-violation path.
//!
//! Each hypervisor level maintains an EPT for its VM (`ept[k]` is the
//! stage built by the hypervisor at level `k` mapping level-(k+1) GPAs
//! one stage down). Guest memory starts unmapped; the first touch of a
//! page faults:
//!
//! * if the missing stage belongs to L0 (or all guest stages are
//!   present so only the merged shadow needs extending), L0 fixes its
//!   shadow EPT directly — cheap;
//! * if a *guest* hypervisor's stage is missing the page, the EPT
//!   violation is reflected to it (KVM's nested EPT logic), and the
//!   guest hypervisor's page-table writes and TLB invalidations trap —
//!   so nested VM warm-up suffers exit multiplication too, another
//!   place DVH cannot help (like hypercalls) but that steady-state
//!   execution amortizes away.

use crate::world::{World, STAGE_PFN_OFFSET};
use dvh_arch::vmx::{ExitQualification, ExitReason};
use dvh_arch::Cycles;
use dvh_memory::{Gpa, Perms};

impl World {
    /// Whether leaf page `leaf_pfn` is mapped through every stage.
    pub fn leaf_page_mapped(&self, leaf_pfn: u64) -> bool {
        let n = self.config.levels;
        (0..n).all(|k| {
            // Stage k maps level-(k+1) pages; the leaf page appears at
            // stage k shifted by the stages above it.
            let pfn_at_stage = leaf_pfn + (n - 1 - k) as u64 * STAGE_PFN_OFFSET;
            self.epts[k].table().lookup(pfn_at_stage).is_some()
        })
    }

    /// A guest access (read or write) to leaf page `leaf_pfn`. If the
    /// page is mapped through every stage this costs a TLB hit; missing
    /// stages fault one at a time, innermost first, exactly as the
    /// hardware would re-execute the faulting instruction.
    pub fn guest_touch_page(&mut self, cpu: usize, leaf_pfn: u64) {
        let n = self.config.levels;
        loop {
            // Find the deepest missing stage.
            let missing = (0..n).rev().find(|k| {
                let pfn_at_stage = leaf_pfn + (n - 1 - k) as u64 * STAGE_PFN_OFFSET;
                self.epts[*k].table().lookup(pfn_at_stage).is_none()
            });
            let Some(stage) = missing else {
                // Fully mapped: a TLB/EPT-cached access.
                self.compute(cpu, Cycles::new(5));
                return;
            };
            // The access faults; the exit reaches L0 first, always.
            self.vmexit(
                n,
                cpu,
                ExitReason::EptViolation,
                ExitQualification {
                    guest_physical: Gpa::from_pfn(leaf_pfn).raw(),
                    raw: stage as u64,
                    ..ExitQualification::default()
                },
            );
        }
    }

    /// The EPT-violation handler body run by the hypervisor owning the
    /// missing stage (`stage`): allocate a backing page and install
    /// the mapping. Called from the exit engine; the caller has
    /// already charged the reflection path if `stage >= 1`.
    pub(crate) fn populate_stage(&mut self, stage: usize, cpu: usize, leaf_pfn: u64) {
        let n = self.config.levels;
        let pfn_in = leaf_pfn + (n - 1 - stage) as u64 * STAGE_PFN_OFFSET;
        let pfn_out = pfn_in + STAGE_PFN_OFFSET;
        // Page allocation + page-table construction software path.
        self.compute(cpu, Cycles::new(1_800));
        self.ept_stage_mut(stage).map_ram(
            Gpa::from_pfn(pfn_in),
            dvh_memory::Hpa::from_pfn(pfn_out),
            1,
        );
        if stage == 0 {
            // L0 also extends the merged shadow EPT for deep guests.
            self.compute(cpu, Cycles::new(600));
        } else {
            // A guest hypervisor writes its page tables (plain memory)
            // but must invalidate the TLB, which traps.
            self.hv_invept(stage, cpu);
        }
    }

    /// Populates all stages for `pages` leaf pages starting at
    /// `first_pfn` without charging costs — test and benchmark setup.
    pub fn prepopulate_pages(&mut self, first_pfn: u64, pages: u64) {
        let n = self.config.levels;
        for k in 0..n {
            let base = first_pfn + (n - 1 - k) as u64 * STAGE_PFN_OFFSET;
            self.epts[k].map_ram(
                Gpa::from_pfn(base),
                dvh_memory::Hpa::from_pfn(base + STAGE_PFN_OFFSET),
                pages,
            );
        }
    }

    /// Translates a leaf GPA to a host PFN by walking every stage —
    /// must agree with the canonical [`World::leaf_host_pfn`] for
    /// mapped pages. Used by tests as a consistency oracle.
    pub fn walk_leaf_to_host(&mut self, leaf_pfn: u64) -> Option<u64> {
        let n = self.config.levels;
        let mut pfn = leaf_pfn;
        for k in (0..n).rev() {
            pfn = self.epts[k].table_mut().translate(pfn, Perms::RO).ok()?.pfn;
        }
        Some(pfn)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use dvh_arch::costs::CostModel;

    fn world(levels: usize) -> World {
        World::new(CostModel::calibrated(), WorldConfig::baseline(levels))
    }

    #[test]
    fn first_touch_faults_then_is_free() {
        let mut w = world(1);
        assert!(!w.leaf_page_mapped(0x500));
        w.guest_touch_page(0, 0x500);
        assert!(w.leaf_page_mapped(0x500));
        let exits = w.stats.exits_with(1, ExitReason::EptViolation);
        assert_eq!(exits, 1);
        // Second touch: no further exits.
        w.guest_touch_page(0, 0x500);
        assert_eq!(w.stats.exits_with(1, ExitReason::EptViolation), exits);
    }

    #[test]
    fn nested_first_touch_faults_per_stage() {
        let mut w = world(2);
        w.guest_touch_page(0, 0x600);
        assert!(w.leaf_page_mapped(0x600));
        // Two stages were missing: two EPT violations from the leaf.
        assert_eq!(w.stats.exits_with(2, ExitReason::EptViolation), 2);
        // One of them was the guest hypervisor's stage: reflected.
        assert!(w.stats.total_interventions() >= 1);
    }

    #[test]
    fn nested_fault_is_much_more_expensive_than_l1_fault() {
        let mut l1 = world(1);
        let t0 = l1.now(0);
        l1.guest_touch_page(0, 0x700);
        let c1 = (l1.now(0) - t0).as_u64();

        let mut l2 = world(2);
        let t0 = l2.now(0);
        l2.guest_touch_page(0, 0x700);
        let c2 = (l2.now(0) - t0).as_u64();
        assert!(c2 > 5 * c1, "L2 fault {c2} vs L1 fault {c1}");
    }

    #[test]
    fn walk_agrees_with_canonical_layout() {
        let mut w = world(3);
        w.guest_touch_page(0, 0x123);
        assert_eq!(w.walk_leaf_to_host(0x123), Some(w.leaf_host_pfn(0x123)));
        assert_eq!(w.walk_leaf_to_host(0x999), None);
    }

    #[test]
    fn prepopulate_skips_all_faults() {
        let mut w = world(3);
        w.prepopulate_pages(0x200, 16);
        let before = w.stats.total_exits();
        for p in 0..16 {
            w.guest_touch_page(0, 0x200 + p);
        }
        assert_eq!(w.stats.total_exits(), before);
    }

    #[test]
    fn steady_state_amortizes_warmup() {
        // Warm-up is expensive nested, but after it the same accesses
        // are free — the reason the paper's steady-state benchmarks
        // don't show memory-virtualization costs.
        let mut w = world(2);
        for p in 0..8 {
            w.guest_touch_page(0, 0x300 + p);
        }
        let after_warmup = w.now(0);
        for _ in 0..100 {
            for p in 0..8 {
                w.guest_touch_page(0, 0x300 + p);
            }
        }
        let steady = (w.now(0) - after_warmup).as_u64();
        assert_eq!(steady, 100 * 8 * 5, "steady-state touches are TLB hits");
    }
}
