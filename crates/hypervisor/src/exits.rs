//! The exit engine: hardware exits, L0 dispatch, reflection to guest
//! hypervisors, and the emergent exit-multiplication recursion.
//!
//! Control flow follows the paper's Fig. 1a exactly:
//!
//! 1. Any privileged action by software at level k ≥ 1 causes a
//!    hardware exit that lands at L0 (single-level architectural
//!    support, §2).
//! 2. L0 either handles the exit itself (its own guest's exits, exits
//!    that architecturally belong to it, or DVH-intercepted exits —
//!    Fig. 1b) or *reflects* it to the owning guest hypervisor.
//! 3. A reflected exit makes the guest hypervisor run its exit handler
//!    as ordinary guest code — and every privileged instruction in
//!    that handler traps again, recursively. Nothing in this file
//!    knows "an L2 exit costs 24x an L1 exit"; that ratio emerges from
//!    the recursion.

use crate::config::IoModel;
use crate::world::World;
use dvh_arch::apic::IcrValue;
use dvh_arch::msr;
use dvh_arch::vmx::{ctrl, field, ExitQualification, ExitReason};

/// What the owner's reason handler wants done after it ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HandlerFlow {
    /// Resume the exiting guest (the common case).
    Resume,
    /// The vCPU blocked (HLT); do not resume.
    Halted,
}

impl World {
    /// A hardware VM exit from the guest at `from_level` on `cpu`,
    /// handled to completion: when this returns, all costs for the
    /// full round trip (including re-entry, or the halt) are charged.
    pub fn vmexit(
        &mut self,
        from_level: usize,
        cpu: usize,
        reason: ExitReason,
        qual: ExitQualification,
    ) {
        // Load-bearing in release builds too: a bad level would charge
        // cycles to a nonexistent layer and corrupt the attribution
        // ledger (checked by dvh-checker's cycle-conservation lint).
        assert!(
            from_level >= 1 && from_level <= self.leaf_level(),
            "vmexit from level {from_level} outside 1..={}",
            self.leaf_level()
        );
        let outermost = self.exit_depth[cpu] == 0;
        let t0 = if outermost { Some(self.now(cpu)) } else { None };
        self.exit_depth[cpu] += 1;
        self.vmexit_inner(from_level, cpu, reason, qual);
        self.exit_depth[cpu] -= 1;
        if let Some(t0) = t0 {
            let spent = self.now(cpu) - t0;
            self.stats.attribute_cycles(from_level, reason, spent);
            // The metrics twin of the ledger line above; the checker's
            // metrics pass proves the two stay equal.
            self.observe(|m| m.observe_exit(from_level, reason, spent));
            self.trace(|w| crate::trace::TraceEvent::Completed {
                at: w.now(cpu),
                cpu,
                from_level,
                reason,
                spent,
            });
        } else {
            // A nested exit: close its interval so the causal tree of
            // the enclosing outermost exit can be rebuilt exactly.
            self.trace(|w| crate::trace::TraceEvent::Returned {
                at: w.now(cpu),
                cpu,
                from_level,
                reason,
            });
        }
    }

    fn vmexit_inner(
        &mut self,
        from_level: usize,
        cpu: usize,
        reason: ExitReason,
        qual: ExitQualification,
    ) {
        // Record the exit at the moment it occurs (before any cycles
        // are charged) so a Completed event's `spent` equals exactly
        // `completed.at - exit.at` for outermost exits.
        self.stats.record_exit(from_level, reason);
        let qual_field = qual.vmcs_field;
        self.trace(|w| crate::trace::TraceEvent::Exit {
            at: w.now(cpu),
            cpu,
            from_level,
            reason,
            vmcs_field: matches!(reason, ExitReason::Vmread | ExitReason::Vmwrite)
                .then_some(qual_field),
        });
        self.compute(cpu, self.costs.vmexit_to_root);
        self.compute(cpu, self.costs.l0_dispatch);

        // EPT violations are owned by whichever hypervisor's stage is
        // missing the page (encoded in the qualification by the fault
        // path), not necessarily the VM's immediate parent.
        if reason == ExitReason::EptViolation {
            let stage = qual.raw as usize;
            if stage == 0 || from_level == 1 {
                self.l0_handle(cpu, from_level, reason, &qual);
            } else {
                self.reflect_to(stage, from_level, cpu, reason, qual);
            }
            return;
        }
        // Exits from L0's own guest are always L0's business.
        if from_level == 1 {
            self.l0_handle(cpu, from_level, reason, &qual);
            return;
        }
        // Architectural rules that let L0 keep a nested exit.
        if self.l0_owns(cpu, from_level, reason, &qual) {
            self.l0_handle(cpu, from_level, reason, &qual);
            return;
        }
        // DVH extensions (virtual hardware) get the next chance. The
        // take/restore dance (needed so extensions can re-enter the
        // world) is skipped entirely when no extension is registered —
        // the common case for non-DVH configurations, on the hot path.
        if !self.extensions.is_empty() {
            let mut exts = std::mem::take(&mut self.extensions);
            let mut handled = None;
            for e in exts.iter_mut() {
                if e.try_intercept(self, cpu, from_level, reason, &qual)
                    == crate::extension::Intercept::Handled
                {
                    handled = Some(e.name());
                    break;
                }
            }
            self.extensions = exts;
            if let Some(name) = handled {
                self.stats.record_dvh(name);
                self.observe(|m| m.record_dvh(name));
                self.trace(|w| crate::trace::TraceEvent::DvhIntercept {
                    at: w.now(cpu),
                    cpu,
                    mechanism: name,
                });
                return;
            }
        }
        // Otherwise: reflect to the guest hypervisor that owns the VM.
        self.reflect(from_level, cpu, reason, qual);
    }

    /// Architectural reasons for L0 to keep an exit from a nested VM,
    /// mirroring KVM's `nested_vmx_l0_wants_exit`.
    fn l0_owns(
        &self,
        cpu: usize,
        from_level: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) -> bool {
        match reason {
            // External interrupts are always taken by the host.
            ExitReason::ExternalInterrupt => true,
            // HLT: reflected only if the guest hypervisor asked to
            // intercept it in its VMCS. Virtual idle (§3.4) works by
            // guest hypervisors *clearing* this bit.
            ExitReason::Hlt => !self
                .vmcs(from_level - 1, cpu)
                .has_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING),
            // MMIO to a region backed by an L0-owned device: under
            // virtual-passthrough the nested VM's doorbell writes land
            // on L0's virtio device, so L0 handles them directly —
            // this is the essence of Fig. 2c and needs no DVH-specific
            // hypervisor changes.
            ExitReason::EptMisconfig => {
                self.config.io_model == IoModel::VirtualPassthrough
                    && self.gpa_is_l0_device(qual.guest_physical)
            }
            _ => false,
        }
    }

    /// Whether `gpa` falls in the BAR of the L0-provided virtio device.
    pub(crate) fn gpa_is_l0_device(&self, gpa: u64) -> bool {
        let Some(bar) = self.virtio[0].pci().bar(0) else {
            return false;
        };
        gpa >= bar.base && gpa < bar.base + bar.len
    }

    // ---- L0 native handling ---------------------------------------------

    /// L0's native handler for an exit it owns, including the VM entry
    /// back into the guest.
    pub(crate) fn l0_handle(
        &mut self,
        cpu: usize,
        from_level: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) {
        // Read the hot exit fields, natively.
        for f in [
            field::VM_EXIT_REASON,
            field::EXIT_QUALIFICATION,
            field::GUEST_RIP,
            field::VM_EXIT_INSTRUCTION_LEN,
        ] {
            self.hv_vmread(0, cpu, f);
        }
        let flow = match reason {
            ExitReason::Vmcall => {
                self.compute(cpu, self.costs.hypercall_body);
                HandlerFlow::Resume
            }
            ExitReason::MsrWrite => self.l0_wrmsr_body(cpu, from_level, qual),
            ExitReason::MsrRead => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                HandlerFlow::Resume
            }
            ExitReason::Hlt => {
                self.l0_halt_vcpu(cpu, from_level);
                HandlerFlow::Halted
            }
            ExitReason::EptViolation => {
                let leaf_pfn = qual.guest_physical >> 12;
                self.populate_stage(0, cpu, leaf_pfn);
                // The faulting instruction re-executes: enter without
                // advancing RIP.
                self.l0_vmentry(cpu);
                return;
            }
            ExitReason::EptMisconfig => {
                self.l0_doorbell(cpu, from_level, qual);
                HandlerFlow::Resume
            }
            ExitReason::Vmread | ExitReason::Vmwrite | ExitReason::Vmptrst => {
                // Emulate the VMX instruction for L1 against vmcs12 in
                // memory (the value movement itself is done by the
                // primitive that raised this exit).
                self.compute(cpu, self.costs.vmx_insn_emulate);
                HandlerFlow::Resume
            }
            ExitReason::Vmptrld | ExitReason::Vmclear => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.compute(cpu, self.costs.vmptrld);
                HandlerFlow::Resume
            }
            ExitReason::Invept | ExitReason::Invvpid => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.compute(cpu, self.costs.invept);
                HandlerFlow::Resume
            }
            ExitReason::Vmresume | ExitReason::Vmlaunch => {
                // Emulate the nested VM entry: merge vmcs12 into
                // vmcs02 and launch it (KVM's prepare_vmcs02).
                self.compute(cpu, self.costs.vmcs02_merge);
                for f in field::VMCS12_DIRTY_FIELDS {
                    let v = self.vmcs(from_level, cpu).read(*f);
                    self.hv_vmwrite(0, cpu, *f, v);
                }
                // The merge is where hardware's VM-entry checks run on
                // the guest hypervisor's vmcs12.
                self.on_vmentry(from_level, cpu);
                self.hv_vmptrld(0, cpu);
                self.l0_vmentry(cpu);
                return; // entry is the resume; no RIP advance
            }
            ExitReason::ApicWrite | ExitReason::ApicAccess | ExitReason::EoiInduced => {
                self.compute(cpu, self.costs.pi_desc_update);
                HandlerFlow::Resume
            }
            ExitReason::ExternalInterrupt => {
                self.compute(cpu, self.costs.external_intr);
                HandlerFlow::Resume
            }
            _ => HandlerFlow::Resume,
        };
        if flow == HandlerFlow::Resume {
            self.hv_vmwrite(0, cpu, field::GUEST_RIP, 0);
            self.l0_vmentry(cpu);
        }
    }

    /// L0's `wrmsr` exit body, dispatching on the MSR.
    fn l0_wrmsr_body(
        &mut self,
        cpu: usize,
        from_level: usize,
        qual: &ExitQualification,
    ) -> HandlerFlow {
        match qual.msr {
            msr::IA32_TSC_DEADLINE => {
                // Emulate the LAPIC timer with an hrtimer, then arm
                // the hardware timer.
                self.compute(cpu, self.costs.rdtsc);
                self.compute(cpu, self.costs.hrtimer_program);
                self.hv_wrmsr(0, cpu, msr::IA32_TSC_DEADLINE, qual.msr_value);
                if from_level == 1 {
                    self.timers[cpu].arm(qual.msr_value);
                }
            }
            msr::IA32_X2APIC_ICR => {
                // Send the IPI: update the destination's PI descriptor
                // and fire the physical notification.
                let icr = IcrValue::decode(qual.msr_value);
                self.compute(cpu, self.costs.icr_emulate);
                self.compute(cpu, self.costs.pi_desc_update);
                self.send_physical_ipi(cpu, icr);
            }
            _ => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
            }
        }
        HandlerFlow::Resume
    }

    // ---- Reflection to guest hypervisors ---------------------------------

    /// Reflects an exit from `from_level` to its owning guest
    /// hypervisor at `from_level - 1`, running the full forwarding
    /// chain, the owner's handler, and the resume chain.
    fn reflect(
        &mut self,
        from_level: usize,
        cpu: usize,
        reason: ExitReason,
        qual: ExitQualification,
    ) {
        self.reflect_to(from_level - 1, from_level, cpu, reason, qual);
    }

    /// Reflects an exit to an explicit owning hypervisor — used for
    /// EPT violations (owned by whichever hypervisor's stage misses
    /// the page) and by DVH extensions implementing §3.5's partial
    /// recursive enablement, where a timer access is forwarded only as
    /// far as the first hypervisor below a disabled level.
    pub fn reflect_to(
        &mut self,
        owner: usize,
        from_level: usize,
        cpu: usize,
        reason: ExitReason,
        qual: ExitQualification,
    ) {
        // Promoted from a debug assertion: reflecting "to L0" would
        // silently loop an exit back into the host and double-charge
        // it; fail loudly in release builds as well.
        assert!(
            owner >= 1,
            "cannot reflect an exit to L0 (owner must be >= 1)"
        );
        self.stats.record_intervention(owner);
        self.trace(|w| crate::trace::TraceEvent::Intervention {
            at: w.now(cpu),
            cpu,
            hv_level: owner,
            reason,
        });
        // Intervention latency spans the whole delivery: forwarding
        // chain, owner handler, and resume. Reading the clock twice is
        // gated so the disabled path stays a single branch.
        let obs_t0 = if self.metrics_on {
            Some(self.now(cpu))
        } else {
            None
        };

        // L0's native reflect step: decide the exit is not ours, build
        // the synthetic exit state in vmcs12, switch to vmcs01, enter L1.
        self.compute(cpu, self.costs.nested_exit_triage);
        for f in [
            field::VM_EXIT_REASON,
            field::EXIT_QUALIFICATION,
            field::VM_EXIT_INTR_INFO,
            field::IDT_VECTORING_INFO,
        ] {
            self.hv_vmread(0, cpu, f);
        }
        self.compute(cpu, self.costs.nested_reflect_build);
        self.write_synthetic_exit(1, cpu, reason, &qual);
        self.hv_vmptrld(0, cpu);
        self.l0_vmentry(cpu);

        // Intermediate hypervisors forward the exit upward: each takes
        // a full world switch, triages, rebuilds exit state for the
        // next hypervisor, and resumes it.
        for j in 1..owner {
            self.exit_side_program(j, cpu);
            self.compute(cpu, self.costs.nested_exit_triage);
            self.compute(cpu, self.costs.nested_reflect_build);
            self.write_synthetic_exit(j + 1, cpu, reason, &qual);
            self.entry_side_program(j, cpu);
            self.vmresume_insn(j, cpu);
        }

        // The owner handles the exit for its nested VM.
        self.exit_side_program(owner, cpu);
        let flow = self.owner_reason_handler(owner, cpu, from_level, reason, &qual);
        if flow == HandlerFlow::Resume {
            self.entry_side_program(owner, cpu);
            self.vmresume_insn(owner, cpu);
        }
        if let Some(t0) = obs_t0 {
            let spent = self.now(cpu) - t0;
            self.observe(|m| m.observe_intervention(owner, spent));
        }
    }

    /// Writes synthetic exit state into the VMCS the hypervisor at
    /// `reader_level` will read (its "vmcs12"). In-memory stores for
    /// the writer; the read cost is charged when the reader reads.
    fn write_synthetic_exit(
        &mut self,
        reader_level: usize,
        cpu: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) {
        let m = self.vmcs_mut(reader_level, cpu);
        m.write(field::VM_EXIT_REASON, reason.number() as u64);
        m.write(field::EXIT_QUALIFICATION, qual.raw);
        m.write(field::GUEST_PHYSICAL_ADDRESS, qual.guest_physical);
    }

    /// The `vmresume` instruction executed by the hypervisor at
    /// `level`: native for L0, a trapped-and-emulated VMX instruction
    /// for everyone else. After it completes, the hardware is running
    /// the deepest guest again.
    pub(crate) fn vmresume_insn(&mut self, level: usize, cpu: usize) {
        if level == 0 {
            self.hv_vmptrld(0, cpu);
            self.l0_vmentry(cpu);
        } else {
            self.vmexit(
                level,
                cpu,
                ExitReason::Vmresume,
                ExitQualification::default(),
            );
        }
    }

    /// The exit-side world-switch program of the hypervisor at
    /// `level` ≥ 1 (see [`crate::profile::HvProfile`]).
    pub(crate) fn exit_side_program(&mut self, level: usize, cpu: usize) {
        // Iterate the profile's field lists by index: `hv_vmread` takes
        // `&mut self` (it may recursively vmexit and re-enter this very
        // function for an intermediate level), so the lists cannot be
        // borrowed across the call — but copying out one `u32` per step
        // keeps this allocation-free where it used to clone both Vecs
        // on every single exit.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.profile.hot_reads.len() {
            let f = self.profile.hot_reads[i];
            self.hv_vmread(level, cpu, f);
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.profile.cold_reads.len() {
            let f = self.profile.cold_reads[i];
            self.hv_vmread(level, cpu, f);
        }
        for _ in 0..self.profile.exit_msr_reads {
            self.hv_rdmsr(level, cpu, 0x48 /* IA32_SPEC_CTRL */);
        }
        self.compute(cpu, self.profile.exit_software);
    }

    /// The entry-side world-switch program of the hypervisor at
    /// `level` ≥ 1.
    pub(crate) fn entry_side_program(&mut self, level: usize, cpu: usize) {
        // Index iteration for the same reentrancy reason as
        // `exit_side_program`: no per-exit clone of the field lists.
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.profile.hot_writes.len() {
            let f = self.profile.hot_writes[i];
            let v = self.vmcs(level, cpu).read(f);
            self.hv_vmwrite(level, cpu, f, v);
        }
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.profile.cold_writes.len() {
            let f = self.profile.cold_writes[i];
            let v = self.vmcs(level, cpu).read(f);
            self.hv_vmwrite(level, cpu, f, v);
        }
        for i in 0..self.profile.entry_msr_writes {
            if i == 0 {
                self.hv_wrmsr(level, cpu, 0x48 /* IA32_SPEC_CTRL */, 0);
            } else {
                // hrtimer re-arm for the hypervisor's own tick.
                self.hv_wrmsr(level, cpu, msr::IA32_TSC_DEADLINE, u64::MAX);
            }
        }
        for _ in 0..self.profile.apic_maintenance {
            if level == 1 {
                // APICv covers L1's own APIC accesses.
                self.compute(cpu, self.costs.pi_desc_update);
            } else {
                self.vmexit(
                    level,
                    cpu,
                    ExitReason::ApicWrite,
                    ExitQualification::default(),
                );
            }
        }
        self.compute(cpu, self.profile.entry_software);
    }

    /// The reason-specific handler run by a guest hypervisor (`owner`
    /// ≥ 1) emulating hardware for its nested VM at `from_level`.
    fn owner_reason_handler(
        &mut self,
        owner: usize,
        cpu: usize,
        from_level: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) -> HandlerFlow {
        match reason {
            ExitReason::Vmcall => {
                self.compute(cpu, self.costs.hypercall_body);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::MsrWrite => match qual.msr {
                msr::IA32_TSC_DEADLINE => {
                    // Emulate the nested VM's timer with the owner's
                    // hrtimer machinery. The owner consults the TSC
                    // offset it programmed for the nested VM (a cold
                    // VMCS field) and arming its own hardware timer is
                    // itself a trapped wrmsr — exit multiplication.
                    self.hv_vmread(owner, cpu, field::TSC_OFFSET);
                    self.compute(cpu, self.costs.rdtsc);
                    self.compute(cpu, self.costs.hrtimer_program);
                    if from_level == self.leaf_level() {
                        self.timers[cpu].arm(qual.msr_value);
                    }
                    self.hv_wrmsr(owner, cpu, msr::IA32_TSC_DEADLINE, qual.msr_value);
                    self.advance_guest_rip(owner, cpu);
                    HandlerFlow::Resume
                }
                msr::IA32_X2APIC_ICR => {
                    // Fig. 4: the owner updates the destination's PI
                    // descriptor and asks the hardware (via its own
                    // trapped ICR write) to send the posted interrupt.
                    self.compute(cpu, self.costs.icr_emulate);
                    self.compute(cpu, self.costs.pi_desc_update);
                    self.hv_wrmsr(owner, cpu, msr::IA32_X2APIC_ICR, qual.msr_value);
                    self.advance_guest_rip(owner, cpu);
                    HandlerFlow::Resume
                }
                _ => {
                    self.compute(cpu, self.costs.vmx_insn_emulate);
                    self.advance_guest_rip(owner, cpu);
                    HandlerFlow::Resume
                }
            },
            ExitReason::MsrRead => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::Hlt => {
                // Block the nested vCPU; with nothing else to run, the
                // owner idles too — recursively, down to L0.
                self.compute(cpu, self.costs.vcpu_block);
                self.push_halt_level(cpu, owner);
                self.vmexit(owner, cpu, ExitReason::Hlt, ExitQualification::default());
                HandlerFlow::Halted
            }
            ExitReason::EptViolation => {
                // The owner's EPT stage lacks the page: populate it
                // (its own TLB invalidation traps), then resume; the
                // faulting access re-executes, so no RIP advance.
                let leaf_pfn = qual.guest_physical >> 12;
                self.populate_stage(owner, cpu, leaf_pfn);
                HandlerFlow::Resume
            }
            ExitReason::EptMisconfig => {
                // The nested VM kicked the doorbell of the virtio
                // device this owner provides (cascade model). MMIO
                // emulation decodes the guest instruction: it needs the
                // faulting linear address (a cold VMCS field) and the
                // instruction bytes (a guest page-table walk).
                self.hv_vmread(owner, cpu, field::GUEST_PHYSICAL_ADDRESS);
                self.hv_vmread(owner, cpu, field::GUEST_LINEAR_ADDRESS);
                self.compute(cpu, self.costs.walk_mem_ref * 4);
                self.compute(cpu, self.costs.mmio_decode);
                self.compute(cpu, self.costs.mmio_bus_lookup);
                self.compute(cpu, self.costs.ioeventfd_signal);
                self.owner_doorbell(owner, cpu);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::Vmread | ExitReason::Vmwrite | ExitReason::Vmptrst => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::Vmptrld | ExitReason::Vmclear => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.hv_vmptrld(owner, cpu);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::Invept | ExitReason::Invvpid => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.hv_invept(owner, cpu);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::Vmresume | ExitReason::Vmlaunch => {
                // Emulate the nested hypervisor's VM entry: merge its
                // vmcs12 into the owner's vmcs02-equivalent. Every
                // field write is a (mostly cold) VMCS access by the
                // owner.
                self.compute(cpu, self.costs.vmcs02_merge);
                for f in field::VMCS12_DIRTY_FIELDS {
                    let v = self.vmcs(from_level, cpu).read(*f);
                    self.hv_vmwrite(owner, cpu, *f, v);
                }
                self.on_vmentry(from_level, cpu);
                self.hv_vmptrld(owner, cpu);
                HandlerFlow::Resume
            }
            ExitReason::ApicWrite | ExitReason::ApicAccess | ExitReason::EoiInduced => {
                self.compute(cpu, self.costs.pi_desc_update);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
            _ => {
                self.compute(cpu, self.costs.vmx_insn_emulate);
                self.advance_guest_rip(owner, cpu);
                HandlerFlow::Resume
            }
        }
    }

    /// Advances the exiting guest's RIP past the emulated instruction.
    fn advance_guest_rip(&mut self, owner: usize, cpu: usize) {
        let rip = self.vmcs(owner, cpu).read(field::GUEST_RIP);
        self.hv_vmwrite(owner, cpu, field::GUEST_RIP, rip.wrapping_add(3));
    }

    /// Combined TSC offset from L0 down to (and including) the
    /// hypervisor at `upto` — what the host needs to emulate a nested
    /// VM's timer with the correct time base (§3.2).
    pub fn combined_tsc_offset(&self, upto: usize, cpu: usize) -> u64 {
        (0..=upto)
            .map(|k| self.vmcs(k, cpu).read(field::TSC_OFFSET))
            .fold(0u64, u64::wrapping_add)
    }
}
