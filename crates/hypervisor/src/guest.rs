//! Guest-visible operations: what leaf-VM software can do.
//!
//! These are the entry points workloads drive. Each models one
//! architectural action by the guest OS in the leaf VM and runs the
//! whole machine reaction to completion (synchronously, as the paper's
//! microbenchmarks measure them).

use crate::world::World;
use dvh_arch::apic::IcrValue;
use dvh_arch::msr;
use dvh_arch::vmx::{ExitQualification, ExitReason};
use dvh_arch::Cycles;

impl World {
    /// The guest executes `vmcall` (the Hypercall microbenchmark,
    /// Table 1): switch to the (guest) hypervisor and immediately back.
    /// Returns elapsed cycles on `cpu`.
    pub fn guest_hypercall(&mut self, cpu: usize) -> Cycles {
        let t0 = self.now(cpu);
        self.vmexit(
            self.leaf_level(),
            cpu,
            ExitReason::Vmcall,
            ExitQualification::default(),
        );
        self.now(cpu) - t0
    }

    /// The guest programs its LAPIC timer in TSC-deadline mode (the
    /// ProgramTimer microbenchmark). Returns elapsed cycles.
    pub fn guest_program_timer(&mut self, cpu: usize, deadline: u64) -> Cycles {
        let t0 = self.now(cpu);
        self.vmexit(
            self.leaf_level(),
            cpu,
            ExitReason::MsrWrite,
            ExitQualification::msr_write(msr::IA32_TSC_DEADLINE, deadline),
        );
        self.now(cpu) - t0
    }

    /// The guest sends a fixed IPI to another of its vCPUs (the
    /// SendIPI microbenchmark measures send + receive with an idle
    /// destination). Returns `(sender_elapsed, receive_completion)` —
    /// the latter is the destination CPU's clock when the interrupt is
    /// visible there.
    pub fn guest_send_ipi(&mut self, cpu: usize, dest: usize, vector: u8) -> (Cycles, Cycles) {
        assert!(dest < self.num_cpus(), "IPI destination out of range");
        let t0 = self.now(cpu);
        let icr = IcrValue::fixed(vector, dest as u32);
        self.vmexit(
            self.leaf_level(),
            cpu,
            ExitReason::MsrWrite,
            ExitQualification::msr_write(msr::IA32_X2APIC_ICR, icr.encode()),
        );
        (self.now(cpu) - t0, self.now(dest))
    }

    /// The guest executes `hlt`: the vCPU blocks through however many
    /// hypervisor levels are configured to intercept idle (§3.4).
    ///
    /// With [`crate::World::poll_idle`] set, the guest busy-polls
    /// instead: no exit at all, instant wake — but every waiting cycle
    /// is burned on the physical CPU (accounted in
    /// `stats.burned_idle_cycles` when the wake event arrives).
    pub fn guest_hlt(&mut self, cpu: usize) {
        if self.poll_idle {
            self.set_polling(cpu);
            return;
        }
        self.vmexit(
            self.leaf_level(),
            cpu,
            ExitReason::Hlt,
            ExitQualification::default(),
        );
    }

    /// Native-speed guest computation (never traps).
    pub fn guest_compute(&mut self, cpu: usize, c: Cycles) {
        self.compute(cpu, c);
    }

    /// Convenience for benchmarks: the full SendIPI round as Table 1
    /// defines it — destination is idle, wakes, and receives. Returns
    /// total latency from the sender's ICR write to receive completion.
    pub fn send_ipi_to_idle(&mut self, cpu: usize, dest: usize) -> Cycles {
        // Ensure the destination is idle.
        if !self.is_halted(dest) {
            self.guest_hlt(dest);
        }
        // The destination halted at some time; the send starts now.
        let t0 = self.now(cpu).max(self.now(dest));
        self.sync_cpu(cpu, t0);
        let (_, delivered) = self.guest_send_ipi(cpu, dest, 0xED);
        delivered - t0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use dvh_arch::costs::CostModel;

    fn world(levels: usize) -> World {
        World::new(CostModel::calibrated(), WorldConfig::baseline(levels))
    }

    #[test]
    fn l1_hypercall_hits_calibration_target() {
        let mut w = world(1);
        let c = w.guest_hypercall(0);
        // Paper Table 3, VM column: 1,575 cycles. Calibration must be
        // within a tight band.
        let c = c.as_u64();
        assert!((1_400..=1_800).contains(&c), "L1 hypercall cost {c}");
    }

    #[test]
    fn nested_hypercall_multiplies() {
        let mut w1 = world(1);
        let c1 = w1.guest_hypercall(0).as_u64();
        let mut w2 = world(2);
        let c2 = w2.guest_hypercall(0).as_u64();
        assert!(
            c2 > 10 * c1,
            "exit multiplication should make L2 ({c2}) >> L1 ({c1})"
        );
    }

    #[test]
    fn l3_hypercall_multiplies_again() {
        let mut w2 = world(2);
        let c2 = w2.guest_hypercall(0).as_u64();
        let mut w3 = world(3);
        let c3 = w3.guest_hypercall(0).as_u64();
        assert!(
            c3 > 10 * c2,
            "L3 ({c3}) should be an order of magnitude above L2 ({c2})"
        );
    }

    #[test]
    fn hypercall_always_reaches_guest_hypervisor() {
        // DVH cannot help hypercalls (§4): they are the guest
        // hypervisor's business by definition.
        let mut w = world(2);
        w.guest_hypercall(0);
        assert!(w.stats.total_interventions() > 0);
    }

    #[test]
    fn timer_program_costs_more_nested() {
        let mut w1 = world(1);
        let c1 = w1.guest_program_timer(0, 1000).as_u64();
        assert!((1_700..=2_400).contains(&c1), "L1 timer cost {c1}");
        let mut w2 = world(2);
        let c2 = w2.guest_program_timer(0, 1000).as_u64();
        assert!(c2 > 10 * c1, "L2 timer {c2} vs L1 {c1}");
    }

    #[test]
    fn send_ipi_to_idle_destination() {
        let mut w = world(1);
        let total = w.send_ipi_to_idle(0, 1).as_u64();
        assert!((2_500..=4_200).contains(&total), "L1 SendIPI {total}");
    }

    #[test]
    fn guest_compute_never_exits() {
        let mut w = world(3);
        w.guest_compute(0, Cycles::new(1_000_000));
        assert_eq!(w.stats.total_exits(), 0);
        assert_eq!(w.now(0), Cycles::new(1_000_000));
    }
}
