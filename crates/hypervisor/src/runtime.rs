//! Idle and interrupt runtime: halt chains, wake paths, IPI and
//! posted-interrupt delivery.
//!
//! The paper's virtual idle (§3.4) and virtual IPIs (§3.3) are about
//! exactly these paths: who blocks a nested vCPU, who wakes it, and how
//! many hypervisor levels stand between an interrupt and its target.

use crate::world::World;
use dvh_arch::apic::IcrValue;
use dvh_arch::idle::IdleState;
use dvh_arch::vmx::{ExitQualification, ExitReason};
use dvh_arch::Cycles;
use dvh_obs::metrics::names;
use dvh_obs::MetricKey;

/// How an interrupt reaches the leaf vCPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IrqPath {
    /// Posted directly into the running guest (APICv / VT-d PI / DVH
    /// virtual IPIs): no exit on the receiving side.
    PostedDirect,
    /// Injected by L0 via an exit on the receiving CPU.
    ExitInjected,
}

impl World {
    /// The guest services every deliverable interrupt on `dest`:
    /// dispatch from the IRR, run the (cheap, APICv-accelerated)
    /// handler entry, and EOI — no exits anywhere on this path.
    fn leaf_service_interrupts(&mut self, dest: usize) {
        while self.lapic[dest].dispatch().is_some() {
            self.compute(dest, Cycles::new(80));
            self.lapic[dest].eoi();
        }
    }

    /// Marks the leaf vCPU on `cpu` as busy-polling for events.
    pub(crate) fn set_polling(&mut self, cpu: usize) {
        self.set_cpu_idle(cpu, IdleState::Polling);
    }

    /// Whether the leaf vCPU on `cpu` is busy-polling.
    pub fn is_polling(&self, cpu: usize) -> bool {
        self.with_cpu_ref(cpu, |c| c.idle_state() == IdleState::Polling)
    }

    /// Blocks the leaf vCPU on `cpu` at L0 and halts the physical CPU.
    /// Called when L0 owns a `hlt` exit (L1 guests, or nested guests
    /// under virtual idle).
    pub(crate) fn l0_halt_vcpu(&mut self, cpu: usize, _from_level: usize) {
        self.compute(cpu, self.costs.vcpu_block);
        self.push_halt_level(cpu, 0);
        self.compute(cpu, self.costs.hlt_enter);
        self.set_cpu_idle(cpu, IdleState::HaltedC1);
    }

    /// Appends `level` to the halt chain of `cpu`.
    pub(crate) fn push_halt_level(&mut self, cpu: usize, level: usize) {
        let mut chain = self
            .halt_chain(cpu)
            .map(<[usize]>::to_vec)
            .unwrap_or_default();
        chain.push(level);
        self.set_halt_chain(cpu, Some(chain));
    }

    fn set_cpu_idle(&mut self, cpu: usize, s: IdleState) {
        // PhysCpu idle state lives behind the accessor; route through a
        // small helper to keep the invariant in one place.
        self.with_cpu(cpu, |c| c.set_idle_state(s));
    }

    /// Delivers `vector` to the leaf vCPU on `dest`, waking it if
    /// halted. `event_time` is when the triggering event happened on
    /// its source CPU (receiver clock synchronizes to it). Returns the
    /// time at which the interrupt is visible to leaf software.
    pub fn deliver_leaf_interrupt(
        &mut self,
        dest: usize,
        vector: u8,
        event_time: Cycles,
        path: IrqPath,
    ) -> Cycles {
        let path_tag = match path {
            IrqPath::PostedDirect => "posted",
            IrqPath::ExitInjected => "injected",
        };
        let pre_sync = self.now(dest);
        self.sync_cpu(dest, event_time);
        if self.is_paused(dest) {
            // Parked for migration: queue in the PIR (SN suppresses
            // the notification); delivery completes at resume.
            self.pi_desc[dest].post(vector);
            return self.now(dest);
        }
        let woke = self.is_halted(dest);
        let notify = self.pi_desc[dest].post(vector);
        if self.is_polling(dest) {
            // idle=poll: the waiting span was burned, not saved; the
            // wake itself is nearly free (the poll loop notices the
            // pending bit).
            self.stats.burned_idle_cycles += self.now(dest) - pre_sync;
            self.set_cpu_idle(dest, IdleState::Running);
            self.compute(dest, Cycles::new(50));
            for v in self.pi_desc[dest].drain() {
                self.lapic[dest].accept(v);
            }
            self.leaf_service_interrupts(dest);
            self.observe(|m| m.inc(MetricKey::tagged(names::IRQ_DELIVERIES, path_tag)));
            self.trace(|w| crate::trace::TraceEvent::IrqDelivered {
                at: w.now(dest),
                cpu: dest,
                vector,
                woke: true,
            });
            return self.now(dest);
        }
        if self.is_halted(dest) {
            // The span between halting and the wake event was spent in
            // a real low-power state — saved, not burned (§3.4).
            let idle_span = self.now(dest) - pre_sync;
            self.stats.idle_cycles += idle_span;
            self.wake_chain(dest);
            for v in self.pi_desc[dest].drain() {
                self.lapic[dest].accept(v);
            }
            self.leaf_service_interrupts(dest);
            self.observe(|m| {
                m.inc(MetricKey::tagged(names::IRQ_DELIVERIES, path_tag));
                m.observe_cycles(MetricKey::plain(names::IRQ_WAKE_IDLE_CYCLES), idle_span);
            });
            self.trace(|w| crate::trace::TraceEvent::IrqDelivered {
                at: w.now(dest),
                cpu: dest,
                vector,
                woke,
            });
            return self.now(dest);
        }
        match path {
            IrqPath::PostedDirect => {
                // Hardware posts into the running guest; no exit.
                if notify {
                    self.compute(dest, self.costs.posted_intr_delivery);
                }
                for v in self.pi_desc[dest].drain() {
                    self.lapic[dest].accept(v);
                }
                self.leaf_service_interrupts(dest);
                self.stats.posted_deliveries += 1;
            }
            IrqPath::ExitInjected => {
                // The running guest is kicked out; L0 injects on entry.
                let leaf = self.leaf_level();
                self.vmexit(
                    leaf,
                    dest,
                    ExitReason::ExternalInterrupt,
                    ExitQualification::default(),
                );
                self.compute(dest, self.costs.event_injection);
                for v in self.pi_desc[dest].drain() {
                    self.lapic[dest].accept(v);
                }
                self.leaf_service_interrupts(dest);
                self.stats.injected_interrupts += 1;
            }
        }
        self.observe(|m| m.inc(MetricKey::tagged(names::IRQ_DELIVERIES, path_tag)));
        self.trace(|w| crate::trace::TraceEvent::IrqDelivered {
            at: w.now(dest),
            cpu: dest,
            vector,
            woke,
        });
        self.now(dest)
    }

    /// Replays the halt chain of `cpu` in reverse: L0 wakes the
    /// physical CPU, then each blocked hypervisor level wakes its vCPU
    /// and resumes its guest — the multi-level wake cost the paper's
    /// virtual idle eliminates.
    fn wake_chain(&mut self, cpu: usize) {
        let Some(chain) = self.halt_chain(cpu).map(<[usize]>::to_vec) else {
            return;
        };
        self.set_halt_chain(cpu, None);
        self.set_cpu_idle(cpu, IdleState::Running);

        // L0 side: C1 wake latency, scheduler kick.
        self.compute(cpu, self.costs.idle_wake);
        self.compute(cpu, self.costs.vcpu_kick);

        // Hypervisor levels that blocked, in ascending order (L0 last
        // in the chain; strip it).
        let mut levels: Vec<usize> = chain.into_iter().filter(|&l| l != 0).collect();
        levels.sort_unstable();

        if levels.is_empty() {
            // The leaf was blocked directly at L0 (L1 VM, or virtual
            // idle): re-enter it straight away.
            self.hv_vmptrld(0, cpu);
            self.compute(cpu, self.costs.event_injection);
            self.l0_vmentry(cpu);
            return;
        }
        // Enter the lowest blocked hypervisor, then let each blocked
        // level wake its own guest vCPU and resume — with every resume
        // trapping down the chain.
        self.hv_vmptrld(0, cpu);
        self.l0_vmentry(cpu);
        for j in levels {
            self.compute(cpu, self.costs.vcpu_kick);
            self.compute(cpu, self.costs.event_injection);
            self.entry_side_program(j, cpu);
            self.vmresume_insn(j, cpu);
        }
    }

    /// The terminal, physical IPI send performed by L0 (for its own
    /// needs or while emulating a guest's ICR write).
    pub(crate) fn send_physical_ipi(&mut self, sender_cpu: usize, icr: IcrValue) {
        self.compute(sender_cpu, self.costs.ipi_send);
        let dest = icr.dest as usize;
        if dest >= self.num_cpus() || dest == sender_cpu {
            return;
        }
        let t = self.now(sender_cpu);
        self.deliver_leaf_interrupt(dest, icr.vector, t, IrqPath::PostedDirect);
    }

    /// A hardware timer expiry on `cpu`: the host's hrtimer fires and
    /// the (possibly emulated, possibly multi-level) timer interrupt
    /// propagates to the leaf.
    ///
    /// `dvh_direct` selects the virtual-timer delivery optimization
    /// (§3.2): L0 posts the timer interrupt directly to the nested VM.
    /// Without it, each intermediate hypervisor's timer emulation layer
    /// forwards the interrupt (its hrtimer callback runs, it raises its
    /// guest's timer, and so on).
    pub fn fire_timer(&mut self, cpu: usize, dvh_direct: bool) -> Cycles {
        let vector = 0xEC; // typical LAPIC timer vector
        self.timers[cpu].disarm();
        // L0's hrtimer interrupt.
        self.compute(cpu, self.costs.external_intr);
        let n = self.leaf_level();
        if n >= 2 && !dvh_direct {
            // Each intermediate hypervisor's timer-emulation layer
            // runs: hrtimer callback, raise guest timer interrupt,
            // re-enter — a full intervention per level.
            for j in 1..n {
                self.stats.record_intervention(j);
                self.exit_side_program(j, cpu);
                self.compute(cpu, self.costs.hrtimer_program);
                self.compute(cpu, self.costs.event_injection);
                self.entry_side_program(j, cpu);
                self.vmresume_insn(j, cpu);
            }
        }
        let t = self.now(cpu);
        self.deliver_leaf_interrupt(cpu, vector, t, IrqPath::PostedDirect)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use dvh_arch::costs::CostModel;

    fn world(levels: usize) -> World {
        World::new(CostModel::calibrated(), WorldConfig::baseline(levels))
    }

    #[test]
    fn halt_then_wake_l1() {
        let mut w = world(1);
        w.guest_hlt(0);
        assert!(w.is_halted(0));
        assert_eq!(w.halt_chain(0).unwrap(), &[0]);
        let t = w.now(1);
        w.deliver_leaf_interrupt(0, 0x41, t, IrqPath::PostedDirect);
        assert!(!w.is_halted(0));
    }

    #[test]
    fn nested_halt_builds_full_chain() {
        let mut w = world(3);
        w.guest_hlt(0);
        // L3 guest halts -> L2 blocks -> L1 blocks -> L0 halts pcpu.
        assert_eq!(w.halt_chain(0).unwrap(), &[2, 1, 0]);
    }

    #[test]
    fn wake_of_nested_chain_costs_more_than_direct() {
        let mut deep = world(3);
        deep.guest_hlt(0);
        let t0 = deep.now(0);
        deep.deliver_leaf_interrupt(0, 0x41, t0, IrqPath::PostedDirect);
        let deep_cost = deep.now(0) - t0;

        let mut shallow = world(1);
        shallow.guest_hlt(0);
        let t0 = shallow.now(0);
        shallow.deliver_leaf_interrupt(0, 0x41, t0, IrqPath::PostedDirect);
        let shallow_cost = shallow.now(0) - t0;
        assert!(
            deep_cost > shallow_cost * 5,
            "deep wake {deep_cost} should dwarf shallow wake {shallow_cost}"
        );
    }

    #[test]
    fn posted_delivery_to_running_vcpu_causes_no_exit() {
        let mut w = world(2);
        let before = w.stats.total_exits();
        w.deliver_leaf_interrupt(1, 0x50, Cycles::ZERO, IrqPath::PostedDirect);
        assert_eq!(w.stats.total_exits(), before);
        assert_eq!(w.stats.posted_deliveries, 1);
    }

    #[test]
    fn exit_injected_delivery_exits_once_from_leaf() {
        let mut w = world(2);
        w.deliver_leaf_interrupt(1, 0x50, Cycles::ZERO, IrqPath::ExitInjected);
        assert_eq!(w.stats.exits_with(2, ExitReason::ExternalInterrupt), 1);
        assert_eq!(w.stats.injected_interrupts, 1);
    }

    #[test]
    fn timer_fire_without_dvh_intervenes_per_level() {
        let mut w = world(3);
        w.fire_timer(0, false);
        assert!(w.stats.total_interventions() >= 2);

        let mut w2 = world(3);
        w2.fire_timer(0, true);
        assert_eq!(w2.stats.total_interventions(), 0);
    }
}
