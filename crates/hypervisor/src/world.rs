//! The simulated machine: physical CPUs, the VMCS hierarchy, devices,
//! and the privileged-operation primitives from which all hypervisor
//! behaviour is built.
//!
//! # Structure
//!
//! A [`World`] models the paper's stacked configuration: L0 runs an L1
//! VM, whose hypervisor runs an L2 VM, and so on; the VM at
//! `config.levels` is the *leaf* guest where workloads run. vCPU `i` of
//! every level is pinned to physical CPU `i`, as in the paper's
//! experimental setup.
//!
//! `vmcs[k][i]` is the VMCS that the hypervisor at level `k` maintains
//! for vCPU `i` of the VM at level `k + 1` (KVM's vmcs01/vmcs12/vmcs23
//! chain). Only L0 touches real hardware; every privileged operation by
//! a hypervisor at level ≥ 1 traps and is emulated down the chain —
//! that recursion lives in `exits.rs` and is where exit multiplication
//! comes from.

use crate::config::{HvKind, IoModel, WorldConfig};
use crate::extension::L0Extension;
use crate::profile::HvProfile;
use crate::stats::RunStats;
use crate::trace::Tracer;
use dvh_arch::apic::{LapicState, LapicTimer, PiDescriptor};
use dvh_arch::costs::CostModel;
use dvh_arch::cpu::{CpuId, PhysCpu};
use dvh_arch::vmx::{ctrl, field, ShadowFieldSet, Vmcs};
use dvh_arch::Cycles;
use dvh_devices::iommu::{Iommu, VirtualIommu};
use dvh_devices::nic::Nic;
use dvh_devices::pci::Bdf;
use dvh_devices::vhost::VhostNet;
use dvh_devices::virtio::blk::VirtioBlk;
use dvh_devices::virtio::net::VirtioNet;
use dvh_memory::ept::Ept;
use dvh_memory::iommu_pt::{IoTable, ShadowIoTable};
use dvh_memory::sparse::SparseMemory;
use dvh_memory::{DirtyBitmap, Perms};
use dvh_obs::MetricsRegistry;

/// PFN offset added by each translation stage in the simulator's
/// canonical memory layout: the VM at level `k`'s guest-physical page
/// `p` lives at level `k-1` page `p + STAGE_PFN_OFFSET`. Tests use this
/// to verify end-to-end translation.
pub const STAGE_PFN_OFFSET: u64 = 0x100_000; // 4 GiB

/// First leaf PFN of the virtio ring buffer pool.
pub const LEAF_BUF_BASE_PFN: u64 = 0x100;

/// The per-vCPU posted-interrupt notification vector.
pub const PI_NOTIFICATION_VECTOR: u8 = 0xF2;

/// Host-physical base address of the per-vCPU posted-interrupt
/// descriptor array programmed into every VMCS (64 bytes per vCPU).
pub const PI_DESC_BASE: u64 = 0x3000;

/// Host-physical address of the shadow VMCS linked from vmcs01 when
/// VMCS shadowing is enabled.
pub const SHADOW_VMCS_ADDR: u64 = 0x8000;

/// The simulated machine.
pub struct World {
    /// Cycle-cost model in force.
    pub costs: CostModel,
    /// Machine configuration.
    pub config: WorldConfig,
    /// World-switch footprint of guest hypervisors.
    pub profile: HvProfile,
    shadow: ShadowFieldSet,
    cpus: Vec<PhysCpu>,
    vmcs: Vec<Vec<Vmcs>>,
    /// Per leaf-vCPU halt chain: hypervisor levels that blocked this
    /// vCPU, outermost (deepest level) first, always ending in 0 when
    /// the physical CPU actually halted. `None` = running.
    halt_chain: Vec<Option<Vec<usize>>>,
    /// Per leaf-vCPU posted-interrupt descriptors.
    pub pi_desc: Vec<PiDescriptor>,
    /// Per leaf-vCPU LAPIC timer state (as emulated for the leaf).
    pub timers: Vec<LapicTimer>,
    /// Per leaf-vCPU LAPIC interrupt state (IRR/ISR; APICv-virtualized
    /// so acceptance and EOI never exit).
    pub lapic: Vec<LapicState>,
    /// Statistics ledger.
    pub stats: RunStats,
    /// Host physical memory.
    pub host_mem: SparseMemory,
    /// Dirty leaf-GPA pages (guest writes + device DMA), the source
    /// for nested-VM migration.
    pub leaf_dirty: DirtyBitmap,
    /// Dirty L1-GPA pages as tracked by L0 for L1-VM migration.
    pub l1_dirty: DirtyBitmap,
    /// The physical NIC.
    pub nic: Nic,
    /// Virtio devices: `virtio[k]` is provided by the hypervisor at
    /// level `k`. The cascade model uses all of them; virtual-
    /// passthrough uses only `virtio[0]`.
    pub virtio: Vec<VirtioNet>,
    /// vhost backends, one per virtio device.
    pub vhost: Vec<VhostNet>,
    /// The virtual block device (provided by L0 under
    /// virtual-passthrough, by the leaf's parent otherwise; there is
    /// no SR-IOV disk, matching the paper's testbed).
    pub blk: VirtioBlk,
    /// Virtual IOMMUs: `viommus[k]` is provided by the hypervisor at
    /// level `k` to the hypervisor at level `k+1` (virtual-passthrough
    /// only). Their domains map level-(k+2) GPAs to level-(k+1) GPAs.
    pub viommus: Vec<VirtualIommu>,
    /// L0's own DMA stage: L1 GPA → host PFN.
    pub l0_io_stage: IoTable,
    /// The combined shadow I/O table (leaf GPA → host PFN) under
    /// virtual-passthrough.
    pub shadow_io: Option<ShadowIoTable>,
    /// The physical IOMMU (passthrough model).
    pub phys_iommu: Iommu,
    /// Extended page tables: `epts[k]` is the stage built by the
    /// hypervisor at level `k` for the VM at level `k+1` (lazy; see
    /// `memory_virt.rs`).
    pub epts: Vec<Ept>,
    pub(crate) extensions: Vec<Box<dyn L0Extension>>,
    /// Whether L0 has cached the nested doorbell GPA resolution (KVM's
    /// MMIO fast path): the first nested doorbell pays the full nested
    /// EPT walk, subsequent ones hit the cache. The paper notes this
    /// distinction: "more realistic I/O device usage that accesses
    /// data would have much less overhead" than the DevNotify
    /// microbenchmark (Table 3 discussion).
    pub(crate) mmio_doorbell_cached: bool,
    pub(crate) tracer: Option<Tracer>,
    /// Cached `tracer.is_some()`: the per-event enabled check in the
    /// exit engine is a single branch on this bool, not an `Option`
    /// discriminant load behind a method call.
    pub(crate) trace_on: bool,
    /// Observability registry (None until [`World::enable_metrics`]).
    pub(crate) metrics: Option<Box<MetricsRegistry>>,
    /// Cached `metrics.is_some()`, mirroring `trace_on`: every
    /// instrumentation point is one predicted branch when disabled.
    pub(crate) metrics_on: bool,
    /// In-flight block request (bytes), if a blk doorbell chain is
    /// being processed; see `io.rs`.
    pub(crate) pending_blk_bytes: Option<u64>,
    /// Use `idle=poll` in the leaf guest instead of `hlt` (the
    /// cycle-wasting alternative §3.4 contrasts with virtual idle).
    pub poll_idle: bool,
    /// How many *other* runnable nested VMs the deepest guest
    /// hypervisor has on each vCPU (drives the §3.4 scheduling policy:
    /// virtual idle should only be enabled when there are none).
    pub runnable_sibling_vms: u32,
    /// Per leaf-vCPU pause state (migration stop-and-copy).
    pub(crate) paused: Vec<bool>,
    /// Per-CPU exit-handling nesting depth (0 = guest code running):
    /// lets the dispatcher attribute cycles to outermost exits only.
    /// Per-CPU so that exits on a woken sibling (e.g. the destination
    /// side of an IPI) are attributed on their own CPU rather than
    /// silently folded into the sender's exit.
    pub(crate) exit_depth: Vec<u32>,
    /// The DVH capability word the platform advertises (the simulated
    /// `IA32_VMX_DVH_CAP`). Enabling a DVH control a level was never
    /// offered is a VM-entry consistency violation (§3.5).
    pub dvh_advertised: u64,
    /// Whether VM-entry consistency checks run on every simulated
    /// entry (see `check.rs`). Off by default.
    pub(crate) vmentry_checks: bool,
    /// Violations collected while `vmentry_checks` is on.
    pub(crate) vmentry_findings: Vec<crate::check::VmentryFinding>,
}

impl World {
    /// Builds a machine for `config` with the given cost model.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is invalid (see
    /// [`WorldConfig::validate`]); use `validate` first for a
    /// recoverable check.
    pub fn new(costs: CostModel, config: WorldConfig) -> World {
        if let Err(e) = config.validate() {
            panic!("invalid configuration: {e}");
        }
        let n = config.levels;
        let v = config.leaf_vcpus;
        let profile = match config.guest_hv {
            HvKind::Kvm => HvProfile::kvm(),
            HvKind::Xen => HvProfile::xen(),
            HvKind::KvmArm => HvProfile::kvm_arm(),
        };
        let mut vmcs = Vec::with_capacity(n);
        for k in 0..n {
            let mut per_cpu = Vec::with_capacity(v);
            for i in 0..v {
                let mut m = Vmcs::new();
                // Every hypervisor traps HLT by default (virtual idle,
                // when enabled, clears this in guest hypervisors).
                m.set_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING);
                m.set_bits(
                    field::CPU_BASED_EXEC_CONTROLS,
                    ctrl::cpu::USE_TSC_OFFSETTING | ctrl::cpu::USE_MSR_BITMAPS,
                );
                // A synthetic per-level TSC offset so offset-combining
                // logic is observable.
                m.write(field::TSC_OFFSET, (k as u64 + 1) * 0x1000);
                // Baseline architectural consistency, as checked at
                // every simulated VM entry (SDM §26 / `check.rs`):
                // secondary controls activated, EPT enabled with a
                // programmed EPTP, posted interrupts with a valid
                // notification vector and non-null descriptor.
                m.set_bits(
                    field::CPU_BASED_EXEC_CONTROLS,
                    ctrl::cpu::SECONDARY_CONTROLS,
                );
                m.set_bits(field::SECONDARY_EXEC_CONTROLS, ctrl::secondary::ENABLE_EPT);
                m.write(
                    field::EPT_POINTER,
                    ((0x10 + k as u64) << 12) | 0x1e, // root PFN | WB, 4-level walk
                );
                m.set_bits(field::PIN_BASED_EXEC_CONTROLS, ctrl::pin::POSTED_INTERRUPTS);
                m.write(
                    field::POSTED_INTR_NOTIFICATION_VECTOR,
                    PI_NOTIFICATION_VECTOR as u64,
                );
                m.write(field::POSTED_INTR_DESC_ADDR, PI_DESC_BASE + i as u64 * 64);
                if k == 0 && config.vmcs_shadowing && profile.uses_shadowing {
                    // L0 shadows L1's hot vmcs12 fields: vmcs01 carries
                    // the shadow-VMCS control and a usable link pointer.
                    m.set_bits(field::SECONDARY_EXEC_CONTROLS, ctrl::secondary::SHADOW_VMCS);
                    m.write(field::VMCS_LINK_POINTER, SHADOW_VMCS_ADDR);
                }
                per_cpu.push(m);
            }
            vmcs.push(per_cpu);
        }
        let nic = Nic::new(Bdf::new(1, 0, 0), 8);
        let virtio_count = match config.io_model {
            IoModel::Virtio => n,
            IoModel::VirtualPassthrough => 1,
            IoModel::Passthrough => 0,
        };
        let virtio: Vec<VirtioNet> = (0..virtio_count.max(1))
            .map(|k| VirtioNet::new(Bdf::new(0, 4 + k as u8, 0), 256))
            .collect();
        let vhost = (0..virtio.len()).map(|_| VhostNet::new()).collect();

        let mut virtio = virtio;
        for (i, dev) in virtio.iter_mut().enumerate() {
            // The owning driver programs the RX completion vector
            // (entry 1) at initialization and unmasks it.
            dev.msix.program(
                1,
                dvh_devices::msi::MsiMessage::remappable(i as u32, crate::io::RX_VECTOR),
            );
            dev.msix.unmask(1);
        }
        let mut w = World {
            costs,
            profile,
            shadow: if config.vmcs_shadowing {
                ShadowFieldSet::kvm_default()
            } else {
                ShadowFieldSet::empty()
            },
            cpus: (0..v as u32).map(|i| PhysCpu::new(CpuId(i))).collect(),
            vmcs,
            halt_chain: vec![None; v],
            pi_desc: (0..v)
                .map(|i| PiDescriptor::new(i as u32, PI_NOTIFICATION_VECTOR))
                .collect(),
            timers: vec![LapicTimer::default(); v],
            lapic: vec![LapicState::new(); v],
            stats: RunStats::new(),
            host_mem: SparseMemory::new(),
            leaf_dirty: DirtyBitmap::new(),
            l1_dirty: DirtyBitmap::new(),
            nic,
            virtio,
            vhost,
            blk: VirtioBlk::new(Bdf::new(0, 9, 0), 128, 1 << 21), // 1 GiB
            viommus: Vec::new(),
            l0_io_stage: IoTable::new(),
            shadow_io: None,
            phys_iommu: Iommu::new(),
            epts: (0..n).map(|_| Ept::new()).collect(),
            extensions: Vec::new(),
            mmio_doorbell_cached: false,
            tracer: None,
            trace_on: false,
            metrics: None,
            metrics_on: false,
            pending_blk_bytes: None,
            poll_idle: false,
            runnable_sibling_vms: 0,
            paused: vec![false; v],
            exit_depth: vec![0; v],
            dvh_advertised: dvh_arch::vmx::cap::VIRTUAL_TIMER
                | dvh_arch::vmx::cap::VIRTUAL_IPI
                | dvh_arch::vmx::cap::VCIMTAR,
            vmentry_checks: false,
            vmentry_findings: Vec::new(),
            config,
        };
        w.setup_io();
        w
    }

    /// Sets up the I/O plumbing for the configured model: translation
    /// stages, shadow tables, IOMMU attachment.
    fn setup_io(&mut self) {
        let n = self.config.levels;
        // Each VM's buffer pool: 64 pages starting at LEAF_BUF_BASE_PFN
        // in its own GPA space, shifted one stage per level downward.
        let pages = 64;
        match self.config.io_model {
            IoModel::VirtualPassthrough => {
                // Intermediate hypervisors each expose a vIOMMU. The
                // hypervisor at level k (1 <= k <= n-1) programs the
                // vIOMMU provided by level k-1 with mappings for the
                // VM at level k+1 ... only levels that pass the device
                // further need one; the vIOMMU provided by hv k serves
                // hv k+1. There are n-1 vIOMMUs for an n-level stack
                // (the last-level hypervisor needs none for its own
                // VM but uses the one below it).
                let pi = self.config.dvh.viommu_posted_interrupts;
                self.viommus = (0..n.saturating_sub(1))
                    .map(|_| VirtualIommu::new(pi))
                    .collect();
                let bdf = self.virtio[0].pci().bdf();
                // Stage tables: vIOMMU[k] is programmed by the
                // hypervisor at level k+1 with mappings from level-(k+2)
                // GPA to level-(k+1) GPA. In the canonical layout each
                // stage adds one STAGE_PFN_OFFSET, so the innermost
                // stage (index n-2) maps the leaf's buffer pool at its
                // own base, and stage k maps it at (n-2-k) offsets in.
                let base = LEAF_BUF_BASE_PFN;
                for (k, vm) in self.viommus.iter_mut().enumerate() {
                    vm.attach(bdf);
                    let hops_in = (n - 2 - k) as u64;
                    vm.map(
                        bdf,
                        base + hops_in * STAGE_PFN_OFFSET,
                        base + (hops_in + 1) * STAGE_PFN_OFFSET,
                        pages,
                        Perms::RW,
                    );
                    // The guest hypervisor programs the device's RX
                    // interrupt into the vIOMMU remapping tables. With
                    // posted-interrupt support the entry points at the
                    // destination vCPU's PI descriptor (delivery with
                    // no exits); without it, the interrupt is remapped
                    // to the owning vCPU and relayed in software.
                    let target = if pi {
                        dvh_devices::iommu::IrteTarget::Posted { pi_desc: 0 }
                    } else {
                        dvh_devices::iommu::IrteTarget::Remapped {
                            dest: 0,
                            vector: crate::io::RX_VECTOR,
                        }
                    };
                    vm.unit_mut()
                        .remap_interrupt(bdf, crate::io::RX_VECTOR, target);
                }
                // L0's own stage: L1 GPA -> host PFN.
                self.l0_io_stage.map(
                    base + (n as u64 - 1) * STAGE_PFN_OFFSET,
                    base + n as u64 * STAGE_PFN_OFFSET,
                    pages,
                    Perms::RW,
                );
                self.rebuild_shadow_io();
            }
            IoModel::Passthrough => {
                // Assign VF 1 to the leaf; the physical IOMMU maps the
                // leaf's IOVAs (its GPAs) straight to host PFNs.
                let vf = self.nic.function_bdf(1);
                self.phys_iommu.attach(vf);
                self.phys_iommu.map(
                    vf,
                    LEAF_BUF_BASE_PFN,
                    LEAF_BUF_BASE_PFN + n as u64 * STAGE_PFN_OFFSET,
                    pages,
                    Perms::RW,
                );
            }
            IoModel::Virtio => {
                // Cascaded virtio: each level's backend copies between
                // adjacent address spaces. Only the L0-adjacent hop
                // materializes bytes: L0's device serves the L1 VM, so
                // its stage maps L1 GPAs to host PFNs.
                self.l0_io_stage.map(
                    LEAF_BUF_BASE_PFN + (n as u64 - 1) * STAGE_PFN_OFFSET,
                    LEAF_BUF_BASE_PFN + n as u64 * STAGE_PFN_OFFSET,
                    pages,
                    Perms::RW,
                );
            }
        }
    }

    /// Rebuilds the combined shadow I/O table from the vIOMMU chain
    /// plus L0's stage (Fig. 6). Called whenever a stage changes.
    pub fn rebuild_shadow_io(&mut self) {
        if self.config.io_model != IoModel::VirtualPassthrough {
            return;
        }
        let bdf = self.virtio[0].pci().bdf();
        // Innermost stage first: the deepest vIOMMU (closest to the
        // leaf) is the one provided by the second-to-last hypervisor.
        let mut stages: Vec<&IoTable> = Vec::new();
        for vm in self.viommus.iter().rev() {
            if let Some(d) = vm.unit().domain(bdf) {
                stages.push(d);
            }
        }
        stages.push(&self.l0_io_stage);
        self.shadow_io = Some(ShadowIoTable::build(&stages));
    }

    /// Invalidates the cached nested doorbell resolution, forcing the
    /// next nested MMIO doorbell to take the slow path (used by the
    /// DevNotify microbenchmark, which measures the uncached cost).
    pub fn invalidate_mmio_cache(&mut self) {
        self.mmio_doorbell_cached = false;
    }

    /// Registers an L0 extension (a DVH mechanism). Extensions are
    /// consulted, in registration order, before L0 reflects an exit
    /// from a nested VM to its guest hypervisor.
    pub fn register_extension(&mut self, ext: Box<dyn L0Extension>) {
        self.extensions.push(ext);
    }

    // ---- Clock and accounting helpers ---------------------------------

    /// Number of physical CPUs (= leaf vCPUs).
    pub fn num_cpus(&self) -> usize {
        self.cpus.len()
    }

    /// Current simulated time of CPU `cpu`.
    #[inline(always)]
    pub fn now(&self, cpu: usize) -> Cycles {
        self.cpus[cpu].now()
    }

    /// Charges `c` cycles of native-speed execution on `cpu`.
    /// Compute never traps, regardless of privilege level.
    #[inline(always)]
    pub fn compute(&mut self, cpu: usize, c: Cycles) {
        self.cpus[cpu].advance(c);
    }

    /// Synchronizes CPU `cpu` to at least time `t` (causal wait).
    pub fn sync_cpu(&mut self, cpu: usize, t: Cycles) {
        self.cpus[cpu].sync_to(t);
    }

    /// Runs `f` with mutable access to the physical CPU `cpu`.
    pub(crate) fn with_cpu<R>(&mut self, cpu: usize, f: impl FnOnce(&mut PhysCpu) -> R) -> R {
        f(&mut self.cpus[cpu])
    }

    /// Runs `f` with shared access to the physical CPU `cpu`.
    pub(crate) fn with_cpu_ref<R>(&self, cpu: usize, f: impl FnOnce(&PhysCpu) -> R) -> R {
        f(&self.cpus[cpu])
    }

    /// The deepest (leaf) virtualization level.
    pub fn leaf_level(&self) -> usize {
        self.config.levels
    }

    // ---- VMCS store access (no cost; cost is charged by callers) ------

    /// Immutable access to the VMCS maintained by hypervisor `owner`
    /// for vCPU `cpu` of the VM at `owner + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `owner >= levels` or `cpu` is out of range.
    #[inline(always)]
    pub fn vmcs(&self, owner: usize, cpu: usize) -> &Vmcs {
        &self.vmcs[owner][cpu]
    }

    /// Mutable access; see [`World::vmcs`].
    #[inline(always)]
    pub fn vmcs_mut(&mut self, owner: usize, cpu: usize) -> &mut Vmcs {
        &mut self.vmcs[owner][cpu]
    }

    /// The virtio device provided by the hypervisor at `level`
    /// (bounds-checked here so dispatch paths never index raw).
    pub fn virtio_dev(&self, level: usize) -> &VirtioNet {
        &self.virtio[level]
    }

    /// Mutable access; see [`World::virtio_dev`].
    pub fn virtio_dev_mut(&mut self, level: usize) -> &mut VirtioNet {
        &mut self.virtio[level]
    }

    /// The EPT stage built by the hypervisor at `stage` for the VM at
    /// `stage + 1`.
    pub fn ept_stage_mut(&mut self, stage: usize) -> &mut Ept {
        &mut self.epts[stage]
    }

    /// The set of vmcs12 fields L0 shadows for L1 (empty when VMCS
    /// shadowing is disabled). The trace linter uses this to prove no
    /// shadowed access was ever reflected.
    pub fn shadow_fields(&self) -> &ShadowFieldSet {
        &self.shadow
    }

    /// Resets the statistics ledger to zero. Checker harnesses call
    /// this together with [`World::enable_tracing`] so the ledger and
    /// the trace cover exactly the same window (cycle conservation).
    pub fn reset_stats(&mut self) {
        self.stats = RunStats::new();
    }

    // ---- Observability (dvh-obs) --------------------------------------

    /// Turns on metrics collection. Recording never advances simulated
    /// time, so enabling metrics cannot perturb any cycle ledger; with
    /// metrics off, every instrumentation point costs one predicted
    /// branch (same contract as [`World::enable_tracing`]).
    pub fn enable_metrics(&mut self) {
        if self.metrics.is_none() {
            self.metrics = Some(Box::default());
        }
        self.metrics_on = true;
    }

    /// Arms the full observability stack in one call: tracing (with the
    /// given event capacity) plus metrics. Everything downstream of the
    /// trace — causal trees, folded flamegraphs, latency percentiles —
    /// needs both, so the CLI and the checker harness arm them
    /// together.
    pub fn enable_observability(&mut self, trace_capacity: usize) {
        self.enable_tracing(trace_capacity);
        self.enable_metrics();
    }

    /// The live metrics registry, if metrics were enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.metrics.as_deref()
    }

    /// Stops metrics collection and returns the registry.
    pub fn take_metrics(&mut self) -> Option<MetricsRegistry> {
        self.metrics_on = false;
        self.metrics.take().map(|m| *m)
    }

    /// Feeds the registry if metrics are enabled. The disabled path is
    /// a single inlined branch on [`World::metrics_on`]; the closure
    /// only ever captures plain copies (levels, reasons, cycle deltas),
    /// so with metrics off the optimizer deletes the capture setup at
    /// every call site.
    #[inline(always)]
    pub fn observe(&mut self, f: impl FnOnce(&mut MetricsRegistry)) {
        if !self.metrics_on {
            return;
        }
        self.observe_record(f);
    }

    /// Out-of-line metrics-enabled path of [`World::observe`].
    #[inline(never)]
    fn observe_record(&mut self, f: impl FnOnce(&mut MetricsRegistry)) {
        if let Some(m) = self.metrics.as_deref_mut() {
            f(m);
        }
    }

    /// Snapshots every device's lifetime counters (virtqueue kicks,
    /// interrupts, in-flight; vhost packet/byte/drop totals) into the
    /// metrics registry. Exports are absolute values, so calling this
    /// repeatedly (e.g. once per sweep cell) never double-counts; a
    /// no-op when metrics are disabled.
    pub fn export_device_metrics(&mut self) {
        let Some(reg) = self.metrics.as_deref_mut() else {
            return;
        };
        for (lvl, dev) in self.virtio.iter().enumerate() {
            dev.rx.export_metrics(reg, virtio_queue_tag(lvl, true));
            dev.tx.export_metrics(reg, virtio_queue_tag(lvl, false));
        }
        for (lvl, vh) in self.vhost.iter().enumerate() {
            vh.export_metrics(reg, vhost_tag(lvl));
        }
    }

    /// Whether the leaf vCPU on `cpu` is halted.
    pub fn is_halted(&self, cpu: usize) -> bool {
        self.halt_chain[cpu].is_some()
    }

    /// The halt chain of `cpu`, if halted.
    pub fn halt_chain(&self, cpu: usize) -> Option<&[usize]> {
        self.halt_chain[cpu].as_deref()
    }

    pub(crate) fn set_halt_chain(&mut self, cpu: usize, chain: Option<Vec<usize>>) {
        self.halt_chain[cpu] = chain;
    }

    // ---- Privileged-operation primitives --------------------------------
    //
    // Each primitive is executed *by the hypervisor at `level`* on
    // `cpu`. Level 0 is native; level >= 1 may trap. The target VMCS of
    // a hypervisor's vmread/vmwrite is its current one: vmcs[level][cpu].

    /// `vmread` of `f` by the hypervisor at `level`.
    #[inline]
    pub fn hv_vmread(&mut self, level: usize, cpu: usize, f: u32) -> u64 {
        if level == 0 {
            self.compute(cpu, self.costs.vmread);
        } else if level == 1 && self.profile.uses_shadowing && self.shadow.covers_read(f) {
            self.compute(cpu, self.costs.shadow_vmread);
        } else {
            self.vmexit(
                level,
                cpu,
                dvh_arch::vmx::ExitReason::Vmread,
                dvh_arch::vmx::ExitQualification::vmread(f),
            );
        }
        self.vmcs[level][cpu].read(f)
    }

    /// `vmwrite` of `f = v` by the hypervisor at `level`.
    #[inline]
    pub fn hv_vmwrite(&mut self, level: usize, cpu: usize, f: u32, v: u64) {
        if level == 0 {
            self.compute(cpu, self.costs.vmwrite);
        } else if level == 1 && self.profile.uses_shadowing && self.shadow.covers_write(f) {
            self.compute(cpu, self.costs.shadow_vmwrite);
        } else {
            self.vmexit(
                level,
                cpu,
                dvh_arch::vmx::ExitReason::Vmwrite,
                dvh_arch::vmx::ExitQualification::vmwrite(f, v),
            );
        }
        self.vmcs[level][cpu].write(f, v);
    }

    /// `vmptrld` by the hypervisor at `level`.
    pub fn hv_vmptrld(&mut self, level: usize, cpu: usize) {
        if level == 0 {
            self.compute(cpu, self.costs.vmptrld);
        } else {
            self.vmexit(
                level,
                cpu,
                dvh_arch::vmx::ExitReason::Vmptrld,
                dvh_arch::vmx::ExitQualification::default(),
            );
        }
    }

    /// `invept` by the hypervisor at `level`.
    pub fn hv_invept(&mut self, level: usize, cpu: usize) {
        if level == 0 {
            self.compute(cpu, self.costs.invept);
        } else {
            self.vmexit(
                level,
                cpu,
                dvh_arch::vmx::ExitReason::Invept,
                dvh_arch::vmx::ExitQualification::default(),
            );
        }
    }

    /// `rdmsr` by the hypervisor at `level` (of a trapped MSR).
    pub fn hv_rdmsr(&mut self, level: usize, cpu: usize, msr: u32) {
        if level == 0 {
            self.compute(cpu, self.costs.rdmsr);
        } else {
            self.vmexit(
                level,
                cpu,
                dvh_arch::vmx::ExitReason::MsrRead,
                dvh_arch::vmx::ExitQualification {
                    msr,
                    ..Default::default()
                },
            );
        }
    }

    /// `wrmsr` by the hypervisor at `level` (of a trapped MSR).
    ///
    /// For level 0 this is the terminal hardware write (e.g. arming the
    /// real LAPIC timer, sending the real posted-interrupt IPI).
    pub fn hv_wrmsr(&mut self, level: usize, cpu: usize, msr: u32, value: u64) {
        if level == 0 {
            self.compute(cpu, self.costs.wrmsr);
        } else {
            self.vmexit(
                level,
                cpu,
                dvh_arch::vmx::ExitReason::MsrWrite,
                dvh_arch::vmx::ExitQualification::msr_write(msr, value),
            );
        }
    }
}

impl std::fmt::Debug for World {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("World")
            .field("levels", &self.config.levels)
            .field("io_model", &self.config.io_model)
            .field("cpus", &self.cpus.len())
            .field("total_exits", &self.stats.total_exits())
            .finish()
    }
}

/// Static metric tag for the virtio device provided by the hypervisor
/// at `level` (metric tags are `&'static str`; levels beyond the
/// modeled maximum share a catch-all tag).
fn virtio_queue_tag(level: usize, rx: bool) -> &'static str {
    match (level, rx) {
        (0, true) => "l0-rx",
        (0, false) => "l0-tx",
        (1, true) => "l1-rx",
        (1, false) => "l1-tx",
        (2, true) => "l2-rx",
        (2, false) => "l2-tx",
        (3, true) => "l3-rx",
        (3, false) => "l3-tx",
        (_, true) => "ln-rx",
        (_, false) => "ln-tx",
    }
}

/// Static metric tag for the vhost backend at `level`; see
/// [`virtio_queue_tag`].
fn vhost_tag(level: usize) -> &'static str {
    match level {
        0 => "l0-vhost",
        1 => "l1-vhost",
        2 => "l2-vhost",
        3 => "l3-vhost",
        _ => "ln-vhost",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world(levels: usize) -> World {
        World::new(CostModel::calibrated(), WorldConfig::baseline(levels))
    }

    #[test]
    fn construction_shapes() {
        let w = world(3);
        assert_eq!(w.num_cpus(), 4);
        assert_eq!(w.vmcs.len(), 3);
        assert_eq!(w.leaf_level(), 3);
        assert!(w
            .vmcs(0, 0)
            .has_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING));
    }

    #[test]
    fn l0_vmread_is_cheap_and_correct() {
        let mut w = world(2);
        w.vmcs_mut(0, 0).write(field::GUEST_RIP, 77);
        let t0 = w.now(0);
        let v = w.hv_vmread(0, 0, field::GUEST_RIP);
        assert_eq!(v, 77);
        assert_eq!(w.now(0) - t0, w.costs.vmread);
        assert_eq!(w.stats.total_exits(), 0);
    }

    #[test]
    fn shadowed_l1_vmread_does_not_exit() {
        let mut w = world(2);
        let t0 = w.now(0);
        w.hv_vmread(1, 0, field::VM_EXIT_REASON);
        assert_eq!(w.now(0) - t0, w.costs.shadow_vmread);
        assert_eq!(w.stats.total_exits(), 0);
    }

    #[test]
    fn cold_l1_vmread_exits_once() {
        let mut w = world(2);
        w.hv_vmread(1, 0, field::TSC_OFFSET);
        assert_eq!(w.stats.exits_with(1, dvh_arch::vmx::ExitReason::Vmread), 1);
    }

    #[test]
    fn no_shadowing_makes_hot_fields_trap() {
        let mut cfg = WorldConfig::baseline(2);
        cfg.vmcs_shadowing = false;
        let mut w = World::new(CostModel::calibrated(), cfg);
        w.hv_vmread(1, 0, field::VM_EXIT_REASON);
        assert_eq!(w.stats.exits_with(1, dvh_arch::vmx::ExitReason::Vmread), 1);
    }

    #[test]
    fn vp_world_builds_shadow_io() {
        let mut cfg = WorldConfig::baseline(2);
        cfg.io_model = IoModel::VirtualPassthrough;
        let w = World::new(CostModel::calibrated(), cfg);
        let s = w.shadow_io.as_ref().unwrap();
        // Leaf buffer page 0x100 should resolve to host page
        // 0x100 + 2 * STAGE_PFN_OFFSET for a 2-level stack.
        assert_eq!(
            s.lookup(LEAF_BUF_BASE_PFN).unwrap().0,
            LEAF_BUF_BASE_PFN + 2 * STAGE_PFN_OFFSET
        );
    }

    #[test]
    #[should_panic(expected = "invalid configuration")]
    fn invalid_config_panics() {
        world(0);
    }
}
