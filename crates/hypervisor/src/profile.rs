//! Guest-hypervisor world-switch profiles.
//!
//! A profile describes the privileged-operation footprint a hypervisor
//! personality has around every exit/entry pair for a nested guest:
//! which VMCS fields it touches (hot fields are in the hardware shadow
//! set; cold fields are not and trap when the hypervisor itself runs in
//! a VM), which MSRs it saves/restores, and how much native software
//! path it executes.
//!
//! These footprints are where exit multiplication comes from: with VMCS
//! shadowing, only the *cold* accesses of an L1 hypervisor trap; an L2
//! hypervisor has no shadowing at all, so *every* VMCS access traps,
//! and each such trap costs a full reflected round trip through L1.
//! The per-level ~20x cost growth of Table 3 is the product of these
//! counts — it is never hard-coded anywhere.

use dvh_arch::vmx::field as f;
use dvh_arch::Cycles;

/// The privileged-operation footprint of one hypervisor personality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HvProfile {
    /// VMCS fields read on every exit that are in the shadow set.
    pub hot_reads: Vec<u32>,
    /// VMCS fields read on every exit that are NOT in the shadow set.
    pub cold_reads: Vec<u32>,
    /// VMCS fields written on every entry that are in the shadow set.
    pub hot_writes: Vec<u32>,
    /// VMCS fields written on every entry that are NOT in the shadow set.
    pub cold_writes: Vec<u32>,
    /// MSRs read on the exit path (e.g. speculation-control save).
    pub exit_msr_reads: u32,
    /// MSRs written on the entry path (speculation control restore,
    /// hrtimer re-arm).
    pub entry_msr_writes: u32,
    /// APIC maintenance operations on the entry path that trap
    /// (trap-like APIC writes not covered by APICv).
    pub apic_maintenance: u32,
    /// Native software path length on the exit side (run at full speed
    /// regardless of level — compute never traps).
    pub exit_software: Cycles,
    /// Native software path length on the entry side.
    pub entry_software: Cycles,
    /// Whether this personality uses hardware VMCS shadowing when the
    /// platform offers it. KVM does; Xen's nested-virtualization
    /// support (immature in the paper's 4.10 era, §4) does not, so
    /// *every* VMCS access of a Xen guest hypervisor traps.
    pub uses_shadowing: bool,
}

impl HvProfile {
    /// The KVM personality, tuned so that the emergent L2/L3 costs in
    /// the simulator match the paper's Table 3 within a few percent.
    pub fn kvm() -> HvProfile {
        HvProfile {
            hot_reads: vec![
                f::VM_EXIT_REASON,
                f::EXIT_QUALIFICATION,
                f::GUEST_RIP,
                f::VM_EXIT_INSTRUCTION_LEN,
                f::VM_EXIT_INTR_INFO,
                f::GUEST_INTERRUPTIBILITY,
            ],
            cold_reads: vec![
                f::GUEST_CR3,
                f::GUEST_RFLAGS,
                f::VM_EXIT_INSTRUCTION_INFO,
                f::GUEST_ACTIVITY_STATE,
            ],
            hot_writes: vec![
                f::GUEST_RSP,
                f::GUEST_INTERRUPTIBILITY,
                f::VM_ENTRY_INTR_INFO,
                f::VM_ENTRY_INSTRUCTION_LEN,
            ],
            cold_writes: vec![
                f::TSC_OFFSET,
                f::PREEMPTION_TIMER_VALUE,
                f::EXCEPTION_BITMAP,
            ],
            exit_msr_reads: 1,
            entry_msr_writes: 2,
            apic_maintenance: 0,
            exit_software: Cycles::new(600),
            entry_software: Cycles::new(500),
            uses_shadowing: true,
        }
    }

    /// The Xen personality (Fig. 10): a somewhat heavier world switch
    /// (Xen's context switch between its own state and HVM guest state
    /// touches more control fields) and longer software paths.
    pub fn xen() -> HvProfile {
        let mut p = HvProfile::kvm();
        p.cold_reads.push(f::EXCEPTION_BITMAP);
        p.cold_reads.push(f::EPT_POINTER);
        p.cold_writes.push(f::MSR_BITMAP_ADDR);
        p.cold_writes.push(f::VIRTUAL_APIC_PAGE_ADDR);
        p.exit_msr_reads = 2;
        p.entry_msr_writes = 3;
        p.apic_maintenance = 1;
        p.exit_software = Cycles::new(800);
        p.entry_software = Cycles::new(700);
        p.uses_shadowing = false;
        p
    }

    /// The KVM/ARM personality (VHE-era, pre-NEVE): the nested world
    /// switch must save/restore the EL1/EL2 system-register context,
    /// and *none* of it is shadowed — ARM has no VMCS-shadowing
    /// analogue, so every access of a guest hypervisor traps (the
    /// exact deficiency the authors' NEVE work targets). The register
    /// footprint is larger than the x86 hot set: ESR, ELR, SPSR, FAR,
    /// HPFAR, SCTLR, TTBRx, TCR, VBAR, CNTV state, GIC list registers.
    pub fn kvm_arm() -> HvProfile {
        HvProfile {
            // On ARM the "hot" fields trap too (no shadowing), so the
            // hot/cold split is degenerate: everything is cold.
            hot_reads: Vec::new(),
            cold_reads: vec![
                f::VM_EXIT_REASON,         // ESR_EL2
                f::EXIT_QUALIFICATION,     // ISS/FAR_EL2
                f::GUEST_RIP,              // ELR_EL2
                f::GUEST_RFLAGS,           // SPSR_EL2
                f::GUEST_PHYSICAL_ADDRESS, // HPFAR_EL2
                f::GUEST_INTERRUPTIBILITY, // PSTATE bits
                f::GUEST_CR3,              // TTBR0_EL1
                f::GUEST_ACTIVITY_STATE,
            ],
            hot_writes: Vec::new(),
            cold_writes: vec![
                f::GUEST_RIP,              // ELR_EL2
                f::VM_ENTRY_INTR_INFO,     // HCR_EL2.VI / list registers
                f::TSC_OFFSET,             // CNTVOFF_EL2
                f::EXCEPTION_BITMAP,       // HCR_EL2 trap bits
                f::PREEMPTION_TIMER_VALUE, // CNTHP
            ],
            exit_msr_reads: 1,
            entry_msr_writes: 2,
            apic_maintenance: 1, // GIC list-register maintenance
            exit_software: Cycles::new(500),
            entry_software: Cycles::new(450),
            uses_shadowing: false,
        }
    }

    /// Total privileged VMCS accesses per exit/entry pair.
    pub fn total_vmcs_ops(&self) -> usize {
        self.hot_reads.len()
            + self.cold_reads.len()
            + self.hot_writes.len()
            + self.cold_writes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::vmx::ShadowFieldSet;

    #[test]
    fn kvm_hot_fields_really_are_shadowed() {
        let p = HvProfile::kvm();
        let s = ShadowFieldSet::kvm_default();
        for &field in &p.hot_reads {
            assert!(
                s.covers_read(field),
                "hot read {field:#x} not in shadow set"
            );
        }
        for &field in &p.hot_writes {
            assert!(
                s.covers_write(field),
                "hot write {field:#x} not in shadow set"
            );
        }
    }

    #[test]
    fn kvm_cold_fields_really_are_cold() {
        let p = HvProfile::kvm();
        let s = ShadowFieldSet::kvm_default();
        for &field in &p.cold_reads {
            assert!(
                !s.covers_read(field),
                "cold read {field:#x} IS in shadow set"
            );
        }
        for &field in &p.cold_writes {
            assert!(
                !s.covers_write(field),
                "cold write {field:#x} IS in shadow set"
            );
        }
    }

    #[test]
    fn xen_is_heavier_than_kvm() {
        let kvm = HvProfile::kvm();
        let xen = HvProfile::xen();
        assert!(xen.total_vmcs_ops() > kvm.total_vmcs_ops());
        assert!(xen.exit_software > kvm.exit_software);
    }
}
