//! Trace export: converting [`TraceEvent`] streams into Chrome
//! trace-event JSON and JSONL, plus the span accounting the checker
//! uses to certify an export against the engine's attribution ledger.
//!
//! # Chrome track layout (DESIGN.md §10)
//!
//! Each simulated CPU becomes one process (`pid` = CPU index); each
//! virtualization level becomes one thread within it (`tid` = level).
//! An outermost exit renders as a complete ("X") span on the track of
//! the level that exited, with `ts = completed.at - spent` and
//! `dur = spent` taken verbatim from the engine's `Completed` event —
//! so summing the durations of `outermost: true` spans per
//! (level, reason) reproduces `RunStats::cycles_by_reason` *exactly*,
//! which is what the checker's metrics pass certifies. Nested exits
//! (the multiplication itself) render as inner spans on their own
//! level's track, closing at their `Returned` event — the exact
//! instant their round trip finished — so inner spans nest without
//! overlapping and the causal tree ([`causal_forest`]) can partition
//! every outermost span into per-frame self times. Interventions, DVH
//! intercepts, and interrupt deliveries are instant ("i") events.
//!
//! Timestamps are simulated cycles written verbatim; the viewer labels
//! them microseconds, but only relative magnitude matters and cycles
//! keep the export exact.

use crate::trace::TraceEvent;
use dvh_arch::vmx::ExitReason;
use dvh_arch::Cycles;
use dvh_obs::chrome::ChromeTrace;
use dvh_obs::json::Value;
use std::collections::BTreeMap;

/// An exit that has been recorded but whose completion has not yet
/// been seen while scanning the event stream.
struct OpenExit {
    at: Cycles,
    lvl: usize,
    reason: ExitReason,
}

fn span_args(lvl: usize, reason: ExitReason, outermost: bool) -> Vec<(String, Value)> {
    vec![
        ("level".to_string(), Value::Int(lvl as i64)),
        ("reason".to_string(), Value::Str(reason.to_string())),
        ("outermost".to_string(), Value::Bool(outermost)),
    ]
}

/// Converts a trace into a Chrome trace-event document with one
/// process per simulated CPU and one thread per level.
pub fn chrome_trace(events: &[TraceEvent], num_cpus: usize, levels: usize) -> ChromeTrace {
    let mut t = ChromeTrace::new();
    for cpu in 0..num_cpus {
        t.set_process_name(cpu, &format!("cpu{cpu}"));
        for lvl in 1..=levels {
            t.set_thread_name(cpu, lvl, &format!("L{lvl}"));
        }
    }
    // Per-CPU stacks of exits awaiting their completion. Only the
    // outermost exit of a chain gets a `Completed` event, which
    // therefore closes every open exit on that CPU.
    let mut open: Vec<Vec<OpenExit>> = (0..num_cpus).map(|_| Vec::new()).collect();
    for e in events {
        match e {
            TraceEvent::Exit {
                at,
                cpu,
                from_level,
                reason,
                ..
            } => {
                if let Some(stack) = open.get_mut(*cpu) {
                    stack.push(OpenExit {
                        at: *at,
                        lvl: *from_level,
                        reason: *reason,
                    });
                }
            }
            TraceEvent::Returned { at, cpu, .. } => {
                // A nested exit's round trip finished: close its span
                // at the true return time. The bottom stack entry is
                // the outermost exit, which only `Completed` closes.
                if let Some(stack) = open.get_mut(*cpu) {
                    if stack.len() > 1 {
                        let o = stack.pop().expect("len checked above");
                        let dur = (*at - o.at).as_u64();
                        t.span(
                            &format!("exit L{} {}", o.lvl, o.reason),
                            "exit",
                            *cpu,
                            o.lvl,
                            o.at.as_u64(),
                            dur,
                            span_args(o.lvl, o.reason, false),
                        );
                    }
                }
            }
            TraceEvent::Completed {
                at,
                cpu,
                from_level,
                reason,
                spent,
            } => {
                if let Some(stack) = open.get_mut(*cpu) {
                    // Leftover inner exits (possible only when the
                    // bounded buffer evicted their `Returned`) close at
                    // the instant the outermost one resumes.
                    while stack.len() > 1 {
                        let o = stack.pop().expect("len checked above");
                        let dur = (*at - o.at).as_u64();
                        t.span(
                            &format!("exit L{} {}", o.lvl, o.reason),
                            "exit",
                            *cpu,
                            o.lvl,
                            o.at.as_u64(),
                            dur,
                            span_args(o.lvl, o.reason, false),
                        );
                    }
                    // The matching outermost open (absent only when
                    // the trace buffer evicted it).
                    stack.pop();
                }
                // The outermost span takes ts and dur verbatim from
                // the Completed event, guaranteeing span totals equal
                // the attribution ledger even for truncated traces.
                let dur = spent.as_u64();
                t.span(
                    &format!("exit L{} {}", *from_level, *reason),
                    "exit",
                    *cpu,
                    *from_level,
                    at.as_u64().saturating_sub(dur),
                    dur,
                    span_args(*from_level, *reason, true),
                );
            }
            TraceEvent::Intervention {
                at,
                cpu,
                hv_level,
                reason,
            } => {
                t.instant(
                    &format!("intervene L{hv_level}"),
                    "intervention",
                    *cpu,
                    *hv_level,
                    at.as_u64(),
                    vec![("reason".to_string(), Value::Str(reason.to_string()))],
                );
            }
            TraceEvent::DvhIntercept { at, cpu, mechanism } => {
                t.instant(
                    &format!("DVH {mechanism}"),
                    "dvh",
                    *cpu,
                    0,
                    at.as_u64(),
                    vec![(
                        "mechanism".to_string(),
                        Value::Str((*mechanism).to_string()),
                    )],
                );
            }
            TraceEvent::IrqDelivered {
                at,
                cpu,
                vector,
                woke,
            } => {
                t.instant(
                    &format!("irq {vector:#x}"),
                    "irq",
                    *cpu,
                    0,
                    at.as_u64(),
                    vec![
                        ("vector".to_string(), Value::Int(*vector as i64)),
                        ("woke".to_string(), Value::Bool(*woke)),
                    ],
                );
            }
        }
    }
    t
}

/// [`chrome_trace`], serialized.
pub fn chrome_json(events: &[TraceEvent], num_cpus: usize, levels: usize) -> String {
    chrome_trace(events, num_cpus, levels).to_json()
}

/// One JSON object per event, one event per line — the
/// machine-readable sibling of the `Display` text format.
pub fn jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&event_value(e).to_json());
        out.push('\n');
    }
    out
}

/// A single trace event as a JSON value.
pub fn event_value(e: &TraceEvent) -> Value {
    let mut members: Vec<(String, Value)> = Vec::new();
    let mut put = |k: &str, v: Value| members.push((k.to_string(), v));
    match e {
        TraceEvent::Exit {
            at,
            cpu,
            from_level,
            reason,
            vmcs_field,
        } => {
            put("type", Value::Str("exit".to_string()));
            put("at", Value::Int(at.as_u64() as i64));
            put("cpu", Value::Int(*cpu as i64));
            put("level", Value::Int(*from_level as i64));
            put("reason", Value::Str(reason.to_string()));
            if let Some(f) = vmcs_field {
                put("vmcs_field", Value::Int(*f as i64));
            }
        }
        TraceEvent::Completed {
            at,
            cpu,
            from_level,
            reason,
            spent,
        } => {
            put("type", Value::Str("completed".to_string()));
            put("at", Value::Int(at.as_u64() as i64));
            put("cpu", Value::Int(*cpu as i64));
            put("level", Value::Int(*from_level as i64));
            put("reason", Value::Str(reason.to_string()));
            put("spent", Value::Int(spent.as_u64() as i64));
        }
        TraceEvent::Returned {
            at,
            cpu,
            from_level,
            reason,
        } => {
            put("type", Value::Str("returned".to_string()));
            put("at", Value::Int(at.as_u64() as i64));
            put("cpu", Value::Int(*cpu as i64));
            put("level", Value::Int(*from_level as i64));
            put("reason", Value::Str(reason.to_string()));
        }
        TraceEvent::Intervention {
            at,
            cpu,
            hv_level,
            reason,
        } => {
            put("type", Value::Str("intervention".to_string()));
            put("at", Value::Int(at.as_u64() as i64));
            put("cpu", Value::Int(*cpu as i64));
            put("level", Value::Int(*hv_level as i64));
            put("reason", Value::Str(reason.to_string()));
        }
        TraceEvent::DvhIntercept { at, cpu, mechanism } => {
            put("type", Value::Str("dvh".to_string()));
            put("at", Value::Int(at.as_u64() as i64));
            put("cpu", Value::Int(*cpu as i64));
            put("mechanism", Value::Str((*mechanism).to_string()));
        }
        TraceEvent::IrqDelivered {
            at,
            cpu,
            vector,
            woke,
        } => {
            put("type", Value::Str("irq".to_string()));
            put("at", Value::Int(at.as_u64() as i64));
            put("cpu", Value::Int(*cpu as i64));
            put("vector", Value::Int(*vector as i64));
            put("woke", Value::Bool(*woke));
        }
    }
    Value::Obj(members)
}

/// Rebuilds the causal forest of a trace: one tree per outermost exit,
/// with every nested exit a child of the exit whose handling caused it
/// (DESIGN.md §11). The bridge between the engine's event vocabulary
/// and the level-agnostic builder in [`dvh_obs::causal`]: `Exit` opens
/// a node, `Returned` closes a nested one, `Completed` closes the
/// outermost — with the root interval taken verbatim from
/// `[at - spent, at]` so root spans reproduce the attribution ledger
/// bit for bit (the trace linter's `cycle-attribution` rule proves
/// `at - spent` is the recorded exit time).
pub fn causal_forest(events: &[TraceEvent], num_cpus: usize) -> dvh_obs::causal::Forest {
    let mut b = dvh_obs::causal::CausalBuilder::new(num_cpus);
    for e in events {
        match e {
            TraceEvent::Exit {
                at,
                cpu,
                from_level,
                reason,
                ..
            } => b.exit(*cpu, at.as_u64(), *from_level, *reason),
            TraceEvent::Returned { at, cpu, .. } => b.returned(*cpu, at.as_u64()),
            TraceEvent::Completed {
                at,
                cpu,
                from_level,
                reason,
                spent,
            } => b.completed(*cpu, at.as_u64(), *from_level, *reason, spent.as_u64()),
            TraceEvent::Intervention { .. }
            | TraceEvent::DvhIntercept { .. }
            | TraceEvent::IrqDelivered { .. } => {}
        }
    }
    b.finish()
}

/// Per-(level, reason) cycle totals of the trace's `Completed` events
/// — what the outermost chrome spans sum to, shaped like
/// [`crate::stats::RunStats::cycles_by_reason`].
pub fn span_cycle_totals(events: &[TraceEvent]) -> BTreeMap<(usize, ExitReason), Cycles> {
    let mut totals: BTreeMap<(usize, ExitReason), Cycles> = BTreeMap::new();
    for e in events {
        if let TraceEvent::Completed {
            from_level,
            reason,
            spent,
            ..
        } = e
        {
            *totals.entry((*from_level, *reason)).or_insert(Cycles::ZERO) += *spent;
        }
    }
    totals
}

/// Sums the durations of `outermost: true` spans in a *parsed* chrome
/// document, keyed by (level, rendered reason). Re-deriving the totals
/// from the serialized JSON (rather than from the events) is what lets
/// the checker certify the export itself, round trip included.
pub fn chrome_outermost_totals(doc: &Value) -> BTreeMap<(usize, String), u64> {
    let mut totals: BTreeMap<(usize, String), u64> = BTreeMap::new();
    let Some(events) = doc.get("traceEvents").and_then(Value::items) else {
        return totals;
    };
    for e in events {
        if e.get("ph").and_then(Value::as_str) != Some("X") {
            continue;
        }
        let Some(args) = e.get("args") else { continue };
        if args.get("outermost") != Some(&Value::Bool(true)) {
            continue;
        }
        let (Some(lvl), Some(reason), Some(dur)) = (
            args.get("level").and_then(Value::as_int),
            args.get("reason").and_then(Value::as_str),
            e.get("dur").and_then(Value::as_int),
        ) else {
            continue;
        };
        *totals
            .entry((lvl as usize, reason.to_string()))
            .or_insert(0) += dur as u64;
    }
    totals
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::world::World;
    use dvh_arch::costs::CostModel;
    use dvh_obs::json;

    fn traced_world() -> (World, Vec<TraceEvent>) {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.enable_tracing(1 << 20);
        w.guest_hypercall(0);
        w.guest_hypercall(0);
        let events = w.take_trace();
        (w, events)
    }

    #[test]
    fn chrome_export_round_trips() {
        let (w, events) = traced_world();
        let text = chrome_json(&events, w.num_cpus(), w.leaf_level());
        let doc = json::parse(&text).expect("export must parse");
        assert_eq!(doc.to_json(), text, "round trip must be the identity");
        assert!(!doc.get("traceEvents").unwrap().items().unwrap().is_empty());
    }

    #[test]
    fn outermost_span_totals_equal_attribution_ledger() {
        let (w, events) = traced_world();
        let text = chrome_json(&events, w.num_cpus(), w.leaf_level());
        let doc = json::parse(&text).unwrap();
        let from_json = chrome_outermost_totals(&doc);
        assert!(!from_json.is_empty());
        let ledger = &w.stats.cycles_by_reason;
        assert_eq!(from_json.len(), ledger.len());
        for ((lvl, reason), c) in ledger {
            let got = from_json
                .get(&(*lvl, reason.to_string()))
                .copied()
                .unwrap_or(0);
            assert_eq!(got, c.as_u64(), "(L{lvl}, {reason})");
        }
    }

    #[test]
    fn span_totals_helper_matches_ledger() {
        let (w, events) = traced_world();
        assert_eq!(span_cycle_totals(&events), w.stats.cycles_by_reason);
    }

    #[test]
    fn nested_spans_are_emitted_for_exit_multiplication() {
        let (w, events) = traced_world();
        let doc = json::parse(&chrome_json(&events, w.num_cpus(), w.leaf_level())).unwrap();
        let spans: Vec<_> = doc
            .get("traceEvents")
            .unwrap()
            .items()
            .unwrap()
            .iter()
            .filter(|e| e.get("ph").and_then(Value::as_str) == Some("X"))
            .collect();
        // A reflected L2 hypercall traps recursively: there must be
        // inner spans beyond the outermost ones.
        assert!(spans
            .iter()
            .any(|s| s.get("args").unwrap().get("outermost") == Some(&Value::Bool(false))));
        // Inner spans sit on their own level's thread track.
        for s in &spans {
            assert_eq!(
                s.get("tid").and_then(Value::as_int),
                s.get("args").unwrap().get("level").and_then(Value::as_int)
            );
        }
    }

    #[test]
    fn jsonl_lines_parse_individually() {
        let (_, events) = traced_world();
        let text = jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for line in lines {
            let v = json::parse(line).expect("every line is a JSON object");
            assert!(v.get("type").and_then(Value::as_str).is_some());
            assert!(v.get("at").and_then(Value::as_int).is_some());
        }
    }
}
