//! # dvh-hypervisor
//!
//! A KVM-like hypervisor with nested VMX emulation, for the DVH
//! nested-virtualization simulator (reproduction of Lim & Nieh,
//! *Optimizing Nested Virtualization Performance Using Direct Virtual
//! Hardware*, ASPLOS 2020).
//!
//! The crate models the *substrate*: a host hypervisor (L0) running a
//! chain of guest hypervisors and a leaf VM, with single-level
//! architectural virtualization support — exactly mainline-KVM
//! behaviour, no DVH. The DVH mechanisms plug in from `dvh-core`
//! through the [`extension::L0Extension`] hook and through
//! configuration (virtual-passthrough and virtual idle are, as the
//! paper stresses, configuration changes on an unmodified
//! trap-and-emulate engine).
//!
//! ## What is emergent vs. specified
//!
//! Handler *programs* are specified (which VMCS fields a personality
//! touches per world switch, per [`profile::HvProfile`]); all nested
//! *costs* are emergent from recursion: a guest hypervisor's privileged
//! instruction traps, its handler's privileged instructions trap, and
//! so on. The ~24x per-level growth of the paper's Table 3 is never
//! written down anywhere in this crate.
//!
//! ## Example
//!
//! ```
//! use dvh_hypervisor::{World, WorldConfig};
//! use dvh_arch::costs::CostModel;
//!
//! // A nested VM (L2) with the paper's baseline configuration.
//! let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
//! let cost = w.guest_hypercall(0);
//! assert!(cost.as_u64() > 20_000, "nested hypercalls are expensive: {cost}");
//! assert!(w.stats.total_interventions() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod config;
mod exits;
pub mod extension;
mod guest;
mod io;
mod lifecycle;
mod memory_virt;
pub mod profile;
mod runtime;
pub mod stats;
pub mod trace;
pub mod trace_export;
pub mod world;

pub use check::VmentryFinding;
pub use config::{DvhFlags, HvKind, IoModel, WorldConfig};
pub use extension::{Intercept, L0Extension};
pub use runtime::IrqPath;
pub use stats::RunStats;
pub use trace::TraceEvent;
pub use world::World;
