//! L0 extension hook — the seam where DVH plugs into the host
//! hypervisor.
//!
//! The substrate hypervisor in this crate behaves like mainline KVM: an
//! exit from a nested VM is reflected to its guest hypervisor unless
//! architectural rules say otherwise. The DVH mechanisms of the paper
//! are patches to the *host* hypervisor that claim certain nested-VM
//! exits and emulate them directly at L0; `dvh-core` implements them as
//! [`L0Extension`]s registered on the [`World`].

use crate::world::World;
use dvh_arch::vmx::{ExitQualification, ExitReason};

/// Result of offering an exit to an extension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intercept {
    /// The extension did not claim the exit; continue with the next
    /// extension or the architectural path (reflection).
    NotHandled,
    /// The extension fully handled the exit at L0 (including the VM
    /// entry back into the nested VM).
    Handled,
}

/// A host-hypervisor extension consulted before exit reflection.
///
/// Extensions run only for exits from nested VMs (`from_level >= 2`);
/// L1 exits are always L0's own business, with or without DVH.
pub trait L0Extension {
    /// A short stable name, used in the statistics ledger.
    fn name(&self) -> &'static str;

    /// Offers an exit to the extension. Implementations that claim the
    /// exit must charge all handling costs (via the [`World`]
    /// primitives) *and* the final VM entry, then return
    /// [`Intercept::Handled`].
    fn try_intercept(
        &mut self,
        w: &mut World,
        cpu: usize,
        from_level: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) -> Intercept;
}
