//! Post-run analysis: turn the exit ledger and cycle attribution into
//! the kind of breakdown the paper's discussion sections give ("the
//! root cause of the overhead is exits from the nested VM to the guest
//! hypervisor").

use dvh_arch::vmx::ExitReason;
use dvh_arch::Cycles;
use dvh_hypervisor::World;
use std::fmt;

/// One attributed cost line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostLine {
    /// Level the outermost exit came from.
    pub level: usize,
    /// Its reason.
    pub reason: ExitReason,
    /// Number of such exits.
    pub count: u64,
    /// Total cycles spent handling them (including all nested traps).
    pub total: Cycles,
}

impl CostLine {
    /// Mean cycles per exit.
    pub fn mean(&self) -> u64 {
        self.total.as_u64().checked_div(self.count).unwrap_or(0)
    }
}

/// A digested view of a run's virtualization costs.
#[derive(Debug, Clone, PartialEq)]
pub struct Report {
    /// Cost lines, most expensive first.
    pub lines: Vec<CostLine>,
    /// Total attributed cycles.
    pub total: Cycles,
    /// Guest-hypervisor interventions.
    pub interventions: u64,
    /// DVH interceptions.
    pub dvh_intercepts: u64,
    /// Exits per intervention (the multiplication factor actually
    /// observed).
    pub exits_per_intervention: f64,
}

/// Builds a [`Report`] from a world's accumulated statistics.
pub fn explain(w: &World) -> Report {
    let mut lines: Vec<CostLine> = w
        .stats
        .cycles_by_reason
        .iter()
        .map(|(&(level, reason), &total)| CostLine {
            level,
            reason,
            count: w.stats.exits_with(level, reason),
            total,
        })
        .collect();
    lines.sort_by_key(|l| std::cmp::Reverse(l.total));
    let interventions = w.stats.total_interventions();
    Report {
        total: w.stats.total_attributed_cycles(),
        interventions,
        dvh_intercepts: w.stats.total_dvh_intercepts(),
        exits_per_intervention: if interventions == 0 {
            0.0
        } else {
            w.stats.total_exits() as f64 / interventions as f64
        },
        lines,
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "total virtualization cost: {} across {} cost classes",
            self.total,
            self.lines.len()
        )?;
        writeln!(
            f,
            "guest-hypervisor interventions: {} ({:.1} hardware exits each); DVH handled: {}",
            self.interventions, self.exits_per_intervention, self.dvh_intercepts
        )?;
        for l in self.lines.iter().take(8) {
            writeln!(
                f,
                "  L{} {:<18} x{:<6} {:>12} cycles total ({:>9}/exit)",
                l.level,
                l.reason.to_string(),
                l.count,
                l.total.as_u64(),
                l.mean()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Machine, MachineConfig};

    #[test]
    fn report_ranks_costs_and_accounts_everything() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        m.hypercall(0);
        m.program_timer(0);
        m.send_ipi(0, 1);
        let r = explain(m.world());
        assert!(!r.lines.is_empty());
        // Sorted descending.
        for w in r.lines.windows(2) {
            assert!(w[0].total >= w[1].total);
        }
        // Every line's count is nonzero and means are sane.
        for l in &r.lines {
            assert!(l.count > 0);
            assert!(l.mean() > 0);
        }
        assert_eq!(
            r.total,
            r.lines.iter().map(|l| l.total).sum::<Cycles>(),
            "lines partition the total"
        );
    }

    #[test]
    fn dvh_report_shows_intercepts_and_no_interventions() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        m.program_timer(0);
        m.send_ipi(0, 1);
        let r = explain(m.world());
        assert_eq!(r.interventions, 0);
        assert!(r.dvh_intercepts >= 2);
        assert_eq!(r.exits_per_intervention, 0.0);
    }

    #[test]
    fn vanilla_nested_shows_exit_multiplication_factor() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        m.hypercall(0);
        let r = explain(m.world());
        assert!(
            r.exits_per_intervention > 10.0,
            "one intervention costs many exits: {}",
            r.exits_per_intervention
        );
    }

    #[test]
    fn display_is_informative() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        m.hypercall(0);
        let text = explain(m.world()).to_string();
        assert!(text.contains("interventions"));
        assert!(text.contains("Vmcall"));
    }
}
