//! # dvh-core — Direct Virtual Hardware
//!
//! A full reproduction of **"Optimizing Nested Virtualization
//! Performance Using Direct Virtual Hardware"** (Jin Tack Lim and Jason
//! Nieh, ASPLOS 2020) as a deterministic simulation: the four DVH
//! mechanisms, recursive DVH, and DVH migration, implemented against a
//! KVM-like substrate hypervisor ([`dvh_hypervisor`]).
//!
//! DVH lets the *host* hypervisor (L0) provide virtual hardware
//! directly to nested VMs, so that their hardware accesses no longer
//! require the intervention of every intermediate guest hypervisor —
//! eliminating the exit-multiplication problem that makes nested
//! virtualization an order of magnitude slower than non-nested
//! virtualization.
//!
//! ## The four mechanisms
//!
//! * [`vp`] — **virtual-passthrough** (§3.1): assign the host's
//!   *virtual* I/O device through the levels to the nested VM, keeping
//!   I/O interposition (and thus migration) while removing all guest
//!   hypervisor interventions from the I/O path.
//! * [`vtimer`] — **virtual timers** (§3.2): a per-vCPU LAPIC timer
//!   provided by L0 that nested VMs program with one inexpensive exit.
//! * [`vipi`] — **virtual IPIs** (§3.3): a virtual interrupt command
//!   register plus the VCIMT (virtual CPU interrupt mapping table)
//!   that lets L0 send a nested VM's IPIs directly.
//! * [`vidle`] — **virtual idle** (§3.4): guest hypervisors stop
//!   intercepting `hlt`, so only L0 handles nested-VM idle transitions.
//!
//! Plus [`migration_cap`] — the PCI **migration capability** (§3.6)
//! that lets a guest hypervisor migrate a nested VM using a
//! virtual-passthrough device by harvesting L0's device state and
//! dirty-page log.
//!
//! ## Quick start
//!
//! ```
//! use dvh_core::{Machine, MachineConfig};
//!
//! // A nested VM (L2) with every DVH mechanism enabled.
//! let mut m = Machine::build(MachineConfig::dvh(2));
//! let timer_cost = m.program_timer(0);
//! // Near non-nested cost, instead of the ~43,000 cycles vanilla
//! // nested virtualization pays (paper Table 3).
//! assert!(timer_cost.as_u64() < 4_000);
//! // And the guest hypervisor was never involved:
//! assert_eq!(m.world().stats.total_interventions(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod capability;
pub mod machine;
pub mod migration_cap;
pub mod vidle;
pub mod vipi;
pub mod vp;
pub mod vtimer;

pub use dvh_arch::costs::CostModel;
pub use dvh_arch::Cycles;
pub use dvh_hypervisor::{DvhFlags, HvKind, IoModel, RunStats, World};
pub use machine::{Machine, MachineConfig};
