//! Virtual IPIs (§3.3): a virtual interrupt command register plus the
//! virtual CPU interrupt mapping table (VCIMT).
//!
//! Sending an IPI from a nested VM normally traps to the guest
//! hypervisor, which updates the destination's posted-interrupt
//! descriptor and asks the hardware — through *another* trapped ICR
//! write — to send the notification (the paper's Fig. 4). The host
//! hypervisor cannot short-circuit this on its own because it does not
//! know where the nested VM's virtual CPUs run.
//!
//! The VCIMT fixes exactly that: a per-VM table, maintained by the
//! guest hypervisor and advertised to the host through the VCIMTAR
//! register, mapping nested vCPU numbers to their PI descriptors
//! (which contain the physical destination). With it, L0 handles the
//! whole send side in one exit (Fig. 5).

use crate::capability::effectively_enabled;
use dvh_arch::apic::IcrValue;
use dvh_arch::msr;
use dvh_arch::vmx::{ctrl, field, ExitQualification, ExitReason};
use dvh_hypervisor::{Intercept, IrqPath, L0Extension, World};

/// The virtual CPU interrupt mapping table: nested vCPU number → PI
/// descriptor identifier (each PI descriptor names the physical CPU to
/// notify).
///
/// The table is a plain in-memory structure owned by the guest
/// hypervisor; the host reads it through the address programmed in
/// VCIMTAR. In the simulator we hold it directly and account the
/// memory-walk costs at lookup time.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Vcimt {
    entries: Vec<Option<u32>>,
}

impl Vcimt {
    /// Creates an identity table for `vcpus` vCPUs (vCPU i's PI
    /// descriptor is descriptor i) — the pinned configuration the
    /// paper's evaluation uses.
    pub fn identity(vcpus: usize) -> Vcimt {
        Vcimt {
            entries: (0..vcpus as u32).map(Some).collect(),
        }
    }

    /// Creates an empty table with `vcpus` slots.
    pub fn new(vcpus: usize) -> Vcimt {
        Vcimt {
            entries: vec![None; vcpus],
        }
    }

    /// Sets the mapping for `vcpu`.
    pub fn set(&mut self, vcpu: usize, pi_desc: u32) {
        if vcpu >= self.entries.len() {
            self.entries.resize(vcpu + 1, None);
        }
        self.entries[vcpu] = Some(pi_desc);
    }

    /// Looks up the PI descriptor for `vcpu`.
    pub fn lookup(&self, vcpu: usize) -> Option<u32> {
        self.entries.get(vcpu).copied().flatten()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// The virtual-IPI L0 extension.
#[derive(Debug, Default)]
pub struct VirtualIpis {
    /// The mapping table shared by the guest hypervisor (VCIMTAR).
    pub vcimt: Vcimt,
    intercepts: u64,
}

impl VirtualIpis {
    /// Creates the extension with the identity table for `vcpus`.
    pub fn new(vcpus: usize) -> VirtualIpis {
        VirtualIpis {
            vcimt: Vcimt::identity(vcpus),
            intercepts: 0,
        }
    }

    /// How many IPI sends this extension has handled.
    pub fn intercept_count(&self) -> u64 {
        self.intercepts
    }
}

impl L0Extension for VirtualIpis {
    fn name(&self) -> &'static str {
        "vipi"
    }

    fn try_intercept(
        &mut self,
        w: &mut World,
        cpu: usize,
        from_level: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) -> Intercept {
        if reason != ExitReason::MsrWrite || qual.msr != msr::IA32_X2APIC_ICR {
            return Intercept::NotHandled;
        }
        if from_level != w.leaf_level()
            || !effectively_enabled(w, from_level, cpu, ctrl::dvh::VIRTUAL_IPI)
        {
            return Intercept::NotHandled;
        }
        let icr = IcrValue::decode(qual.msr_value);
        // The host can only resolve the destination if the guest
        // hypervisor programmed the VCIMT for it.
        let Some(pi_desc) = self.vcimt.lookup(icr.dest as usize) else {
            return Intercept::NotHandled;
        };
        self.intercepts += 1;

        // Confirm enablement (native vmread of merged controls) and
        // read the VCIMTAR + table entry (guest-memory walks, Fig. 5
        // step 2).
        w.hv_vmread(0, cpu, field::DVH_EXEC_CONTROLS);
        w.hv_vmread(0, cpu, field::DVH_VCIMTAR);
        w.compute(cpu, w.costs.walk_mem_ref * 3);
        w.compute(cpu, dvh_arch::Cycles::new(800)); // DVH bookkeeping

        // Emulate the ICR write: update the PI descriptor named by the
        // table and notify its physical CPU.
        w.compute(cpu, w.costs.icr_emulate);
        w.compute(cpu, w.costs.pi_desc_update);
        let dest_cpu = w.pi_desc[pi_desc as usize].ndst as usize;
        w.compute(cpu, w.costs.ipi_send);
        let t = w.now(cpu);
        w.deliver_leaf_interrupt(dest_cpu, icr.vector, t, IrqPath::PostedDirect);

        // Advance RIP and re-enter the nested VM.
        w.hv_vmwrite(0, cpu, field::GUEST_RIP, 0);
        w.l0_vmentry(cpu);
        Intercept::Handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::{enable_everywhere, enable_virtual_idle};
    use dvh_arch::costs::CostModel;
    use dvh_hypervisor::WorldConfig;

    fn dvh_world(levels: usize) -> World {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(levels));
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_IPI);
        enable_virtual_idle(&mut w);
        let vcpus = w.num_cpus();
        w.register_extension(Box::new(VirtualIpis::new(vcpus)));
        w
    }

    #[test]
    fn nested_ipi_send_is_cheap_and_intervention_free() {
        let mut w = dvh_world(2);
        let c = w.send_ipi_to_idle(0, 1).as_u64();
        assert!((4_200..=6_200).contains(&c), "DVH L2 SendIPI {c}");
        assert_eq!(w.stats.total_interventions(), 0);
        assert_eq!(w.stats.dvh_intercepts.get("vipi"), Some(&1));
    }

    #[test]
    fn dvh_ipi_cost_is_level_invariant() {
        let mut w2 = dvh_world(2);
        let c2 = w2.send_ipi_to_idle(0, 1).as_u64();
        let mut w3 = dvh_world(3);
        let c3 = w3.send_ipi_to_idle(0, 1).as_u64();
        assert!(c3.abs_diff(c2) * 10 <= c2, "L2={c2} L3={c3}");
    }

    #[test]
    fn vcimt_indirection_is_honoured() {
        // Map nested vCPU 1 to PI descriptor 2 (physical CPU 2): the
        // IPI must land on CPU 2, not CPU 1.
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_IPI);
        let mut ext = VirtualIpis::new(w.num_cpus());
        ext.vcimt.set(1, 2);
        w.register_extension(Box::new(ext));
        let before_cpu2 = w.now(2);
        w.guest_send_ipi(0, 1, 0x55);
        assert!(w.now(2) > before_cpu2, "cpu2 should have received work");
    }

    #[test]
    fn missing_vcimt_entry_falls_back_to_guest_hypervisor() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_IPI);
        let mut ext = VirtualIpis::new(0);
        ext.vcimt = Vcimt::new(0); // nothing mapped
        w.register_extension(Box::new(ext));
        w.guest_send_ipi(0, 1, 0x55);
        assert!(w.stats.total_interventions() > 0);
    }

    #[test]
    fn vcimt_table_ops() {
        let mut t = Vcimt::new(2);
        assert_eq!(t.lookup(0), None);
        t.set(0, 7);
        t.set(5, 9); // grows
        assert_eq!(t.lookup(0), Some(7));
        assert_eq!(t.lookup(5), Some(9));
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }
}
