//! The public machine API: build a simulated stack in one of the
//! paper's configurations and drive it.

use crate::capability::{enable_everywhere, enable_virtual_idle};
use crate::vipi::VirtualIpis;
use crate::vp;
use crate::vtimer::VirtualTimers;
use dvh_arch::costs::CostModel;
use dvh_arch::vmx::{ctrl, ExitQualification, ExitReason};
use dvh_arch::Cycles;
use dvh_devices::nic::Frame;
use dvh_devices::virtio::net::NOTIFY_BAR_OFFSET;
use dvh_hypervisor::{DvhFlags, HvKind, IoModel, World, WorldConfig};

/// Configuration for a [`Machine`], mirroring the paper's evaluation
/// configurations (§4).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineConfig {
    /// The substrate configuration.
    pub world: WorldConfig,
    /// The cycle-cost model.
    pub costs: CostModel,
}

impl MachineConfig {
    /// `VM` / `nested VM` / `L3 VM` baseline with paravirtual I/O.
    pub fn baseline(levels: usize) -> MachineConfig {
        MachineConfig {
            world: WorldConfig::baseline(levels),
            costs: CostModel::calibrated(),
        }
    }

    /// The paper's `+ passthrough` configuration: a physical SR-IOV VF
    /// assigned through the levels.
    pub fn passthrough(levels: usize) -> MachineConfig {
        let mut c = MachineConfig::baseline(levels);
        c.world.io_model = IoModel::Passthrough;
        c
    }

    /// The paper's `DVH-VP` configuration: virtual-passthrough only,
    /// no vIOMMU posted interrupts, no other DVH mechanisms, no
    /// hypervisor changes.
    pub fn dvh_vp(levels: usize) -> MachineConfig {
        let mut c = MachineConfig::baseline(levels);
        c.world.io_model = IoModel::VirtualPassthrough;
        c
    }

    /// The paper's full `DVH` configuration: virtual-passthrough with
    /// vIOMMU posted interrupts, virtual timers, virtual IPIs, and
    /// virtual idle.
    pub fn dvh(levels: usize) -> MachineConfig {
        let mut c = MachineConfig::baseline(levels);
        c.world.io_model = IoModel::VirtualPassthrough;
        c.world.dvh = DvhFlags::ALL;
        c
    }

    /// A DVH configuration with a subset of mechanisms, for the
    /// incremental breakdown of Fig. 8.
    pub fn dvh_partial(levels: usize, flags: DvhFlags) -> MachineConfig {
        let mut c = MachineConfig::baseline(levels);
        c.world.io_model = IoModel::VirtualPassthrough;
        c.world.dvh = flags;
        c
    }

    /// Uses the Xen guest-hypervisor personality (Fig. 10).
    pub fn with_xen_guest(mut self) -> MachineConfig {
        self.world.guest_hv = HvKind::Xen;
        self
    }

    /// An ARM64 machine with paravirtual I/O: KVM/ARM guest
    /// hypervisors (no shadowing analogue) on ARM-calibrated costs.
    pub fn arm_baseline(levels: usize) -> MachineConfig {
        let mut c = MachineConfig::baseline(levels);
        c.world.guest_hv = HvKind::KvmArm;
        c.world.vmcs_shadowing = false;
        c.costs = CostModel::calibrated_arm();
        c
    }

    /// The ARM machine with physical device passthrough.
    pub fn arm_passthrough(levels: usize) -> MachineConfig {
        let mut c = MachineConfig::arm_baseline(levels);
        c.world.io_model = IoModel::Passthrough;
        c
    }

    /// The ARM machine with DVH virtual-passthrough — the mechanism
    /// the paper ported to ARM ("DVH-VP also significantly improved
    /// performance on ARM since I/O models are platform-agnostic",
    /// §4).
    pub fn arm_dvh_vp(levels: usize) -> MachineConfig {
        let mut c = MachineConfig::arm_baseline(levels);
        c.world.io_model = IoModel::VirtualPassthrough;
        c
    }
}

/// A fully configured simulated machine: the substrate [`World`] with
/// the requested DVH mechanisms registered and enabled.
#[derive(Debug)]
pub struct Machine {
    world: World,
}

impl Machine {
    /// Builds the machine: constructs the world, registers the DVH
    /// extensions, and applies the guest-side enablement (§3.2–3.5).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration (e.g. zero levels, or DVH
    /// mechanisms with a Xen guest hypervisor).
    pub fn build(config: MachineConfig) -> Machine {
        let mut world = World::new(config.costs, config.world.clone());
        let flags = config.world.dvh;
        if flags.virtual_timers {
            enable_everywhere(&mut world, ctrl::dvh::VIRTUAL_TIMER);
            world.register_extension(Box::new(VirtualTimers::new()));
        }
        if flags.virtual_ipis {
            enable_everywhere(&mut world, ctrl::dvh::VIRTUAL_IPI);
            let vcpus = world.num_cpus();
            world.register_extension(Box::new(VirtualIpis::new(vcpus)));
        }
        if flags.virtual_idle {
            enable_virtual_idle(&mut world);
        }
        if config.world.io_model == IoModel::VirtualPassthrough {
            vp::enable_migration_capability(&mut world);
            vp::assign(&mut world).expect("virtual-passthrough assignment must succeed");
        }
        Machine { world }
    }

    /// The underlying world (stats, devices, memory).
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable world access for advanced scenarios.
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Number of leaf vCPUs.
    pub fn vcpus(&self) -> usize {
        self.world.num_cpus()
    }

    // ---- Table 1 microbenchmarks ---------------------------------------

    /// Hypercall: VM → hypervisor → VM with no work (Table 1).
    pub fn hypercall(&mut self, cpu: usize) -> Cycles {
        self.world.guest_hypercall(cpu)
    }

    /// DevNotify: an MMIO doorbell write from the leaf's virtio driver
    /// to its virtual I/O device (Table 1) — notification only, no
    /// data transfer.
    pub fn device_notify(&mut self, cpu: usize) -> Cycles {
        // The microbenchmark measures the uncached notification cost
        // (Table 3); invalidate KVM's MMIO fast-path cache first.
        self.world.invalidate_mmio_cache();
        let t0 = self.world.now(cpu);
        let n = self.world.leaf_level();
        match self.world.config.io_model {
            IoModel::Passthrough => {
                // Doorbell writes go straight to hardware; only the
                // store itself costs anything.
                self.world.compute(cpu, Cycles::new(100));
            }
            IoModel::VirtualPassthrough => {
                let bar = self.world.virtio[0].pci().bar(0).expect("BAR 0").base;
                self.world.vmexit(
                    n,
                    cpu,
                    ExitReason::EptMisconfig,
                    ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 1),
                );
            }
            IoModel::Virtio => {
                let dev = self.world.leaf_device_idx();
                let bar = self.world.virtio[dev].pci().bar(0).expect("BAR 0").base;
                self.world.vmexit(
                    n,
                    cpu,
                    ExitReason::EptMisconfig,
                    ExitQualification::mmio(bar + NOTIFY_BAR_OFFSET, 1),
                );
            }
        }
        self.world.now(cpu) - t0
    }

    /// ProgramTimer: arm the LAPIC timer in TSC-deadline mode (Table 1).
    pub fn program_timer(&mut self, cpu: usize) -> Cycles {
        self.world.guest_program_timer(cpu, 1 << 30)
    }

    /// SendIPI: send an IPI to an idle destination vCPU and wait for
    /// delivery (Table 1).
    pub fn send_ipi(&mut self, cpu: usize, dest: usize) -> Cycles {
        self.world.send_ipi_to_idle(cpu, dest)
    }

    // ---- Application-level operations -----------------------------------

    /// Native-speed computation.
    pub fn compute(&mut self, cpu: usize, c: Cycles) {
        self.world.guest_compute(cpu, c);
    }

    /// Transmit `packets` frames of `bytes` each.
    pub fn net_tx(&mut self, cpu: usize, packets: u32, bytes: u32) -> Cycles {
        let t0 = self.world.now(cpu);
        self.world.guest_net_tx(cpu, packets, bytes);
        self.world.now(cpu) - t0
    }

    /// An external packet arrives for `cpu`; returns cycles spent on
    /// the receive path (interrupt + delivery).
    pub fn net_rx(&mut self, cpu: usize, bytes: u32) -> Cycles {
        let t0 = self.world.now(cpu);
        let frame = Frame::patterned(bytes as usize, (bytes % 251) as u8);
        self.world.external_packet_arrival(cpu, frame);
        self.world.now(cpu) - t0
    }

    /// A block I/O operation of `bytes` (write if `write`).
    pub fn blk_io(&mut self, cpu: usize, bytes: u32, write: bool) -> Cycles {
        self.world.guest_blk_io(cpu, bytes, write)
    }

    /// A coalesced receive burst (one interrupt for `packets` frames).
    pub fn net_rx_burst(&mut self, cpu: usize, packets: u32, bytes: u32) -> Cycles {
        let t0 = self.world.now(cpu);
        self.world.net_rx_burst(cpu, packets, bytes);
        self.world.now(cpu) - t0
    }

    /// The leaf vCPU idles until the next event; charge the round trip.
    pub fn idle_round(&mut self, cpu: usize) -> Cycles {
        crate::vidle::halt_wake_round_trip(&mut self.world, cpu)
    }

    /// The leaf programs a short timer, idles, and takes the expiry —
    /// the latency-bound server pattern (netperf RR's timeout path).
    pub fn timer_sleep_round(&mut self, cpu: usize) -> Cycles {
        let t0 = self.world.now(cpu);
        self.world.guest_program_timer(cpu, 1 << 20);
        let dvh_direct = self.world.config.dvh.virtual_timers;
        self.world.fire_timer(cpu, dvh_direct);
        self.world.now(cpu) - t0
    }

    /// Current simulated time on `cpu`.
    pub fn now(&self, cpu: usize) -> Cycles {
        self.world.now(cpu)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_paper_configs() {
        for levels in [1, 2, 3] {
            Machine::build(MachineConfig::baseline(levels));
            Machine::build(MachineConfig::passthrough(levels));
            Machine::build(MachineConfig::dvh_vp(levels));
            Machine::build(MachineConfig::dvh(levels));
        }
        Machine::build(MachineConfig::dvh_vp(2).with_xen_guest());
    }

    #[test]
    fn dvh_recovers_microbenchmark_costs_to_near_l1() {
        let mut l1 = Machine::build(MachineConfig::baseline(1));
        let mut dvh2 = Machine::build(MachineConfig::dvh(2));
        // Timer and IPI within ~2x of L1; DevNotify within ~3x (the
        // nested EPT walk makes it pricier, as in Table 3).
        assert!(dvh2.program_timer(0).as_u64() <= 2 * l1.program_timer(0).as_u64());
        assert!(dvh2.send_ipi(0, 1).as_u64() <= 2 * l1.send_ipi(0, 1).as_u64());
        assert!(dvh2.device_notify(0).as_u64() <= 3 * l1.device_notify(0).as_u64());
    }

    #[test]
    fn hypercall_not_helped_by_dvh() {
        let mut base = Machine::build(MachineConfig::baseline(2));
        let mut dvh = Machine::build(MachineConfig::dvh(2));
        let b = base.hypercall(0).as_u64();
        let d = dvh.hypercall(0).as_u64();
        assert!(d >= b, "DVH never speeds up hypercalls ({b} -> {d})");
    }

    #[test]
    fn devnotify_matches_table3_bands() {
        let mut l1 = Machine::build(MachineConfig::baseline(1));
        let c = l1.device_notify(0).as_u64();
        assert!(
            (4_400..=5_600).contains(&c),
            "L1 DevNotify {c} vs paper 4,984"
        );

        let mut dvh2 = Machine::build(MachineConfig::dvh(2));
        let c = dvh2.device_notify(0).as_u64();
        assert!(
            (12_000..=16_000).contains(&c),
            "DVH L2 DevNotify {c} vs paper 13,815"
        );
    }

    #[test]
    fn nested_devnotify_is_expensive_without_dvh() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        let c = m.device_notify(0).as_u64();
        assert!(
            (40_000..=60_000).contains(&c),
            "L2 DevNotify {c} vs paper 48,390"
        );
    }

    #[test]
    fn net_tx_reaches_the_wire_in_every_model() {
        for cfg in [
            MachineConfig::baseline(2),
            MachineConfig::passthrough(2),
            MachineConfig::dvh_vp(2),
            MachineConfig::dvh(2),
        ] {
            let mut m = Machine::build(cfg);
            m.net_tx(0, 2, 1400);
            assert_eq!(
                m.world().nic.wire().len(),
                2,
                "io model must deliver frames"
            );
        }
    }

    #[test]
    fn full_dvh_has_zero_interventions_on_the_io_path() {
        let mut m = Machine::build(MachineConfig::dvh(2));
        m.net_tx(0, 4, 1500);
        m.net_rx(0, 1500);
        m.program_timer(0);
        m.send_ipi(0, 1);
        m.idle_round(0);
        assert_eq!(m.world().stats.total_interventions(), 0);
    }

    #[test]
    fn baseline_nested_io_is_full_of_interventions() {
        let mut m = Machine::build(MachineConfig::baseline(2));
        m.net_tx(0, 4, 1500);
        m.net_rx(0, 1500);
        assert!(m.world().stats.total_interventions() > 0);
    }
}
