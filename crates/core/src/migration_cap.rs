//! The PCI migration capability (§3.6): nested-VM migration with
//! virtual-passthrough devices.
//!
//! A guest hypervisor migrating a nested VM cannot see what a
//! virtual-passthrough device is doing: it does not interpose on I/O,
//! so it knows neither the device state nor which pages the device's
//! DMA dirtied. The capability adds control registers to the virtual
//! device through which the guest hypervisor asks the *host* to:
//!
//! * capture the device state, opaquely encapsulated in the host's own
//!   format (the guest only transfers it, never interprets it);
//! * log pages dirtied by the device's DMA, harvested on demand —
//!   implemented with the dirty logging the host already does for its
//!   own virtual devices, so the datapath pays nothing extra.

use dvh_devices::pci::MigrationCap;
use dvh_hypervisor::World;
use std::fmt;

/// Errors using the migration capability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MigrationCapError {
    /// The device has no migration capability (the host did not enable
    /// it; e.g. physical passthrough, which fundamentally cannot
    /// support this).
    NoCapability,
    /// Dirty logging was not enabled before harvesting.
    LoggingDisabled,
}

impl fmt::Display for MigrationCapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationCapError::NoCapability => write!(f, "device has no migration capability"),
            MigrationCapError::LoggingDisabled => write!(f, "dirty logging is not enabled"),
        }
    }
}

impl std::error::Error for MigrationCapError {}

/// Opaque, host-format encapsulated device state (§3.6: "the guest
/// hypervisor simply transfers the device state to the destination and
/// does not need to interpret it").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceState(Vec<u8>);

impl DeviceState {
    /// Size in bytes, for transfer-cost accounting.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the capture is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// The guest hypervisor enables DMA dirty logging through the
/// capability's control register.
///
/// # Errors
///
/// [`MigrationCapError::NoCapability`] if the device lacks the
/// capability.
pub fn enable_dirty_logging(w: &mut World, log_addr: u64) -> Result<(), MigrationCapError> {
    let cap = w.virtio[0]
        .pci_mut()
        .migration_cap_mut()
        .ok_or(MigrationCapError::NoCapability)?;
    cap.dirty_log_addr = log_addr;
    cap.ctrl |= MigrationCap::CTRL_LOG_ENABLE;
    Ok(())
}

/// Harvests the leaf-GPA pages dirtied since the last harvest (guest
/// writes and device DMA), in ascending order. This is the host's
/// existing logging exposed through the capability; it costs the
/// datapath nothing ("logging is done as part of the existing I/O
/// interposition", §3.6).
///
/// # Errors
///
/// Fails if the capability is missing or logging was never enabled.
pub fn harvest_dirty_pages(w: &mut World) -> Result<Vec<u64>, MigrationCapError> {
    let cap = w.virtio[0]
        .pci()
        .migration_cap()
        .ok_or(MigrationCapError::NoCapability)?;
    if !cap.logging() {
        return Err(MigrationCapError::LoggingDisabled);
    }
    Ok(w.leaf_dirty.harvest())
}

/// Captures the virtual device's state in the host's own format.
///
/// # Errors
///
/// [`MigrationCapError::NoCapability`] if the device lacks the
/// capability.
pub fn capture_device_state(w: &mut World) -> Result<DeviceState, MigrationCapError> {
    let dev = &mut w.virtio[0];
    if dev.pci().migration_cap().is_none() {
        return Err(MigrationCapError::NoCapability);
    }
    {
        let cap = dev.pci_mut().migration_cap_mut().expect("checked above");
        cap.ctrl |= MigrationCap::CTRL_CAPTURE;
    }
    // Quiesce: in-flight completions are retired before the state is
    // encapsulated (the capture happens with the VM stopped, so the
    // driver has harvested its used rings).
    while dev.rx.pop_used().is_some() {}
    while dev.tx.pop_used().is_some() {}
    // Encapsulate the interesting device state: negotiated features,
    // status, and per-queue progress counters. Opaque but
    // deterministic, so a restore round-trips exactly.
    let mut bytes = Vec::new();
    bytes.extend(dev.negotiated().to_le_bytes());
    bytes.push(dev.status);
    for q in [&dev.rx, &dev.tx] {
        bytes.extend((q.avail_len() as u32).to_le_bytes());
        bytes.extend((q.used_len() as u32).to_le_bytes());
        bytes.extend(q.kick_count().to_le_bytes());
        bytes.extend(q.interrupt_count().to_le_bytes());
    }
    Ok(DeviceState(bytes))
}

/// Restores a captured device state into the (re-created) device on a
/// destination machine — the inverse of [`capture_device_state`]. The
/// destination interprets the host-format bytes; the guest hypervisor
/// never did.
///
/// # Errors
///
/// [`MigrationCapError::NoCapability`] if the destination device lacks
/// the capability (mismatched host configuration).
pub fn restore_device_state(w: &mut World, state: &DeviceState) -> Result<(), MigrationCapError> {
    if w.virtio[0].pci().migration_cap().is_none() {
        return Err(MigrationCapError::NoCapability);
    }
    let b = &state.0;
    let negotiated = u64::from_le_bytes(b[0..8].try_into().expect("capture layout"));
    let status = b[8];
    w.virtio[0].restore_state(negotiated, status);
    let mut at = 9;
    for idx in [0usize, 1] {
        // avail/used lengths are zero in a quiesced capture.
        let kicks = u64::from_le_bytes(b[at + 8..at + 16].try_into().expect("layout"));
        let irqs = u64::from_le_bytes(b[at + 16..at + 24].try_into().expect("layout"));
        let q = if idx == 0 {
            &mut w.virtio[0].rx
        } else {
            &mut w.virtio[0].tx
        };
        q.restore_counters(kicks, irqs);
        at += 24;
    }
    Ok(())
}

/// Verifies a captured state against the current device (used by the
/// migration engine to check a restore was faithful).
pub fn state_matches(w: &mut World, state: &DeviceState) -> bool {
    capture_device_state(w)
        .map(|s| s == *state)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vp;
    use dvh_arch::costs::CostModel;
    use dvh_hypervisor::{IoModel, WorldConfig};

    fn vp_world() -> World {
        let mut cfg = WorldConfig::baseline(2);
        cfg.io_model = IoModel::VirtualPassthrough;
        let mut w = World::new(CostModel::calibrated(), cfg);
        vp::enable_migration_capability(&mut w);
        w
    }

    #[test]
    fn logging_must_be_enabled_first() {
        let mut w = vp_world();
        assert_eq!(
            harvest_dirty_pages(&mut w),
            Err(MigrationCapError::LoggingDisabled)
        );
        enable_dirty_logging(&mut w, 0xA000).unwrap();
        assert!(harvest_dirty_pages(&mut w).is_ok());
    }

    #[test]
    fn dma_dirtied_pages_are_harvested() {
        let mut w = vp_world();
        enable_dirty_logging(&mut w, 0xA000).unwrap();
        // An RX packet DMA-writes a leaf buffer page.
        w.external_packet_arrival(0, dvh_devices::nic::Frame::patterned(1400, 3));
        let pages = harvest_dirty_pages(&mut w).unwrap();
        assert!(!pages.is_empty(), "device DMA must appear in the log");
        // Second harvest is clean.
        assert!(harvest_dirty_pages(&mut w).unwrap().is_empty());
    }

    #[test]
    fn capture_round_trips() {
        let mut w = vp_world();
        let a = capture_device_state(&mut w).unwrap();
        assert!(!a.is_empty());
        assert!(state_matches(&mut w, &a));
        // Device activity changes the captured state.
        w.guest_net_tx(0, 1, 900);
        assert!(!state_matches(&mut w, &a));
    }

    #[test]
    fn no_capability_without_enablement() {
        let mut cfg = WorldConfig::baseline(2);
        cfg.io_model = IoModel::VirtualPassthrough;
        let mut w = World::new(CostModel::calibrated(), cfg);
        assert_eq!(
            capture_device_state(&mut w).unwrap_err(),
            MigrationCapError::NoCapability
        );
    }
}
