//! Virtual-passthrough (§3.1, recursive form §3.5): assigning the host
//! hypervisor's *virtual* I/O device through every virtualization
//! level to the nested VM.
//!
//! The paper's key observation is that this "requires no implementation
//! changes for hypervisors that already support both virtual I/O and
//! passthrough device models" — it is a *configuration*: the host
//! exposes a PCI-conformant virtual device plus a virtual IOMMU; each
//! guest hypervisor, believing it has passthrough-grade hardware,
//! unbinds the device and assigns it up; the last hypervisor assigns
//! it to the nested VM. The host folds the vIOMMU chain into one
//! shadow I/O page table (Fig. 6), so DMA and doorbells involve only
//! L0.
//!
//! This module performs that configuration against a [`World`] and
//! validates its preconditions (the device must look like a physical
//! PCI device to be assignable).

use dvh_hypervisor::{IoModel, World};
use std::fmt;

/// Why a virtual-passthrough assignment could not be made.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AssignError {
    /// The machine is not configured for virtual-passthrough I/O.
    WrongIoModel(IoModel),
    /// The host's virtual device does not conform to the physical
    /// device interface specification (no BAR / no MSI-X), so existing
    /// passthrough frameworks cannot assign it (§3.1).
    NotAssignable,
    /// An intermediate hypervisor has no virtual IOMMU to program.
    MissingViommu {
        /// The hypervisor level lacking a vIOMMU.
        level: usize,
    },
}

impl fmt::Display for AssignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignError::WrongIoModel(m) => {
                write!(f, "machine uses the {m} I/O model, not virtual-passthrough")
            }
            AssignError::NotAssignable => {
                write!(
                    f,
                    "virtual device does not meet the physical device interface spec"
                )
            }
            AssignError::MissingViommu { level } => {
                write!(f, "hypervisor at level {level} has no virtual IOMMU")
            }
        }
    }
}

impl std::error::Error for AssignError {}

/// A completed (recursive) virtual-passthrough assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    /// How many hypervisor levels passed the device through.
    pub passthrough_hops: usize,
    /// Total pages mapped in the combined shadow I/O table.
    pub shadow_pages: u64,
    /// Trapped vIOMMU map operations the configuration cost (a
    /// one-time setup cost, not on the datapath).
    pub viommu_map_ops: u64,
}

/// Validates and finalizes the (recursive) virtual-passthrough
/// assignment on `w`, rebuilding the shadow I/O table.
///
/// # Errors
///
/// See [`AssignError`].
pub fn assign(w: &mut World) -> Result<Assignment, AssignError> {
    if w.config.io_model != IoModel::VirtualPassthrough {
        return Err(AssignError::WrongIoModel(w.config.io_model));
    }
    // §3.1: the device must look like hardware to be assignable by an
    // unmodified passthrough framework. Probe it the way a guest
    // hypervisor's PCI layer actually would: through the rendered
    // configuration-space bytes.
    if !w.virtio[0].pci().is_assignable() {
        return Err(AssignError::NotAssignable);
    }
    let mut cs = dvh_devices::pci_config::ConfigSpace::render(w.virtio[0].pci());
    let has_msix = cs.walk_capabilities().iter().any(|(id, _)| *id == 0x11);
    let bar0 = cs.size_bar(0);
    if !has_msix || bar0 == 0 {
        return Err(AssignError::NotAssignable);
    }
    let hops = w.config.levels.saturating_sub(1);
    // Every intermediate hypervisor needs a vIOMMU from the level
    // below to pass the device further (§3.5); the last-level
    // hypervisor needs none *for its VM* but uses the one provided to
    // it.
    if w.viommus.len() < hops {
        return Err(AssignError::MissingViommu {
            level: w.viommus.len() + 1,
        });
    }
    w.rebuild_shadow_io();
    let shadow_pages = w.shadow_io.as_ref().map(|s| s.mapped_pages()).unwrap_or(0);
    let viommu_map_ops = w.viommus.iter().map(|v| v.map_op_count()).sum();
    Ok(Assignment {
        passthrough_hops: hops,
        shadow_pages,
        viommu_map_ops,
    })
}

/// Enables the PCI migration capability (§3.6) on the host's virtual
/// device, so guest hypervisors can migrate nested VMs that use it.
pub fn enable_migration_capability(w: &mut World) {
    w.virtio[0].enable_migration_cap();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::costs::CostModel;
    use dvh_hypervisor::{DvhFlags, WorldConfig};

    fn vp_world(levels: usize) -> World {
        let mut cfg = WorldConfig::baseline(levels);
        cfg.io_model = IoModel::VirtualPassthrough;
        cfg.dvh = DvhFlags {
            viommu_posted_interrupts: false,
            ..DvhFlags::NONE
        };
        World::new(CostModel::calibrated(), cfg)
    }

    #[test]
    fn assignment_succeeds_for_nested() {
        let mut w = vp_world(2);
        let a = assign(&mut w).unwrap();
        assert_eq!(a.passthrough_hops, 1);
        assert!(a.shadow_pages > 0);
        assert!(a.viommu_map_ops >= 1, "vIOMMU programming is trapped");
    }

    #[test]
    fn recursive_assignment_spans_all_levels() {
        let mut w = vp_world(3);
        let a = assign(&mut w).unwrap();
        assert_eq!(a.passthrough_hops, 2);
        // The shadow table must compose all three stages: leaf GPA ->
        // host PFN through two vIOMMUs and L0's stage.
        let leaf = dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
        let host = w.shadow_io.as_ref().unwrap().lookup(leaf).unwrap().0;
        assert_eq!(host, w.leaf_host_pfn(leaf));
    }

    #[test]
    fn wrong_io_model_is_rejected() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        assert!(matches!(
            assign(&mut w),
            Err(AssignError::WrongIoModel(IoModel::Virtio))
        ));
    }

    #[test]
    fn doorbell_from_nested_vm_reaches_l0_without_interventions() {
        let mut w = vp_world(2);
        assign(&mut w).unwrap();
        w.guest_net_tx(0, 1, 1500);
        assert_eq!(
            w.stats.total_interventions(),
            0,
            "virtual-passthrough must bypass the guest hypervisor"
        );
        assert_eq!(w.nic.wire().len(), 1);
    }

    #[test]
    fn data_really_flows_through_shadow_table() {
        let mut w = vp_world(2);
        assign(&mut w).unwrap();
        let payload: Vec<u8> = (0..200u16).map(|b| (b % 251) as u8).collect();
        w.guest_write_memory(
            0,
            dvh_memory::Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN),
            &payload,
        );
        w.guest_net_tx(0, 1, payload.len() as u32);
        let wire = w.nic.wire();
        assert_eq!(wire.len(), 1);
        assert_eq!(wire[0].payload, payload);
    }

    #[test]
    fn migration_cap_can_be_enabled() {
        let mut w = vp_world(2);
        enable_migration_capability(&mut w);
        assert!(w.virtio[0].pci().migration_cap().is_some());
    }

    #[test]
    fn assign_error_messages_are_informative() {
        assert!(AssignError::WrongIoModel(IoModel::Virtio)
            .to_string()
            .contains("virtio"));
        assert!(AssignError::MissingViommu { level: 2 }
            .to_string()
            .contains('2'));
    }
}
