//! Virtual idle (§3.4): nested VMs enter and leave low-power mode with
//! only host-hypervisor involvement.
//!
//! Unlike the other mechanisms, virtual idle needs **no new virtual
//! hardware**: it re-uses the architectural ability to configure
//! whether `hlt` traps. The host hypervisor keeps intercepting `hlt`;
//! every guest hypervisor stops. When a nested VM halts, the exit
//! reaches L0, L0 checks the guest hypervisor's VMCS configuration
//! (which it can read, §3.2), sees `hlt` is not intercepted above it,
//! and simply blocks the vCPU itself — waking it directly on the next
//! event. The configuration half lives in
//! [`crate::capability::enable_virtual_idle`]; the architectural
//! reflect-policy half is ordinary nested-virtualization behaviour in
//! the substrate hypervisor.
//!
//! Unlike disabling `hlt` exits everywhere or `idle=poll`, the CPU
//! really halts: cycles are *saved*, not burned ([`should_enable`]
//! discusses the scheduling caveat).

use dvh_hypervisor::World;

/// The scheduling policy of §3.4: virtual idle should be enabled only
/// when the guest hypervisor has no other runnable nested VM on the
/// vCPU. If it does, returning to the guest hypervisor on idle lets it
/// schedule that other nested VM; handing the idle to L0 would stall
/// it.
pub fn should_enable(runnable_nested_vms_on_cpu: usize) -> bool {
    runnable_nested_vms_on_cpu <= 1
}

/// Applies the §3.4 policy to `w`: virtual idle is enabled only when
/// the guest hypervisor has no other runnable nested VM to schedule
/// (see [`should_enable`]); otherwise guest hypervisors keep their
/// `hlt` intercepts so they can run the sibling VM on idle.
pub fn apply_idle_policy(w: &mut World) -> bool {
    if should_enable(w.runnable_sibling_vms as usize + 1) {
        crate::capability::enable_virtual_idle(w);
        true
    } else {
        // Restore the intercepts (idempotent if never cleared).
        for k in 1..w.config.levels {
            for cpu in 0..w.num_cpus() {
                w.vmcs_mut(k, cpu).set_bits(
                    dvh_arch::vmx::field::CPU_BASED_EXEC_CONTROLS,
                    dvh_arch::vmx::ctrl::cpu::HLT_EXITING,
                );
            }
        }
        false
    }
}

/// Measures the halt-to-wake latency for the leaf VM on `cpu`: the
/// vCPU halts, an event arrives immediately, and the vCPU resumes.
/// Returns elapsed cycles on `cpu`.
pub fn halt_wake_round_trip(w: &mut World, cpu: usize) -> dvh_arch::Cycles {
    let t0 = w.now(cpu);
    w.guest_hlt(cpu);
    let t = w.now(cpu);
    w.deliver_leaf_interrupt(cpu, 0x60, t, dvh_hypervisor::IrqPath::PostedDirect);
    w.now(cpu) - t0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::enable_virtual_idle;
    use dvh_arch::costs::CostModel;
    use dvh_hypervisor::{World, WorldConfig};

    #[test]
    fn virtual_idle_keeps_halts_at_l0() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(3));
        enable_virtual_idle(&mut w);
        w.guest_hlt(0);
        // The halt chain must be exactly [0]: no guest hypervisor
        // blocked anything.
        assert_eq!(w.halt_chain(0).unwrap(), &[0]);
        assert_eq!(w.stats.total_interventions(), 0);
    }

    #[test]
    fn vanilla_nested_idle_is_much_slower() {
        let mut vanilla = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        let slow = halt_wake_round_trip(&mut vanilla, 0);

        let mut vidle = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_virtual_idle(&mut vidle);
        let fast = halt_wake_round_trip(&mut vidle, 0);
        assert!(
            slow.as_u64() > 5 * fast.as_u64(),
            "vanilla {slow} vs virtual idle {fast}"
        );
    }

    #[test]
    fn virtual_idle_round_trip_close_to_l1() {
        let mut l1 = World::new(CostModel::calibrated(), WorldConfig::baseline(1));
        let base = halt_wake_round_trip(&mut l1, 0).as_u64();

        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(3));
        enable_virtual_idle(&mut w);
        let nested = halt_wake_round_trip(&mut w, 0).as_u64();
        assert!(
            nested <= base + base / 2,
            "L3 with virtual idle ({nested}) should be near L1 ({base})"
        );
    }

    #[test]
    fn idle_cycles_are_recorded_not_burned() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_virtual_idle(&mut w);
        w.guest_hlt(0);
        let halted_at = w.now(0);
        // Event arrives much later on another CPU's timeline.
        let later = halted_at + dvh_arch::Cycles::new(1_000_000);
        w.deliver_leaf_interrupt(0, 0x60, later, dvh_hypervisor::IrqPath::PostedDirect);
        assert!(w.stats.idle_cycles.as_u64() >= 1_000_000);
    }

    #[test]
    fn scheduling_policy() {
        assert!(should_enable(0));
        assert!(should_enable(1));
        assert!(!should_enable(2));
    }

    #[test]
    fn policy_disables_vidle_with_sibling_vms() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.runnable_sibling_vms = 1;
        assert!(!apply_idle_policy(&mut w));
        // The guest hypervisor keeps its hlt intercept: halting the
        // nested VM returns control to it so it can run the sibling.
        w.guest_hlt(0);
        assert!(w.stats.total_interventions() > 0);

        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.runnable_sibling_vms = 0;
        assert!(apply_idle_policy(&mut w));
        w.guest_hlt(0);
        assert_eq!(w.stats.total_interventions(), 0);
    }

    #[test]
    fn polling_wakes_instantly_but_burns_the_wait() {
        // §3.4: "those options simply consume and waste physical CPU
        // cycles when the nested VM does nothing. Using virtual idle,
        // the host hypervisor only runs the nested VM when it has jobs
        // to run."
        let wait = dvh_arch::Cycles::new(2_000_000);

        let mut poll = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        poll.poll_idle = true;
        poll.guest_hlt(0);
        assert!(poll.is_polling(0));
        let t = poll.now(0) + wait;
        poll.deliver_leaf_interrupt(0, 0x33, t, dvh_hypervisor::IrqPath::PostedDirect);
        assert!(poll.stats.burned_idle_cycles >= wait);
        assert_eq!(poll.stats.idle_cycles.as_u64(), 0);
        assert_eq!(poll.stats.total_exits(), 0, "polling never exits");

        let mut vidle = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        enable_virtual_idle(&mut vidle);
        vidle.guest_hlt(0);
        let t = vidle.now(0) + wait;
        vidle.deliver_leaf_interrupt(0, 0x33, t, dvh_hypervisor::IrqPath::PostedDirect);
        assert!(
            vidle.stats.idle_cycles >= wait,
            "the wait was saved, not burned"
        );
        assert_eq!(vidle.stats.burned_idle_cycles.as_u64(), 0);
    }
}
