//! DVH capability discovery and recursive enablement (§3.2, §3.5).
//!
//! Virtual hardware is advertised like real hardware: through
//! capability bits in a VMX capability MSR
//! ([`dvh_arch::msr::IA32_VMX_DVH_CAP`]) and enabled per VM through
//! bits in a DVH execution-control VMCS field. For more than two
//! levels, §3.5's rule applies: a hypervisor enables a virtual-hardware
//! feature for its nested VM **only if every deeper hypervisor enabled
//! it too** — the enable bits of all guest hypervisors AND together.

use dvh_arch::vmx::{cap, ctrl, field};
use dvh_hypervisor::World;

/// The DVH capability word the host hypervisor advertises.
pub fn advertised_capabilities() -> u64 {
    cap::VIRTUAL_TIMER | cap::VIRTUAL_IPI | cap::VCIMTAR
}

/// Per-hypervisor enablement policy for one DVH feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// This hypervisor wants the feature for its nested VM.
    Enable,
    /// This hypervisor declines the feature.
    Disable,
}

/// Applies the recursive enable rule for the feature controlled by
/// `control_bit`, given each guest hypervisor's `policy` (index 0 is
/// the L1 hypervisor). Returns the effective (ANDed) enable as seen by
/// the host hypervisor.
///
/// Following §3.5: "the enable bits of all guest hypervisors are
/// combined using an and operation into the single enable bit that the
/// L1 hypervisor sets" — concretely, hypervisor k sets the bit in its
/// VMCS only if its own policy says enable *and* the hypervisor above
/// it (k+1) set its bit.
pub fn apply_recursive_enable(w: &mut World, control_bit: u64, policies: &[Policy]) -> bool {
    let levels = w.config.levels;
    assert!(
        policies.len() + 1 >= levels,
        "need a policy for each guest hypervisor (levels 1..{})",
        levels
    );
    // Walk from the deepest guest hypervisor (level levels-1) down to
    // L1, propagating the AND.
    let mut enabled_above = true;
    for k in (1..levels).rev() {
        let this = policies[k - 1] == Policy::Enable && enabled_above;
        for cpu in 0..w.num_cpus() {
            if this {
                w.vmcs_mut(k, cpu)
                    .set_bits(field::DVH_EXEC_CONTROLS, control_bit);
            } else {
                w.vmcs_mut(k, cpu)
                    .clear_bits(field::DVH_EXEC_CONTROLS, control_bit);
            }
        }
        enabled_above = this;
    }
    enabled_above && levels >= 2
}

/// Whether the feature controlled by `control_bit` is effectively
/// enabled for an exit from `from_level` on `cpu`: every guest
/// hypervisor between L1 and the exiting VM must have set its bit.
pub fn effectively_enabled(w: &World, from_level: usize, cpu: usize, control_bit: u64) -> bool {
    if from_level < 2 {
        return false;
    }
    (1..from_level).all(|k| {
        w.vmcs(k, cpu)
            .has_bits(field::DVH_EXEC_CONTROLS, control_bit)
    })
}

/// Convenience: enable a feature at every guest hypervisor (the common
/// "everyone cooperates" configuration the paper benchmarks).
pub fn enable_everywhere(w: &mut World, control_bit: u64) {
    let n = w.config.levels.max(1);
    let policies = vec![Policy::Enable; n.saturating_sub(1).max(1)];
    apply_recursive_enable(w, control_bit, &policies);
}

/// Configures virtual idle (§3.4): every *guest* hypervisor stops
/// intercepting `hlt` for its VM; only L0 keeps intercepting. See
/// [`crate::vidle`] for the behavioural discussion.
pub fn enable_virtual_idle(w: &mut World) {
    let levels = w.config.levels;
    for k in 1..levels {
        for cpu in 0..w.num_cpus() {
            w.vmcs_mut(k, cpu)
                .clear_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dvh_arch::costs::CostModel;
    use dvh_hypervisor::WorldConfig;

    fn world(levels: usize) -> World {
        World::new(CostModel::calibrated(), WorldConfig::baseline(levels))
    }

    #[test]
    fn capabilities_advertise_all_three_bits() {
        let c = advertised_capabilities();
        assert_ne!(c & cap::VIRTUAL_TIMER, 0);
        assert_ne!(c & cap::VIRTUAL_IPI, 0);
        assert_ne!(c & cap::VCIMTAR, 0);
    }

    #[test]
    fn all_enable_yields_effective() {
        let mut w = world(3);
        let eff = apply_recursive_enable(
            &mut w,
            ctrl::dvh::VIRTUAL_TIMER,
            &[Policy::Enable, Policy::Enable],
        );
        assert!(eff);
        assert!(effectively_enabled(&w, 3, 0, ctrl::dvh::VIRTUAL_TIMER));
    }

    #[test]
    fn one_decliner_disables_the_chain_below() {
        // L1 enables, L2 declines: per §3.5 the AND is false, so the
        // L1 hypervisor must not set its bit either.
        let mut w = world(3);
        let eff = apply_recursive_enable(
            &mut w,
            ctrl::dvh::VIRTUAL_TIMER,
            &[Policy::Enable, Policy::Disable],
        );
        assert!(!eff);
        assert!(!effectively_enabled(&w, 3, 0, ctrl::dvh::VIRTUAL_TIMER));
        assert!(!w
            .vmcs(1, 0)
            .has_bits(field::DVH_EXEC_CONTROLS, ctrl::dvh::VIRTUAL_TIMER));
    }

    #[test]
    fn shallow_decliner_masks_deep_enabler() {
        let mut w = world(3);
        apply_recursive_enable(
            &mut w,
            ctrl::dvh::VIRTUAL_IPI,
            &[Policy::Disable, Policy::Enable],
        );
        // The deep hypervisor's bit can be set, but effectiveness for
        // the L3 VM requires the whole chain.
        assert!(!effectively_enabled(&w, 3, 0, ctrl::dvh::VIRTUAL_IPI));
    }

    #[test]
    fn single_level_never_effective() {
        let mut w = world(1);
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_TIMER);
        assert!(!effectively_enabled(&w, 1, 0, ctrl::dvh::VIRTUAL_TIMER));
    }

    #[test]
    fn virtual_idle_clears_guest_hlt_intercepts_only() {
        let mut w = world(3);
        enable_virtual_idle(&mut w);
        // L0 keeps intercepting.
        assert!(w
            .vmcs(0, 0)
            .has_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING));
        for k in 1..3 {
            assert!(!w
                .vmcs(k, 0)
                .has_bits(field::CPU_BASED_EXEC_CONTROLS, ctrl::cpu::HLT_EXITING));
        }
    }
}
