//! Virtual timers (§3.2): per-vCPU LAPIC timers provided by the host
//! hypervisor directly to nested VMs.
//!
//! Without DVH, a nested VM programming its TSC-deadline timer exits,
//! is reflected to its guest hypervisor, whose hrtimer machinery arms
//! *its* timer with another trapped `wrmsr`, and so on — Table 3's
//! 43,359-cycle ProgramTimer at L2. With virtual timers, L0 sees the
//! exit, confirms the virtual timer is enabled in the (merged) VMCS
//! controls, combines the TSC offsets it already tracks, and programs
//! its own hrtimer: one inexpensive exit, no guest hypervisor
//! intervention, at any nesting depth.

use crate::capability::effectively_enabled;
use dvh_arch::msr;
use dvh_arch::vmx::{ctrl, field, ExitQualification, ExitReason};
use dvh_hypervisor::{Intercept, L0Extension, World};

/// The virtual-timer L0 extension.
///
/// Registered on the [`World`] by [`crate::machine::Machine`] when
/// `DvhFlags::virtual_timers` is set; the guest-side enablement (the
/// capability/control bits) is configured via
/// [`crate::capability::apply_recursive_enable`].
#[derive(Debug, Default)]
pub struct VirtualTimers {
    intercepts: u64,
}

impl VirtualTimers {
    /// Creates the extension.
    pub fn new() -> VirtualTimers {
        VirtualTimers::default()
    }

    /// How many timer writes this extension has handled.
    pub fn intercept_count(&self) -> u64 {
        self.intercepts
    }
}

impl L0Extension for VirtualTimers {
    fn name(&self) -> &'static str {
        "vtimer"
    }

    fn try_intercept(
        &mut self,
        w: &mut World,
        cpu: usize,
        from_level: usize,
        reason: ExitReason,
        qual: &ExitQualification,
    ) -> Intercept {
        if reason != ExitReason::MsrWrite || qual.msr != msr::IA32_TSC_DEADLINE {
            return Intercept::NotHandled;
        }
        if from_level != w.leaf_level() {
            return Intercept::NotHandled;
        }
        if !effectively_enabled(w, from_level, cpu, ctrl::dvh::VIRTUAL_TIMER) {
            // §3.5 partial enablement: "the Lk hypervisor will forward
            // the Ln VM timer access to the Lk+1 hypervisor
            // recursively, where k starts from 0, until a hypervisor
            // Li finds a hypervisor Li+1 with the enable bit set, or
            // control reaches the Ln-1 hypervisor" — i.e. the access
            // is reflected only as far as the hypervisor just below
            // the first disabled level, not all the way to Ln-1.
            // Handler = Li where Li+1 is the first hypervisor (walking
            // up from L1) with the enable bit set; if none has it,
            // control reaches Ln-1 (ordinary full reflection).
            let handler = (1..from_level)
                .find(|&k| {
                    w.vmcs(k, cpu)
                        .has_bits(field::DVH_EXEC_CONTROLS, ctrl::dvh::VIRTUAL_TIMER)
                })
                .map(|k| k - 1)
                .unwrap_or(from_level - 1);
            if handler >= 1 && handler < from_level - 1 {
                // Claim the exit and forward it the short way: the
                // handler emulates the timer for the nested VM using
                // the virtual timer the chain below provides it.
                self.intercepts += 1;
                w.reflect_to(handler, from_level, cpu, ExitReason::MsrWrite, *qual);
                return Intercept::Handled;
            }
            return Intercept::NotHandled;
        }
        self.intercepts += 1;

        // Confirm the enable bit in the merged execution controls
        // (one native vmread) and locate the nested state in memory.
        w.hv_vmread(0, cpu, field::DVH_EXEC_CONTROLS);
        w.compute(cpu, w.costs.walk_mem_ref); // vmcs12 lookup

        // Account for the time-base difference: the combined TSC
        // offset is already maintained in the VMCS for the nested VM
        // (§3.2), so this is arithmetic, not more vmreads.
        w.compute(cpu, w.costs.rdtsc);
        let offset = w.combined_tsc_offset(from_level - 1, cpu);
        w.compute(cpu, dvh_arch::Cycles::new(100));

        // Record the guest-programmed deadline in the virtual timer
        // and the vector for direct posted delivery later.
        let deadline = qual.msr_value.wrapping_add(offset);
        w.vmcs_mut(from_level - 1, cpu)
            .write(field::DVH_VTIMER_DEADLINE, deadline);
        w.timers[cpu].arm(qual.msr_value);
        w.compute(cpu, w.costs.walk_mem_ref); // fetch programmed vector
        w.compute(cpu, w.costs.pi_desc_update); // set up direct delivery

        // Program the emulation backend (hrtimer) and the hardware.
        w.compute(cpu, w.costs.hrtimer_program);
        w.hv_wrmsr(0, cpu, msr::IA32_TSC_DEADLINE, deadline);
        w.compute(cpu, dvh_arch::Cycles::new(400)); // DVH bookkeeping

        // Advance RIP and re-enter the nested VM directly.
        w.hv_vmwrite(0, cpu, field::GUEST_RIP, 0);
        w.l0_vmentry(cpu);
        Intercept::Handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capability::enable_everywhere;
    use dvh_arch::costs::CostModel;
    use dvh_hypervisor::WorldConfig;

    fn dvh_world(levels: usize) -> World {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(levels));
        enable_everywhere(&mut w, ctrl::dvh::VIRTUAL_TIMER);
        w.register_extension(Box::new(VirtualTimers::new()));
        w
    }

    #[test]
    fn nested_timer_write_is_cheap_and_intervention_free() {
        let mut w = dvh_world(2);
        let c = w.guest_program_timer(0, 50_000).as_u64();
        assert!((2_800..=3_800).contains(&c), "DVH L2 timer cost {c}");
        assert_eq!(w.stats.total_interventions(), 0);
        assert_eq!(w.stats.dvh_intercepts.get("vtimer"), Some(&1));
    }

    #[test]
    fn dvh_timer_cost_is_level_invariant() {
        let mut w2 = dvh_world(2);
        let c2 = w2.guest_program_timer(0, 1).as_u64();
        let mut w3 = dvh_world(3);
        let c3 = w3.guest_program_timer(0, 1).as_u64();
        let diff = c3.abs_diff(c2);
        assert!(
            diff * 10 <= c2,
            "DVH removes level dependence: L2={c2}, L3={c3}"
        );
    }

    #[test]
    fn disabled_chain_falls_back_to_reflection() {
        let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(2));
        w.register_extension(Box::new(VirtualTimers::new()));
        // No enable bits set: the extension must decline.
        let c = w.guest_program_timer(0, 1).as_u64();
        assert!(c > 30_000, "without enablement cost stays nested: {c}");
        assert!(w.stats.total_interventions() > 0);
    }

    #[test]
    fn timer_state_is_recorded_with_combined_offset() {
        let mut w = dvh_world(2);
        w.guest_program_timer(0, 5_000);
        assert_eq!(w.timers[0].deadline, Some(5_000));
        let expect = 5_000 + w.combined_tsc_offset(1, 0);
        assert_eq!(w.vmcs(1, 0).read(field::DVH_VTIMER_DEADLINE), expect);
    }

    #[test]
    fn partial_enablement_forwards_the_short_way() {
        // 4 levels; the L1 hypervisor declines virtual timers but L2
        // and L3 enable them. §3.5: the leaf's timer access is
        // forwarded only to L1 (the hypervisor below the first
        // disabled level is L1 itself here: level 1 lacks the bit), so
        // cost sits between full DVH and full reflection.
        use crate::capability::{apply_recursive_enable, Policy};
        let mk = |policies: &[Policy]| {
            let mut w = World::new(CostModel::calibrated(), WorldConfig::baseline(4));
            apply_recursive_enable(&mut w, ctrl::dvh::VIRTUAL_TIMER, policies);
            w.register_extension(Box::new(VirtualTimers::new()));
            w
        };
        // All enabled: flat DVH cost.
        let mut full = mk(&[Policy::Enable, Policy::Enable, Policy::Enable]);
        let c_full = full.guest_program_timer(0, 1).as_u64();
        // None enabled: full reflection to L3.
        let mut none = mk(&[Policy::Disable, Policy::Disable, Policy::Disable]);
        let c_none = none.guest_program_timer(0, 1).as_u64();
        // L1 disabled, deeper hypervisors enabled: forwarded to L1
        // only — dramatically cheaper than reflecting to L3, but not
        // free.
        // Note apply_recursive_enable's AND rule clears shallower bits
        // when deeper ones are clear; set the partial pattern directly.
        let mut partial = mk(&[Policy::Enable, Policy::Enable, Policy::Enable]);
        for cpu in 0..partial.num_cpus() {
            partial
                .vmcs_mut(1, cpu)
                .clear_bits(field::DVH_EXEC_CONTROLS, ctrl::dvh::VIRTUAL_TIMER);
        }
        let c_partial = partial.guest_program_timer(0, 1).as_u64();
        assert!(c_full < c_partial, "full {c_full} < partial {c_partial}");
        assert!(
            c_partial < c_none / 10,
            "partial {c_partial} must be far below full reflection {c_none}"
        );
        assert_eq!(partial.stats.dvh_intercepts.get("vtimer"), Some(&1));
    }

    #[test]
    fn l1_timer_writes_are_not_intercepted() {
        // DVH provides no benefit for non-nested VMs (§3) and the
        // extension must not fire for them.
        let mut w = dvh_world(1);
        let c = w.guest_program_timer(0, 1).as_u64();
        assert!((1_700..=2_400).contains(&c));
        assert!(w.stats.dvh_intercepts.is_empty());
    }
}
