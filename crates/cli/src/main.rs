//! The `dvh` command-line tool: run the DVH reproduction's benchmarks
//! in the paper's artifact-appendix style. Run `dvh help` for usage.

use dvh_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = match args::parse(&argv) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{}", args::USAGE);
            std::process::exit(2);
        }
    };
    let mut stdout = std::io::stdout().lock();
    if let Err(e) = commands::execute(cmd, &mut stdout) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
