//! Command implementations for the `dvh` binary.

use crate::args::{CliConfig, Command, ProfileFormat, TraceFormat};
use crate::results::{to_csv, ResultFile};
use dvh_core::Machine;
use dvh_hypervisor::trace_export;
use dvh_migration::{migrate_nested_vm, MigrationConfig};
use dvh_obs::causal::render_multiplication;
use dvh_obs::percentiles::{exit_percentiles, render_percentiles};
use dvh_obs::profile::{exit_profile, render_profile};
use dvh_workloads::{run_app, run_micro, AppId};

/// Executes a parsed command, writing human or CSV output to `out`.
///
/// # Errors
///
/// Returns a message for I/O failures or unusable inputs (e.g. a
/// non-migratable configuration).
pub fn execute(cmd: Command, out: &mut dyn std::io::Write) -> Result<(), String> {
    let w = |out: &mut dyn std::io::Write, s: String| {
        out.write_all(s.as_bytes()).map_err(|e| e.to_string())
    };
    match cmd {
        Command::Help => w(out, crate::args::USAGE.to_string()),
        Command::Micro {
            level,
            config,
            iters,
            csv,
        } => {
            let mut m = Machine::build(config.machine_config(level));
            let r = run_micro(&mut m, iters);
            if csv {
                w(
                    out,
                    format!(
                        "benchmark,level,config,cycles\nhypercall,{level},{config},{}\n\
                         devnotify,{level},{config},{}\nprogramtimer,{level},{config},{}\n\
                         sendipi,{level},{config},{}\n",
                        r.hypercall, r.dev_notify, r.program_timer, r.send_ipi
                    ),
                )
            } else {
                w(
                    out,
                    format!(
                        "L{level} {config} microbenchmarks (cycles):\n\
                          Hypercall:    {:>9}\n  DevNotify:    {:>9}\n\
                          ProgramTimer: {:>9}\n  SendIPI:      {:>9}\n",
                        r.hypercall, r.dev_notify, r.program_timer, r.send_ipi
                    ),
                )
            }
        }
        Command::App {
            app,
            level,
            config,
            runs,
            txns,
            csv,
        } => {
            let mix = app.mix();
            // Artifact style: several independent runs, each a column.
            let samples: Vec<Vec<f64>> = (0..3)
                .map(|chunk| {
                    (0..runs)
                        .map(|_| {
                            let mut m = Machine::build(config.machine_config(level));
                            // Different chunks use different txn counts
                            // so per-run variation is visible (the
                            // simulator itself is deterministic).
                            run_app(&mut m, &mix, txns + chunk * 16).overhead
                        })
                        .collect()
                })
                .collect();
            if csv {
                w(out, to_csv(mix.name, &samples))
            } else {
                let flat = samples[0][0];
                w(
                    out,
                    format!(
                        "{} at L{level} ({config}): overhead {:.2}x vs native ({})\n",
                        mix.name,
                        flat,
                        app.native_baseline()
                    ),
                )
            }
        }
        Command::Apps {
            level,
            config,
            txns,
            csv,
        } => {
            if csv {
                w(out, "app,level,config,overhead\n".to_string())?;
            }
            for app in AppId::ALL {
                let mix = app.mix();
                let mut m = Machine::build(config.machine_config(level));
                let r = run_app(&mut m, &mix, txns);
                if csv {
                    w(
                        out,
                        format!("{},{level},{config},{:.4}\n", mix.name, r.overhead),
                    )?;
                } else {
                    w(out, format!("{:<16} {:>6.2}x\n", mix.name, r.overhead))?;
                }
            }
            Ok(())
        }
        Command::Migrate {
            config,
            with_hypervisor,
        } => {
            let mut m = Machine::build(config.machine_config(2));
            for i in 0..32u64 {
                m.world_mut().guest_write_memory(
                    0,
                    dvh_memory::Gpa::from_pfn(dvh_hypervisor::world::LEAF_BUF_BASE_PFN + i % 60),
                    &[i as u8; 128],
                );
            }
            let cfg = MigrationConfig {
                include_guest_hypervisor: with_hypervisor,
                ..MigrationConfig::default()
            };
            match migrate_nested_vm(m.world_mut(), cfg, |_| {}) {
                Ok(r) => w(
                    out,
                    format!(
                        "migrated: {} pages in {:.3} s, downtime {:.2} ms, verified: {}\n",
                        r.total_pages,
                        r.total_time.as_secs_f64(),
                        r.downtime.as_secs_f64() * 1e3,
                        r.verified
                    ),
                ),
                Err(e) => Err(format!("migration failed: {e}")),
            }
        }
        Command::Trace {
            op,
            app,
            txns,
            level,
            config,
            format,
        } => {
            let mut m = Machine::build(config.machine_config(level));
            m.world_mut().enable_tracing(1 << 20);
            match app {
                Some(app) => {
                    run_app(&mut m, &app.mix(), txns);
                }
                None => {
                    run_named_op(&mut m, &op)?;
                }
            }
            let events = m.world_mut().take_trace();
            match format {
                TraceFormat::Text => {
                    for e in &events {
                        w(out, format!("{e}\n"))?;
                    }
                    Ok(())
                }
                TraceFormat::Chrome => {
                    let world = m.world();
                    w(
                        out,
                        trace_export::chrome_json(&events, world.num_cpus(), world.leaf_level()),
                    )?;
                    w(out, "\n".to_string())
                }
                TraceFormat::Jsonl => w(out, trace_export::jsonl(&events)),
            }
        }
        Command::Profile {
            op,
            app,
            txns,
            level,
            config,
            top,
            snapshot,
            format,
        } => {
            let obs = observe_workload(&op, app, txns, level, config)?;
            match format {
                ProfileFormat::Folded => {
                    // Pure folded-stack lines, pipeable straight into a
                    // flamegraph renderer — no header, no footer.
                    let forest = trace_export::causal_forest(&obs.events, obs.num_cpus);
                    w(out, forest.folded())
                }
                ProfileFormat::Table => {
                    w(out, obs.header)?;
                    w(out, render_profile(&exit_profile(&obs.reg, top)))?;
                    let rows = exit_percentiles(&obs.reg);
                    if !rows.is_empty() {
                        w(out, "\noutermost-exit latency (cycles):\n".to_string())?;
                        w(out, render_percentiles(&rows))?;
                    }
                    let forest = trace_export::causal_forest(&obs.events, obs.num_cpus);
                    let factors = forest.multiplication_factors();
                    if !factors.is_empty() {
                        w(
                            out,
                            "\nexit multiplication (from the causal tree):\n".to_string(),
                        )?;
                        w(out, render_multiplication(&factors))?;
                    }
                    if snapshot {
                        w(out, "\n".to_string())?;
                        w(out, obs.reg.snapshot())?;
                    }
                    Ok(())
                }
            }
        }
        Command::ObsSnapshot {
            op,
            app,
            txns,
            level,
            config,
            out: out_path,
            prom,
        } => {
            let workload = match app {
                Some(a) => format!("{}@L{level}/{config}", a.mix().name),
                None => format!("{op}@L{level}/{config}"),
            };
            let obs = observe_workload(&op, app, txns, level, config)?;
            let text = if prom {
                dvh_obs::prom::prometheus(&obs.reg)
            } else {
                let mut s = dvh_obs::diff::snapshot_json(&obs.reg, &workload);
                s.push('\n');
                s
            };
            match out_path {
                Some(path) => {
                    std::fs::write(&path, &text).map_err(|e| format!("{path}: {e}"))?;
                    w(out, format!("wrote {path}\n"))
                }
                None => w(out, text),
            }
        }
        Command::ObsDiff {
            baseline,
            current,
            threshold,
            json,
        } => {
            let load = |path: &str| -> Result<dvh_obs::json::Value, String> {
                let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                dvh_obs::json::parse(&text).map_err(|e| format!("{path}: {e}"))
            };
            let base = load(&baseline)?;
            let cur = load(&current)?;
            let report = dvh_obs::diff::diff(&base, &cur, dvh_obs::diff::DiffConfig { threshold })?;
            if json {
                let mut s = report.to_json().to_json();
                s.push('\n');
                w(out, s)?;
            } else {
                w(out, report.to_text())?;
            }
            let regressed = report.regressions().len();
            if regressed == 0 {
                Ok(())
            } else {
                Err(format!(
                    "{regressed} metric(s) regressed beyond {:.0}%",
                    threshold * 100.0
                ))
            }
        }
        Command::Explain { op, level, config } => {
            let mut m = Machine::build(config.machine_config(level));
            let cost = run_named_op(&mut m, &op)?;
            w(
                out,
                format!(
                    "{op} at L{level} ({config}): {cost}
{}",
                    dvh_core::analysis::explain(m.world())
                ),
            )
        }
        Command::Sweep { figure, workers } => {
            let workers = if workers == 0 {
                dvh_bench::parallel::available_workers()
            } else {
                workers
            };
            let fig = dvh_bench::harness::figure_with_workers(figure, workers)
                .expect("validated at parse time");
            w(out, fig.to_csv())
        }
        Command::BenchEngine {
            quick,
            out: out_path,
            baseline,
        } => {
            let r = dvh_bench::engine::run(quick);
            w(out, r.to_report())?;
            if let Some(path) = out_path {
                std::fs::write(&path, r.to_json()).map_err(|e| format!("{path}: {e}"))?;
                w(out, format!("wrote {path}\n"))?;
            }
            if let Some(path) = baseline {
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let b = dvh_bench::engine::Baseline::parse(&text)
                    .map_err(|e| format!("{path}: {e}"))?;
                dvh_bench::engine::check_regression(&r, &b, 0.25)?;
                w(
                    out,
                    format!(
                        "within 25% of baseline ({:.2}M exits/s)\n",
                        b.exit_rate / 1e6
                    ),
                )?;
            }
            Ok(())
        }
        Command::Check { source_root } => {
            let root = source_root.map(std::path::PathBuf::from);
            let report = dvh_checker::harness::run_all(root.as_deref())
                .map_err(|e| format!("source lint failed: {e}"))?;
            w(out, report.to_string())?;
            if report.is_clean() {
                Ok(())
            } else {
                Err(format!(
                    "{} invariant violation(s)",
                    report.violations.len()
                ))
            }
        }
        Command::Results { files } => {
            if files.is_empty() {
                return Err("results requires at least one file".into());
            }
            for path in files {
                let text = std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                let r = ResultFile::parse(&text).map_err(|e| format!("{path}: {e}"))?;
                let avgs: Vec<String> =
                    r.run_averages().iter().map(|a| format!("{a:.2}")).collect();
                w(
                    out,
                    format!(
                        "{}: {} runs, per-run averages [{}], best(max) {:.2}, best(min) {:.2}\n",
                        r.name,
                        r.runs(),
                        avgs.join(", "),
                        r.best(true),
                        r.best(false)
                    ),
                )?;
            }
            Ok(())
        }
    }
}

/// A workload run with the full observability stack armed: the trace
/// events, the metrics registry (device metrics exported), and a
/// one-line header describing what ran.
struct Observed {
    header: String,
    events: Vec<dvh_hypervisor::TraceEvent>,
    num_cpus: usize,
    reg: dvh_obs::MetricsRegistry,
}

/// Runs the profile/obs-snapshot workload (one named op, or a full
/// application benchmark) on a fresh machine with tracing and metrics
/// on. Observability never advances simulated time, so the reported
/// costs and overheads are identical to an unobserved run.
fn observe_workload(
    op: &str,
    app: Option<AppId>,
    txns: u32,
    level: usize,
    config: CliConfig,
) -> Result<Observed, String> {
    let mut m = Machine::build(config.machine_config(level));
    m.world_mut().enable_observability(1 << 20);
    let header = match app {
        Some(app) => {
            let overhead = run_app(&mut m, &app.mix(), txns).overhead;
            format!(
                "{} at L{level} ({config}): overhead {overhead:.2}x vs native\n",
                app.mix().name
            )
        }
        None => {
            let cost = run_named_op(&mut m, op)?;
            format!("{op} at L{level} ({config}): {cost}\n")
        }
    };
    m.world_mut().export_device_metrics();
    let events = m.world_mut().take_trace();
    let num_cpus = m.world().num_cpus();
    let reg = m.world_mut().take_metrics().unwrap_or_default();
    Ok(Observed {
        header,
        events,
        num_cpus,
        reg,
    })
}

fn run_named_op(m: &mut Machine, op: &str) -> Result<dvh_core::Cycles, String> {
    Ok(match op {
        "hypercall" => m.hypercall(0),
        "timer" => m.program_timer(0),
        "ipi" => m.send_ipi(0, 1),
        "devnotify" => m.device_notify(0),
        other => return Err(format!("unknown op '{other}'")),
    })
}

/// Convenience used by tests: execute and capture output.
pub fn execute_to_string(cmd: Command) -> Result<String, String> {
    let mut buf = Vec::new();
    execute(cmd, &mut buf)?;
    String::from_utf8(buf).map_err(|e| e.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::CliConfig;

    #[test]
    fn check_command_is_clean_without_sources() {
        let out = execute_to_string(Command::Check { source_root: None }).unwrap();
        assert!(out.contains("all invariants hold"), "{out}");
        assert!(out.contains("fig7/nested-dvh"));
        assert!(!out.contains("source lint"));
    }

    #[test]
    fn check_command_runs_source_lint_on_repo() {
        let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
        let out = execute_to_string(Command::Check {
            source_root: Some(root.into()),
        })
        .unwrap();
        assert!(out.contains("source lint"), "{out}");
        assert!(out.contains("all invariants hold"), "{out}");
    }

    #[test]
    fn micro_command_produces_table() {
        let out = execute_to_string(Command::Micro {
            level: 1,
            config: CliConfig::Base,
            iters: 2,
            csv: false,
        })
        .unwrap();
        assert!(out.contains("Hypercall"));
        assert!(out.contains("L1 base"));
    }

    #[test]
    fn micro_csv_has_four_rows() {
        let out = execute_to_string(Command::Micro {
            level: 2,
            config: CliConfig::Dvh,
            iters: 1,
            csv: true,
        })
        .unwrap();
        assert_eq!(out.lines().count(), 5); // header + 4 benchmarks
        assert!(out.contains("programtimer,2,dvh,"));
    }

    #[test]
    fn app_csv_round_trips_through_results_parser() {
        let out = execute_to_string(Command::App {
            app: AppId::Hackbench,
            level: 2,
            config: CliConfig::Base,
            runs: 2,
            txns: 40,
            csv: true,
        })
        .unwrap();
        let parsed = ResultFile::parse(&out).unwrap();
        assert_eq!(parsed.name, "Hackbench");
        assert_eq!(parsed.runs(), 2);
        assert!(parsed.best(false) >= 1.0);
    }

    #[test]
    fn apps_lists_all_seven() {
        let out = execute_to_string(Command::Apps {
            level: 1,
            config: CliConfig::Base,
            txns: 40,
            csv: false,
        })
        .unwrap();
        assert_eq!(out.lines().count(), 7);
    }

    #[test]
    fn migrate_passthrough_fails_cleanly() {
        let err = execute_to_string(Command::Migrate {
            config: CliConfig::Passthrough,
            with_hypervisor: false,
        })
        .unwrap_err();
        assert!(err.contains("passthrough"));
    }

    #[test]
    fn migrate_dvh_succeeds() {
        let out = execute_to_string(Command::Migrate {
            config: CliConfig::Dvh,
            with_hypervisor: false,
        })
        .unwrap();
        assert!(out.contains("verified: true"));
    }

    #[test]
    fn results_requires_files() {
        assert!(execute_to_string(Command::Results { files: vec![] }).is_err());
    }

    #[test]
    fn explain_shows_attribution() {
        let out = execute_to_string(Command::Explain {
            op: "timer".into(),
            level: 2,
            config: CliConfig::Base,
        })
        .unwrap();
        assert!(out.contains("interventions"));
        assert!(out.contains("MsrWrite"));
    }

    fn trace_cmd(format: TraceFormat) -> Command {
        Command::Trace {
            op: "timer".into(),
            app: None,
            txns: 40,
            level: 2,
            config: CliConfig::Base,
            format,
        }
    }

    #[test]
    fn trace_lists_events() {
        let out = execute_to_string(trace_cmd(TraceFormat::Text)).unwrap();
        assert!(out.lines().count() > 10);
        assert!(out.contains("exit L2 MsrWrite"));
    }

    #[test]
    fn trace_chrome_round_trips_through_parser() {
        let out = execute_to_string(trace_cmd(TraceFormat::Chrome)).unwrap();
        let doc = dvh_obs::json::parse(out.trim_end()).expect("chrome export must parse");
        assert_eq!(doc.to_json(), out.trim_end());
        let spans = trace_export::chrome_outermost_totals(&doc);
        assert!(!spans.is_empty());
    }

    #[test]
    fn trace_jsonl_lines_parse() {
        let out = execute_to_string(trace_cmd(TraceFormat::Jsonl)).unwrap();
        assert!(out.lines().count() > 10);
        for line in out.lines() {
            dvh_obs::json::parse(line).expect("every jsonl line must parse");
        }
    }

    #[test]
    fn trace_app_runs_a_benchmark() {
        let out = execute_to_string(Command::Trace {
            op: "timer".into(),
            app: Some(AppId::NetperfRr),
            txns: 5,
            level: 2,
            config: CliConfig::Base,
            format: TraceFormat::Text,
        })
        .unwrap();
        assert!(out.lines().count() > 50);
    }

    #[test]
    fn profile_op_shows_attribution_table() {
        let out = execute_to_string(Command::Profile {
            op: "timer".into(),
            app: None,
            txns: 40,
            level: 2,
            config: CliConfig::Base,
            top: 10,
            snapshot: false,
            format: ProfileFormat::Table,
        })
        .unwrap();
        assert!(out.contains("timer at L2 (base)"), "{out}");
        assert!(out.contains("MsrWrite"), "{out}");
        assert!(out.contains("total"), "{out}");
        // The table now carries the derived views too: latency
        // percentiles and the emergent multiplication factors.
        assert!(out.contains("p99"), "{out}");
        assert!(out.contains("exit multiplication"), "{out}");
    }

    #[test]
    fn profile_folded_is_flamegraph_ready() {
        let out = execute_to_string(Command::Profile {
            op: "timer".into(),
            app: None,
            txns: 40,
            level: 2,
            config: CliConfig::Base,
            top: 10,
            snapshot: false,
            format: ProfileFormat::Folded,
        })
        .unwrap();
        assert!(!out.is_empty());
        for line in out.lines() {
            // Every line is `path cycles` with a numeric tail and a
            // root frame naming a level.
            let (path, cycles) = line.rsplit_once(' ').expect("folded line shape");
            assert!(cycles.parse::<u64>().is_ok(), "{line}");
            assert!(path.starts_with('L'), "{line}");
        }
        // Nested config: some stack has depth > 1.
        assert!(out.lines().any(|l| l.contains(';')), "{out}");
    }

    #[test]
    fn obs_snapshot_self_diff_is_clean() {
        let dir = std::env::temp_dir().join("dvh-obs-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let snap_cmd = || Command::ObsSnapshot {
            op: "timer".into(),
            app: None,
            txns: 40,
            level: 2,
            config: CliConfig::Base,
            out: Some(path.to_string_lossy().into_owned()),
            prom: false,
        };
        execute_to_string(snap_cmd()).unwrap();
        let first = std::fs::read_to_string(&path).unwrap();
        execute_to_string(snap_cmd()).unwrap();
        assert_eq!(
            first,
            std::fs::read_to_string(&path).unwrap(),
            "snapshots must be deterministic"
        );
        let out = execute_to_string(Command::ObsDiff {
            baseline: path.to_string_lossy().into_owned(),
            current: path.to_string_lossy().into_owned(),
            threshold: 0.25,
            json: false,
        })
        .unwrap();
        assert!(out.contains("0 regression(s)"), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn obs_snapshot_prom_exports_histograms() {
        let out = execute_to_string(Command::ObsSnapshot {
            op: "timer".into(),
            app: None,
            txns: 40,
            level: 2,
            config: CliConfig::Base,
            out: None,
            prom: true,
        })
        .unwrap();
        assert!(out.contains("# TYPE dvh_exit_cycles histogram"), "{out}");
        assert!(out.contains("le=\"+Inf\""), "{out}");
    }

    #[test]
    fn obs_diff_flags_missing_file() {
        assert!(execute_to_string(Command::ObsDiff {
            baseline: "/nonexistent/base.json".into(),
            current: "/nonexistent/cur.json".into(),
            threshold: 0.25,
            json: false,
        })
        .is_err());
    }

    #[test]
    fn profile_app_with_snapshot_is_deterministic() {
        let run = || {
            execute_to_string(Command::Profile {
                op: "timer".into(),
                app: Some(AppId::NetperfRr),
                txns: 10,
                level: 2,
                config: CliConfig::Dvh,
                top: 5,
                snapshot: true,
                format: ProfileFormat::Table,
            })
            .unwrap()
        };
        let out = run();
        assert!(out.contains("Netperf RR at L2 (dvh)"), "{out}");
        assert!(out.contains("histogram"), "{out}");
        assert_eq!(out, run(), "profile output must be deterministic");
    }

    #[test]
    fn profile_rejects_unknown_op() {
        assert!(execute_to_string(Command::Profile {
            op: "frob".into(),
            app: None,
            txns: 40,
            level: 2,
            config: CliConfig::Base,
            top: 10,
            snapshot: false,
            format: ProfileFormat::Table,
        })
        .is_err());
    }

    #[test]
    fn explain_rejects_unknown_op() {
        assert!(execute_to_string(Command::Explain {
            op: "frob".into(),
            level: 2,
            config: CliConfig::Base,
        })
        .is_err());
    }

    #[test]
    fn help_prints_usage() {
        let out = execute_to_string(Command::Help).unwrap();
        assert!(out.contains("USAGE"));
    }
}
