//! Argument parsing for the `dvh` binary (dependency-free, artifact
//! style: small fixed vocabulary).

use dvh_core::MachineConfig;
use dvh_workloads::AppId;
use std::fmt;

/// The VM configuration vocabulary of the paper's artifact
/// (`run-vm.py`'s second option): `base`, `passthrough`, `dvh-vp`,
/// `dvh`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CliConfig {
    /// Paravirtual I/O ("base" in the artifact).
    Base,
    /// Physical device passthrough.
    Passthrough,
    /// DVH virtual-passthrough only.
    DvhVp,
    /// Full DVH.
    Dvh,
}

impl CliConfig {
    /// Parses the artifact vocabulary.
    pub fn parse(s: &str) -> Result<CliConfig, ParseError> {
        match s {
            "base" => Ok(CliConfig::Base),
            "passthrough" | "pt" => Ok(CliConfig::Passthrough),
            "dvh-vp" => Ok(CliConfig::DvhVp),
            "dvh" => Ok(CliConfig::Dvh),
            other => Err(ParseError(format!(
                "unknown config '{other}' (expected base|passthrough|dvh-vp|dvh)"
            ))),
        }
    }

    /// Builds the machine configuration at `level`.
    pub fn machine_config(self, level: usize) -> MachineConfig {
        match self {
            CliConfig::Base => MachineConfig::baseline(level),
            CliConfig::Passthrough => MachineConfig::passthrough(level),
            CliConfig::DvhVp => MachineConfig::dvh_vp(level),
            CliConfig::Dvh => MachineConfig::dvh(level),
        }
    }
}

impl fmt::Display for CliConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CliConfig::Base => "base",
            CliConfig::Passthrough => "passthrough",
            CliConfig::DvhVp => "dvh-vp",
            CliConfig::Dvh => "dvh",
        };
        f.write_str(s)
    }
}

/// Output format for `dvh trace`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceFormat {
    /// One human-readable line per event (the default).
    #[default]
    Text,
    /// A Chrome trace-event JSON document (load in `about:tracing`
    /// or Perfetto; one process per simulated CPU, one thread track
    /// per virtualization level).
    Chrome,
    /// One JSON object per line.
    Jsonl,
}

impl TraceFormat {
    /// Parses `text`, `chrome`, or `jsonl`.
    pub fn parse(s: &str) -> Result<TraceFormat, ParseError> {
        match s {
            "text" => Ok(TraceFormat::Text),
            "chrome" => Ok(TraceFormat::Chrome),
            "jsonl" => Ok(TraceFormat::Jsonl),
            other => Err(ParseError(format!(
                "unknown trace format '{other}' (expected text|chrome|jsonl)"
            ))),
        }
    }
}

/// Output format for `dvh profile`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProfileFormat {
    /// The top-N attribution table plus latency percentiles (the
    /// default).
    #[default]
    Table,
    /// Folded-stack flamegraph lines rebuilt from the causal tree of
    /// every outermost exit (`flamegraph.pl`-compatible).
    Folded,
}

impl ProfileFormat {
    /// Parses `table` or `folded`.
    pub fn parse(s: &str) -> Result<ProfileFormat, ParseError> {
        match s {
            "table" => Ok(ProfileFormat::Table),
            "folded" => Ok(ProfileFormat::Folded),
            other => Err(ParseError(format!(
                "unknown profile format '{other}' (expected table|folded)"
            ))),
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Run the Table 1 microbenchmarks.
    Micro {
        /// Virtualization level (1..).
        level: usize,
        /// VM configuration.
        config: CliConfig,
        /// Iterations to average.
        iters: u32,
        /// Emit CSV instead of a table.
        csv: bool,
    },
    /// Run one application benchmark.
    App {
        /// Which application.
        app: AppId,
        /// Virtualization level.
        level: usize,
        /// VM configuration.
        config: CliConfig,
        /// Independent runs (artifact style: take the best average).
        runs: u32,
        /// Transactions per run.
        txns: u32,
        /// Emit CSV.
        csv: bool,
    },
    /// Run all seven application benchmarks.
    Apps {
        /// Virtualization level.
        level: usize,
        /// VM configuration.
        config: CliConfig,
        /// Transactions per benchmark.
        txns: u32,
        /// Emit CSV.
        csv: bool,
    },
    /// Run the migration experiment.
    Migrate {
        /// VM configuration.
        config: CliConfig,
        /// Migrate the guest hypervisor along with the nested VM.
        with_hypervisor: bool,
    },
    /// Aggregate CSV result files (like the artifact's `results.py`).
    Results {
        /// Files to aggregate.
        files: Vec<String>,
    },
    /// Explain where one operation's cycles go (cost attribution).
    Explain {
        /// Operation: hypercall|timer|ipi|devnotify.
        op: String,
        /// Virtualization level.
        level: usize,
        /// VM configuration.
        config: CliConfig,
    },
    /// Regenerate a paper figure as CSV (7, 8, 9, or 10).
    Sweep {
        /// Figure number.
        figure: u32,
        /// Worker threads (0 = one per host core). The CSV is
        /// byte-identical at any worker count.
        workers: usize,
    },
    /// Benchmark the simulator engine itself (exits/second and sweep
    /// wall-clock), emitting `BENCH_engine.json`.
    BenchEngine {
        /// Smaller loop and fewer repeats, for CI smoke runs.
        quick: bool,
        /// Where to write the JSON result (`None` = don't write).
        out: Option<String>,
        /// Baseline JSON to compare against (>25% exit-rate drop
        /// fails the command).
        baseline: Option<String>,
    },
    /// Dump the full event trace of one operation or application run.
    Trace {
        /// Operation: hypercall|timer|ipi|devnotify (ignored when
        /// `app` is given).
        op: String,
        /// Trace a full application benchmark instead of one
        /// operation.
        app: Option<AppId>,
        /// Transactions when tracing an application.
        txns: u32,
        /// Virtualization level.
        level: usize,
        /// VM configuration.
        config: CliConfig,
        /// Output format.
        format: TraceFormat,
    },
    /// Profile cycle attribution: top-N (level, reason) rows from the
    /// dvh-obs metrics registry.
    Profile {
        /// Operation: hypercall|timer|ipi|devnotify (ignored when
        /// `app` is given).
        op: String,
        /// Profile a full application benchmark instead of one
        /// operation.
        app: Option<AppId>,
        /// Transactions when profiling an application.
        txns: u32,
        /// Virtualization level.
        level: usize,
        /// VM configuration.
        config: CliConfig,
        /// Rows to show.
        top: usize,
        /// Also dump the deterministic full-registry snapshot.
        snapshot: bool,
        /// Output format.
        format: ProfileFormat,
    },
    /// Write (or print) an observability snapshot document for
    /// later differential analysis.
    ObsSnapshot {
        /// Operation: hypercall|timer|ipi|devnotify (ignored when
        /// `app` is given).
        op: String,
        /// Snapshot a full application benchmark instead of one
        /// operation.
        app: Option<AppId>,
        /// Transactions when snapshotting an application.
        txns: u32,
        /// Virtualization level.
        level: usize,
        /// VM configuration.
        config: CliConfig,
        /// Where to write the JSON (`None` = stdout).
        out: Option<String>,
        /// Emit Prometheus text exposition format instead of the
        /// snapshot JSON.
        prom: bool,
    },
    /// Compare two observability snapshots with per-metric relative
    /// thresholds.
    ObsDiff {
        /// Baseline snapshot path.
        baseline: String,
        /// Current snapshot path.
        current: String,
        /// Regression threshold as a fraction (0.25 = 25%).
        threshold: f64,
        /// Emit the JSON report instead of text.
        json: bool,
    },
    /// Run the dvh-checker invariant passes.
    Check {
        /// Repo root for the source-lint pass; `None` skips it.
        source_root: Option<String>,
    },
    /// Print usage.
    Help,
}

/// A command-line parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ParseError {}

fn parse_app(s: &str) -> Result<AppId, ParseError> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "netperf-rr" | "rr" => AppId::NetperfRr,
        "netperf-stream" | "stream" => AppId::NetperfStream,
        "netperf-maerts" | "maerts" => AppId::NetperfMaerts,
        "apache" => AppId::Apache,
        "memcached" => AppId::Memcached,
        "mysql" => AppId::Mysql,
        "hackbench" => AppId::Hackbench,
        other => {
            return Err(ParseError(format!(
                "unknown app '{other}' (expected rr|stream|maerts|apache|memcached|mysql|hackbench)"
            )))
        }
    })
}

struct Opts<'a> {
    rest: &'a [String],
}

impl<'a> Opts<'a> {
    fn value_of(&self, flag: &str) -> Option<&'a str> {
        self.rest
            .iter()
            .position(|a| a == flag)
            .and_then(|i| self.rest.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, flag: &str) -> bool {
        self.rest.iter().any(|a| a == flag)
    }

    fn usize_of(&self, flag: &str, default: usize) -> Result<usize, ParseError> {
        match self.value_of(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseError(format!("{flag} expects a number, got '{v}'"))),
        }
    }

    fn u32_of(&self, flag: &str, default: u32) -> Result<u32, ParseError> {
        Ok(self.usize_of(flag, default as usize)? as u32)
    }

    fn config(&self) -> Result<CliConfig, ParseError> {
        match self.value_of("--config") {
            None => Ok(CliConfig::Base),
            Some(v) => CliConfig::parse(v),
        }
    }
}

/// Parses a full argument vector (without the program name).
///
/// # Errors
///
/// Returns [`ParseError`] for unknown subcommands, flags, or values.
pub fn parse(args: &[String]) -> Result<Command, ParseError> {
    let Some(cmd) = args.first() else {
        return Ok(Command::Help);
    };
    let opts = Opts { rest: &args[1..] };
    match cmd.as_str() {
        "micro" => Ok(Command::Micro {
            level: opts.usize_of("--level", 2)?,
            config: opts.config()?,
            iters: opts.u32_of("--iters", 10)?,
            csv: opts.has("--csv"),
        }),
        "app" => {
            let name = opts
                .value_of("--name")
                .ok_or_else(|| ParseError("app requires --name <benchmark>".into()))?;
            Ok(Command::App {
                app: parse_app(name)?,
                level: opts.usize_of("--level", 2)?,
                config: opts.config()?,
                runs: opts.u32_of("--runs", 3)?,
                txns: opts.u32_of("--txns", 400)?,
                csv: opts.has("--csv"),
            })
        }
        "apps" => Ok(Command::Apps {
            level: opts.usize_of("--level", 2)?,
            config: opts.config()?,
            txns: opts.u32_of("--txns", 400)?,
            csv: opts.has("--csv"),
        }),
        "migrate" => Ok(Command::Migrate {
            config: opts.config()?,
            with_hypervisor: opts.has("--with-hypervisor"),
        }),
        "results" => Ok(Command::Results {
            files: args[1..].to_vec(),
        }),
        "trace" => Ok(Command::Trace {
            op: opts.value_of("--op").unwrap_or("timer").to_string(),
            app: opts.value_of("--app").map(parse_app).transpose()?,
            txns: opts.u32_of("--txns", 40)?,
            level: opts.usize_of("--level", 2)?,
            config: opts.config()?,
            format: match opts.value_of("--format") {
                None => TraceFormat::Text,
                Some(v) => TraceFormat::parse(v)?,
            },
        }),
        "profile" => Ok(Command::Profile {
            op: opts.value_of("--op").unwrap_or("timer").to_string(),
            app: opts.value_of("--app").map(parse_app).transpose()?,
            txns: opts.u32_of("--txns", 40)?,
            level: opts.usize_of("--level", 2)?,
            config: opts.config()?,
            top: opts.usize_of("--top", 10)?,
            snapshot: opts.has("--snapshot"),
            format: match opts.value_of("--format") {
                None => ProfileFormat::Table,
                Some(v) => ProfileFormat::parse(v)?,
            },
        }),
        "obs" => parse_obs(&args[1..]),
        "explain" => Ok(Command::Explain {
            op: opts.value_of("--op").unwrap_or("timer").to_string(),
            level: opts.usize_of("--level", 2)?,
            config: opts.config()?,
        }),
        "sweep" => {
            let figure = opts.u32_of("--figure", 7)?;
            if ![7, 8, 9, 10].contains(&figure) {
                return Err(ParseError(format!(
                    "no figure {figure} (expected 7|8|9|10)"
                )));
            }
            Ok(Command::Sweep {
                figure,
                workers: opts.usize_of("--workers", 0)?,
            })
        }
        "bench-engine" => Ok(Command::BenchEngine {
            quick: opts.has("--quick"),
            out: opts.value_of("--out").map(str::to_string),
            baseline: opts.value_of("--baseline").map(str::to_string),
        }),
        "check" => {
            // check gates CI, so unlike the exploratory subcommands it
            // rejects anything it does not understand: a typo'd flag
            // silently running the defaults would weaken the gate.
            let rest = opts.rest;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--no-source" => i += 1,
                    "--source-root" => {
                        if rest.get(i + 1).is_none() {
                            return Err(ParseError("--source-root expects a directory".into()));
                        }
                        i += 2;
                    }
                    other => {
                        return Err(ParseError(format!(
                            "unknown flag '{other}' for check (expected \
                             [--source-root DIR] [--no-source])"
                        )))
                    }
                }
            }
            Ok(Command::Check {
                source_root: if opts.has("--no-source") {
                    None
                } else {
                    Some(opts.value_of("--source-root").unwrap_or(".").to_string())
                },
            })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(ParseError(format!("unknown command '{other}'"))),
    }
}

/// Parses the `obs` subcommand family: `obs snapshot` (exploratory,
/// profile-style flags) and `obs diff` (a CI gate, so it strict-parses
/// like `check` — a typo'd flag must fail, not silently run defaults).
fn parse_obs(args: &[String]) -> Result<Command, ParseError> {
    let Some(sub) = args.first() else {
        return Err(ParseError(
            "obs requires a subcommand (snapshot|diff)".into(),
        ));
    };
    let opts = Opts { rest: &args[1..] };
    match sub.as_str() {
        "snapshot" => Ok(Command::ObsSnapshot {
            op: opts.value_of("--op").unwrap_or("timer").to_string(),
            app: opts.value_of("--app").map(parse_app).transpose()?,
            txns: opts.u32_of("--txns", 40)?,
            level: opts.usize_of("--level", 2)?,
            config: opts.config()?,
            out: opts.value_of("--out").map(str::to_string),
            prom: opts.has("--prom"),
        }),
        "diff" => {
            let rest = &args[1..];
            let mut files: Vec<&str> = Vec::new();
            let mut threshold = 0.25f64;
            let mut json = false;
            let mut i = 0;
            while i < rest.len() {
                match rest[i].as_str() {
                    "--json" => {
                        json = true;
                        i += 1;
                    }
                    "--threshold" => {
                        let v = rest
                            .get(i + 1)
                            .ok_or_else(|| ParseError("--threshold expects a percentage".into()))?;
                        let pct: f64 = v.parse().map_err(|_| {
                            ParseError(format!("--threshold expects a number, got '{v}'"))
                        })?;
                        if !(0.0..=1000.0).contains(&pct) {
                            return Err(ParseError(format!(
                                "--threshold {pct} out of range (percent, 0..=1000)"
                            )));
                        }
                        threshold = pct / 100.0;
                        i += 2;
                    }
                    flag if flag.starts_with('-') => {
                        return Err(ParseError(format!(
                            "unknown flag '{flag}' for obs diff (expected \
                             <baseline.json> <current.json> [--threshold PCT] [--json])"
                        )))
                    }
                    file => {
                        files.push(file);
                        i += 1;
                    }
                }
            }
            let [baseline, current] = files.as_slice() else {
                return Err(ParseError(
                    "obs diff requires exactly two files: <baseline.json> <current.json>".into(),
                ));
            };
            Ok(Command::ObsDiff {
                baseline: baseline.to_string(),
                current: current.to_string(),
                threshold,
                json,
            })
        }
        other => Err(ParseError(format!(
            "unknown obs subcommand '{other}' (expected snapshot|diff)"
        ))),
    }
}

/// The usage text.
pub const USAGE: &str = "\
dvh — DVH nested-virtualization simulator (ASPLOS 2020 reproduction)

USAGE:
  dvh micro   [--level N] [--config base|passthrough|dvh-vp|dvh] [--iters N] [--csv]
  dvh app     --name rr|stream|maerts|apache|memcached|mysql|hackbench
              [--level N] [--config ...] [--runs N] [--txns N] [--csv]
  dvh apps    [--level N] [--config ...] [--txns N] [--csv]
  dvh migrate [--config ...] [--with-hypervisor]
  dvh results <file.csv> ...
  dvh explain [--op hypercall|timer|ipi|devnotify] [--level N] [--config ...]
  dvh sweep   [--figure 7|8|9|10] [--workers N]
  dvh bench-engine [--quick] [--out FILE] [--baseline FILE]
  dvh trace   [--op hypercall|timer|ipi|devnotify | --app NAME [--txns N]]
              [--level N] [--config ...] [--format text|chrome|jsonl]
  dvh profile [--op hypercall|timer|ipi|devnotify | --app NAME [--txns N]]
              [--level N] [--config ...] [--top N] [--snapshot]
              [--format table|folded]
  dvh obs snapshot [--op ... | --app NAME [--txns N]] [--level N] [--config ...]
              [--out FILE] [--prom]
  dvh obs diff <baseline.json> <current.json> [--threshold PCT] [--json]
  dvh check   [--source-root DIR] [--no-source]
  dvh help
";

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_micro_defaults() {
        let c = parse(&v(&["micro"])).unwrap();
        assert_eq!(
            c,
            Command::Micro {
                level: 2,
                config: CliConfig::Base,
                iters: 10,
                csv: false
            }
        );
    }

    #[test]
    fn parse_app_with_flags() {
        let c = parse(&v(&[
            "app", "--name", "apache", "--level", "3", "--config", "dvh-vp", "--runs", "5", "--csv",
        ]))
        .unwrap();
        match c {
            Command::App {
                app,
                level,
                config,
                runs,
                csv,
                ..
            } => {
                assert_eq!(app, dvh_workloads::AppId::Apache);
                assert_eq!(level, 3);
                assert_eq!(config, CliConfig::DvhVp);
                assert_eq!(runs, 5);
                assert!(csv);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(parse(&v(&["frobnicate"])).is_err());
    }

    #[test]
    fn app_requires_name() {
        assert!(parse(&v(&["app"])).is_err());
    }

    #[test]
    fn bad_number_errors() {
        assert!(parse(&v(&["micro", "--level", "two"])).is_err());
    }

    #[test]
    fn config_vocabulary_round_trips() {
        for c in [
            CliConfig::Base,
            CliConfig::Passthrough,
            CliConfig::DvhVp,
            CliConfig::Dvh,
        ] {
            assert_eq!(CliConfig::parse(&c.to_string()).unwrap(), c);
        }
        assert!(CliConfig::parse("vmx").is_err());
    }

    #[test]
    fn all_app_aliases_parse() {
        for name in [
            "rr",
            "stream",
            "maerts",
            "apache",
            "memcached",
            "mysql",
            "hackbench",
            "netperf-rr",
        ] {
            assert!(parse_app(name).is_ok(), "{name}");
        }
    }

    #[test]
    fn parse_trace_formats_and_targets() {
        match parse(&v(&["trace", "--format", "chrome", "--app", "rr"])).unwrap() {
            Command::Trace {
                format, app, txns, ..
            } => {
                assert_eq!(format, TraceFormat::Chrome);
                assert_eq!(app, Some(dvh_workloads::AppId::NetperfRr));
                assert_eq!(txns, 40);
            }
            other => panic!("{other:?}"),
        }
        match parse(&v(&["trace"])).unwrap() {
            Command::Trace { format, app, .. } => {
                assert_eq!(format, TraceFormat::Text);
                assert_eq!(app, None);
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["trace", "--format", "svg"])).is_err());
        assert!(parse(&v(&["trace", "--app", "frob"])).is_err());
    }

    #[test]
    fn parse_profile_defaults_and_flags() {
        match parse(&v(&["profile"])).unwrap() {
            Command::Profile {
                op, top, snapshot, ..
            } => {
                assert_eq!(op, "timer");
                assert_eq!(top, 10);
                assert!(!snapshot);
            }
            other => panic!("{other:?}"),
        }
        match parse(&v(&[
            "profile",
            "--app",
            "apache",
            "--top",
            "3",
            "--snapshot",
        ]))
        .unwrap()
        {
            Command::Profile {
                app, top, snapshot, ..
            } => {
                assert_eq!(app, Some(dvh_workloads::AppId::Apache));
                assert_eq!(top, 3);
                assert!(snapshot);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parse_profile_formats() {
        match parse(&v(&["profile", "--format", "folded", "--app", "rr"])).unwrap() {
            Command::Profile { format, app, .. } => {
                assert_eq!(format, ProfileFormat::Folded);
                assert_eq!(app, Some(dvh_workloads::AppId::NetperfRr));
            }
            other => panic!("{other:?}"),
        }
        match parse(&v(&["profile"])).unwrap() {
            Command::Profile { format, .. } => assert_eq!(format, ProfileFormat::Table),
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["profile", "--format", "svg"])).is_err());
    }

    #[test]
    fn parse_obs_snapshot() {
        match parse(&v(&[
            "obs",
            "snapshot",
            "--app",
            "rr",
            "--txns",
            "25",
            "--out",
            "snap.json",
        ]))
        .unwrap()
        {
            Command::ObsSnapshot {
                app,
                txns,
                out,
                prom,
                ..
            } => {
                assert_eq!(app, Some(dvh_workloads::AppId::NetperfRr));
                assert_eq!(txns, 25);
                assert_eq!(out.as_deref(), Some("snap.json"));
                assert!(!prom);
            }
            other => panic!("{other:?}"),
        }
        match parse(&v(&["obs", "snapshot", "--prom"])).unwrap() {
            Command::ObsSnapshot { prom, .. } => assert!(prom),
            other => panic!("{other:?}"),
        }
        assert!(parse(&v(&["obs"])).is_err());
        assert!(parse(&v(&["obs", "frobnicate"])).is_err());
    }

    #[test]
    fn parse_obs_diff_is_strict() {
        assert_eq!(
            parse(&v(&["obs", "diff", "base.json", "cur.json"])).unwrap(),
            Command::ObsDiff {
                baseline: "base.json".into(),
                current: "cur.json".into(),
                threshold: 0.25,
                json: false,
            }
        );
        match parse(&v(&[
            "obs",
            "diff",
            "a.json",
            "b.json",
            "--threshold",
            "10",
            "--json",
        ]))
        .unwrap()
        {
            Command::ObsDiff {
                threshold, json, ..
            } => {
                assert!((threshold - 0.10).abs() < 1e-12);
                assert!(json);
            }
            other => panic!("{other:?}"),
        }
        // A CI gate rejects what it does not understand.
        assert!(parse(&v(&["obs", "diff", "a.json"])).is_err());
        assert!(parse(&v(&["obs", "diff", "a.json", "b.json", "c.json"])).is_err());
        assert!(parse(&v(&["obs", "diff", "a.json", "b.json", "--bogus"])).is_err());
        assert!(parse(&v(&["obs", "diff", "a.json", "b.json", "--threshold"])).is_err());
        assert!(parse(&v(&[
            "obs",
            "diff",
            "a.json",
            "b.json",
            "--threshold",
            "nope"
        ]))
        .is_err());
    }

    #[test]
    fn empty_args_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
    }

    #[test]
    fn parse_check_variants() {
        assert_eq!(
            parse(&v(&["check"])).unwrap(),
            Command::Check {
                source_root: Some(".".into())
            }
        );
        assert_eq!(
            parse(&v(&["check", "--source-root", "/tmp/repo"])).unwrap(),
            Command::Check {
                source_root: Some("/tmp/repo".into())
            }
        );
        assert_eq!(
            parse(&v(&["check", "--no-source"])).unwrap(),
            Command::Check { source_root: None }
        );
        // check is a CI gate: it rejects what it does not understand.
        assert!(parse(&v(&["check", "--bogus"])).is_err());
        assert!(parse(&v(&["check", "--source-root"])).is_err());
    }
}
