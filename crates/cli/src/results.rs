//! Result aggregation, mirroring the artifact's `results.py`: each CSV
//! carries one benchmark's samples with one column per run; the
//! evaluation methodology takes the *average per run* and then the
//! *best* average ("choose the best performance number among the
//! average numbers for each run", artifact §A.6).

use std::fmt;

/// A parsed result file: a benchmark name plus a samples-by-runs
/// matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct ResultFile {
    /// Benchmark name (first non-comment line).
    pub name: String,
    /// `samples[row][run]`.
    pub samples: Vec<Vec<f64>>,
}

/// Parse or aggregation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultError(pub String);

impl fmt::Display for ResultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ResultError {}

impl ResultFile {
    /// Parses the artifact-style format: a name line, then CSV rows
    /// (one column per run). Lines starting with `-` or `#` are
    /// decoration and skipped.
    ///
    /// # Errors
    ///
    /// Fails on ragged rows or non-numeric cells.
    pub fn parse(text: &str) -> Result<ResultFile, ResultError> {
        let mut name = String::new();
        let mut samples: Vec<Vec<f64>> = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('-') || line.starts_with('#') {
                continue;
            }
            if line.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                let row: Result<Vec<f64>, _> =
                    line.split(',').map(|c| c.trim().parse::<f64>()).collect();
                let row = row.map_err(|e| ResultError(format!("bad cell in '{line}': {e}")))?;
                if let Some(first) = samples.first() {
                    if first.len() != row.len() {
                        return Err(ResultError(format!(
                            "ragged rows: expected {} runs, line '{line}' has {}",
                            first.len(),
                            row.len()
                        )));
                    }
                }
                samples.push(row);
            } else if name.is_empty() {
                name = line.to_string();
            }
        }
        if samples.is_empty() {
            return Err(ResultError("no data rows found".into()));
        }
        Ok(ResultFile {
            name: if name.is_empty() {
                "unnamed".into()
            } else {
                name
            },
            samples,
        })
    }

    /// Number of runs (columns).
    pub fn runs(&self) -> usize {
        self.samples.first().map_or(0, Vec::len)
    }

    /// Per-run averages.
    pub fn run_averages(&self) -> Vec<f64> {
        let runs = self.runs();
        let mut sums = vec![0.0; runs];
        for row in &self.samples {
            for (s, v) in sums.iter_mut().zip(row) {
                *s += v;
            }
        }
        sums.iter().map(|s| s / self.samples.len() as f64).collect()
    }

    /// The artifact's "best number": the highest per-run average for
    /// rate-style benchmarks, the lowest for time-style ones.
    pub fn best(&self, higher_is_better: bool) -> f64 {
        let avgs = self.run_averages();
        avgs.into_iter()
            .fold(None::<f64>, |acc, v| {
                Some(match acc {
                    None => v,
                    Some(a) if higher_is_better => a.max(v),
                    Some(a) => a.min(v),
                })
            })
            .unwrap_or(f64::NAN)
    }
}

/// Formats a CSV body for one benchmark: `name` line then one row per
/// sample group (the inverse of [`ResultFile::parse`]).
pub fn to_csv(name: &str, samples: &[Vec<f64>]) -> String {
    let mut out = format!("{name}\n");
    for row in samples {
        let cells: Vec<String> = row.iter().map(|v| format!("{v:.4}")).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
netperf-stream
----------netperf-stream------
9413.81,9413.92,9412.64
9414.22,9413.71,9413.46
9414.13,9414.27,9414.41
----------------------------
";

    #[test]
    fn parses_artifact_style_output() {
        let r = ResultFile::parse(SAMPLE).unwrap();
        assert_eq!(r.name, "netperf-stream");
        assert_eq!(r.runs(), 3);
        assert_eq!(r.samples.len(), 3);
    }

    #[test]
    fn per_run_averages_and_best() {
        let r = ResultFile::parse(SAMPLE).unwrap();
        let avgs = r.run_averages();
        assert_eq!(avgs.len(), 3);
        // Column 1: (9413.92 + 9413.71 + 9414.27) / 3.
        assert!((avgs[1] - 9413.9666).abs() < 1e-3);
        // Best for a throughput benchmark = the max average.
        let best = r.best(true);
        assert!(avgs.iter().all(|a| *a <= best + 1e-9));
        // Best for a runtime benchmark = the min average.
        let worst_is_best = r.best(false);
        assert!(avgs.iter().all(|a| *a >= worst_is_best - 1e-9));
    }

    #[test]
    fn ragged_rows_rejected() {
        assert!(ResultFile::parse("x\n1,2\n1,2,3\n").is_err());
    }

    #[test]
    fn empty_rejected() {
        assert!(ResultFile::parse("just a name\n").is_err());
    }

    #[test]
    fn csv_round_trip() {
        let csv = to_csv("bench", &[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let r = ResultFile::parse(&csv).unwrap();
        assert_eq!(r.name, "bench");
        assert_eq!(r.samples, vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
    }
}
