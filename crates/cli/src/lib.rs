//! # dvh-cli
//!
//! The command-line workflow for the DVH reproduction, mirroring the
//! paper's artifact appendix: the artifact's `run-vm.py` chooses a VM
//! configuration (image path aside) by *configuration* (`base`,
//! `passthrough`, `dvh-vp`, `dvh`) and *virtualization level* (1–3);
//! `run-benchmarks.sh` selects benchmarks and a repeat count and
//! stores per-run results; `results.py` prints them CSV-like, one
//! column per run, and the evaluation takes the best average.
//!
//! The `dvh` binary reproduces that flow against the simulator:
//!
//! ```text
//! dvh micro   --level 2 --config dvh --iters 10
//! dvh app     --name apache --level 2 --config base --runs 3
//! dvh apps    --level 2 --config dvh-vp --csv
//! dvh migrate --config dvh --with-hypervisor
//! dvh results <csv...>
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod results;

pub use args::{CliConfig, Command, ParseError};
