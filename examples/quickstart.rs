//! Quickstart: build nested-virtualization stacks, measure the cost of
//! the paper's microbenchmarks, and watch DVH remove the guest
//! hypervisor from the picture.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use dvh_core::{Machine, MachineConfig};

fn main() {
    // A plain VM (L1), a nested VM (L2), and a nested VM with all four
    // DVH mechanisms.
    let mut vm = Machine::build(MachineConfig::baseline(1));
    let mut nested = Machine::build(MachineConfig::baseline(2));
    let mut dvh = Machine::build(MachineConfig::dvh(2));

    println!("Cost of programming the LAPIC timer from the guest (cycles):");
    println!("  VM (L1):           {:>8}", vm.program_timer(0).as_u64());
    println!(
        "  nested VM (L2):    {:>8}",
        nested.program_timer(0).as_u64()
    );
    println!("  nested VM + DVH:   {:>8}", dvh.program_timer(0).as_u64());

    println!("\nCost of sending an IPI to an idle vCPU (cycles):");
    println!("  VM (L1):           {:>8}", vm.send_ipi(0, 1).as_u64());
    println!("  nested VM (L2):    {:>8}", nested.send_ipi(0, 1).as_u64());
    println!("  nested VM + DVH:   {:>8}", dvh.send_ipi(0, 1).as_u64());

    // The *reason* for the difference is visible in the exit ledger:
    // without DVH, every nested operation is reflected to the guest
    // hypervisor ("interventions"), each costing dozens of further
    // exits; with DVH the host hypervisor handles them directly.
    println!("\nGuest-hypervisor interventions so far:");
    println!(
        "  nested VM:         {:>8}",
        nested.world().stats.total_interventions()
    );
    println!(
        "  nested VM + DVH:   {:>8}",
        dvh.world().stats.total_interventions()
    );
    println!(
        "\nDVH interceptions by mechanism: {:?}",
        dvh.world().stats.dvh_intercepts
    );

    // Exit multiplication in detail: one timer write from the nested
    // VM explodes into this many hardware exits without DVH.
    let mut fresh = Machine::build(MachineConfig::baseline(2));
    fresh.program_timer(0);
    println!(
        "\nHardware exits caused by ONE nested timer write (vanilla): {}",
        fresh.world().stats.total_exits()
    );
    let mut fresh = Machine::build(MachineConfig::dvh(2));
    fresh.program_timer(0);
    println!(
        "Hardware exits caused by ONE nested timer write (DVH):     {}",
        fresh.world().stats.total_exits()
    );
}
