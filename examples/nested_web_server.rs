//! A nested web server: the paper's motivating scenario. An
//! Apache-like workload runs inside a nested VM (a VM deployed on
//! IaaS infrastructure that is itself a VM), under each of the I/O
//! models of Fig. 2, plus full DVH.
//!
//! Run with:
//! ```text
//! cargo run --release --example nested_web_server
//! ```

use dvh_core::{Machine, MachineConfig};
use dvh_workloads::{run_app, AppId};

fn main() {
    let mix = AppId::Apache.mix();
    println!(
        "Apache-like workload in a nested VM ({} native: {})",
        mix.name,
        AppId::Apache.native_baseline()
    );
    println!(
        "{:<26} {:>9} {:>14} {:>13} {:>8}",
        "configuration", "overhead", "interventions", "dvh handled", "exits"
    );

    let configs = [
        ("virtual I/O (virtio)", MachineConfig::baseline(2)),
        ("device passthrough", MachineConfig::passthrough(2)),
        ("DVH virtual-passthrough", MachineConfig::dvh_vp(2)),
        ("full DVH", MachineConfig::dvh(2)),
    ];
    for (name, cfg) in configs {
        let mut m = Machine::build(cfg);
        let r = run_app(&mut m, &mix, 300);
        let s = &m.world().stats;
        println!(
            "{:<26} {:>8.2}x {:>14} {:>13} {:>8}",
            name,
            r.overhead,
            s.total_interventions(),
            s.total_dvh_intercepts(),
            s.total_exits()
        );
    }

    println!("\nTakeaways (matching the paper's Fig. 7):");
    println!(" * virtio cascades cost a guest-hypervisor intervention per doorbell/interrupt;");
    println!(
        " * passthrough removes I/O exits but cannot migrate and still pays for timers/IPIs/idle;"
    );
    println!(" * virtual-passthrough ~ passthrough performance, with migration intact;");
    println!(" * full DVH brings the nested VM to within a few percent of a plain VM.");
}
