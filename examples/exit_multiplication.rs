//! Exit multiplication, level by level — and how recursive DVH stops
//! it.
//!
//! Real KVM cannot run more than three levels of virtualization; the
//! simulator can, so this example extends the paper's Table 3 to L5.
//! The per-level growth factor (~24x) is emergent: it is the number of
//! privileged operations in a guest hypervisor's world switch times
//! the cost of each, which is itself one reflected exit.
//!
//! Run with:
//! ```text
//! cargo run --release --example exit_multiplication
//! ```

use dvh_arch::vmx::ExitReason;
use dvh_core::{Machine, MachineConfig};

fn main() {
    println!("Hypercall cost by virtualization depth (cycles):");
    let mut prev: Option<u64> = None;
    for levels in 1..=5 {
        let mut m = Machine::build(MachineConfig::baseline(levels));
        let c = m.hypercall(0).as_u64();
        let growth = prev
            .map(|p| format!("   ({:.1}x the level above)", c as f64 / p as f64))
            .unwrap_or_default();
        println!("  L{levels}: {c:>12}{growth}");
        prev = Some(c);
    }

    println!("\nProgramTimer with recursive DVH stays flat at any depth:");
    for levels in 2..=5 {
        let mut m = Machine::build(MachineConfig::dvh(levels));
        println!("  L{levels}: {:>12} cycles", m.program_timer(0).as_u64());
    }

    // Where do all those exits go? Break one nested hypercall down.
    let mut m = Machine::build(MachineConfig::baseline(3));
    m.hypercall(0);
    println!("\nExit ledger for ONE L3 hypercall:");
    let stats = &m.world().stats;
    let mut by_reason: Vec<(ExitReason, u64)> = Vec::new();
    for ((_, reason), n) in stats.exits.iter() {
        match by_reason.iter_mut().find(|(r, _)| *r == reason) {
            Some((_, total)) => *total += n,
            None => by_reason.push((reason, n)),
        }
    }
    by_reason.sort_by_key(|(_, n)| std::cmp::Reverse(*n));
    for (reason, n) in by_reason {
        println!("  {reason:<20} {n:>6}");
    }
    println!("  total exits: {}", stats.total_exits());
    let interventions: Vec<(usize, u64)> = stats.interventions.iter().collect();
    println!("  guest-hypervisor interventions: {interventions:?}");
}
