//! Live migration of a nested VM that uses a DVH virtual-passthrough
//! device — the feature combination device passthrough cannot offer
//! (§3.6).
//!
//! The demo runs a pre-copy migration while the nested VM keeps
//! dirtying memory through CPU writes *and* device DMA; the guest
//! hypervisor harvests the DMA dirty log through the PCI migration
//! capability. It then shows that physical passthrough refuses to
//! migrate at all.
//!
//! Run with:
//! ```text
//! cargo run --release --example migration_demo
//! ```

use dvh_core::{Machine, MachineConfig};
use dvh_devices::nic::Frame;
use dvh_hypervisor::world::LEAF_BUF_BASE_PFN;
use dvh_memory::Gpa;
use dvh_migration::{migrate_nested_vm, resume_on, MigrationConfig, MigrationError};

fn main() {
    let mut m = Machine::build(MachineConfig::dvh(2));

    // Give the nested VM a working set: CPU writes...
    for i in 0..48u64 {
        m.world_mut().guest_write_memory(
            0,
            Gpa::from_pfn(LEAF_BUF_BASE_PFN + i % 60),
            &[i as u8; 512],
        );
    }
    // ...and device DMA (an RX packet lands in guest memory through
    // the shadow I/O table).
    m.world_mut()
        .external_packet_arrival(0, Frame::patterned(1400, 9));

    println!("Migrating a nested VM with a virtual-passthrough NIC (268 Mb/s)...");
    let mut busy_rounds = 4;
    let report = migrate_nested_vm(m.world_mut(), MigrationConfig::default(), |w| {
        // The VM keeps running during pre-copy: more dirty pages.
        if busy_rounds > 0 {
            busy_rounds -= 1;
            for i in 0..10u64 {
                w.guest_write_memory(0, Gpa::from_pfn(LEAF_BUF_BASE_PFN + i), &[0xEE; 256]);
            }
        }
    })
    .expect("DVH nested VMs are migratable");

    for (i, round) in report.rounds.iter().enumerate() {
        println!(
            "  round {}: {:>4} pages, {:>7.2} ms",
            i,
            round.pages,
            round.time.as_secs_f64() * 1e3
        );
    }
    println!(
        "  cut-over: {} pages + {} bytes of encapsulated device state",
        report.downtime_pages, report.device_state_bytes
    );
    println!(
        "  total {:.3} s, downtime {:.2} ms, converged: {}, destination verified: {}",
        report.total_time.as_secs_f64(),
        report.downtime.as_secs_f64() * 1e3,
        report.converged,
        report.verified
    );

    // Resume at the destination: a second host machine with the same
    // configuration receives the image and encapsulated device state.
    let src_config = m.world().config.clone();
    let mut dst = Machine::build(MachineConfig::dvh(2));
    let installed = resume_on(dst.world_mut(), &src_config, &report)
        .expect("same host hypervisor type at source and destination");
    println!(
        "\nDestination resumed with {installed} pages installed; first page matches: {}",
        dst.world()
            .guest_read_memory(Gpa::from_pfn(LEAF_BUF_BASE_PFN), 8)
            == m.world()
                .guest_read_memory(Gpa::from_pfn(LEAF_BUF_BASE_PFN), 8)
    );

    // The contrast: physical passthrough cannot migrate.
    let mut pt = Machine::build(MachineConfig::passthrough(2));
    match migrate_nested_vm(pt.world_mut(), MigrationConfig::default(), |_| {}) {
        Err(MigrationError::PassthroughNotMigratable) => {
            println!("\nPhysical passthrough: migration refused, as on real hardware —");
            println!("the hypervisor can see neither the device state nor the DMA-dirtied pages.");
        }
        other => panic!("expected refusal, got {other:?}"),
    }
}
