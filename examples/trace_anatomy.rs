//! Anatomy of one nested operation, via the execution tracer: every
//! hardware exit, every delivery into a guest hypervisor, and every
//! DVH interception, timestamped — the data behind Figs. 1, 4 and 5.
//!
//! Run with:
//! ```text
//! cargo run --release --example trace_anatomy
//! ```

use dvh_core::{Machine, MachineConfig};

fn show(title: &str, mut m: Machine, op: impl FnOnce(&mut Machine)) {
    m.world_mut().enable_tracing(1 << 14);
    op(&mut m);
    let events = m.world_mut().take_trace();
    println!("{title} — {} events:", events.len());
    let shown = events.len().min(18);
    for e in &events[..shown] {
        println!("  {e}");
    }
    if events.len() > shown {
        println!("  ... {} more", events.len() - shown);
    }
    println!();
}

fn main() {
    show(
        "One L2 timer write, vanilla nested virtualization (Fig. 1a)",
        Machine::build(MachineConfig::baseline(2)),
        |m| {
            m.program_timer(0);
        },
    );
    show(
        "The same timer write with DVH virtual timers (Fig. 1b)",
        Machine::build(MachineConfig::dvh(2)),
        |m| {
            m.program_timer(0);
        },
    );
    show(
        "An L2->L2 IPI with virtual IPIs (Fig. 5)",
        Machine::build(MachineConfig::dvh(2)),
        |m| {
            m.world_mut().guest_send_ipi(0, 1, 0x41);
        },
    );
}
