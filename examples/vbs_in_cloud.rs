//! The paper's motivating deployment (§1): an OS with a built-in
//! hypervisor — Windows virtualization-based security (VBS), WSL2,
//! Linux with KVM for sandboxing — running inside a cloud VM. The
//! "application" is then effectively a nested VM, and every security
//! boundary crossing pays nested-virtualization prices. On providers
//! that are themselves virtualized (nested IaaS), it is an L3 VM.
//!
//! Run with:
//! ```text
//! cargo run --release --example vbs_in_cloud
//! ```

use dvh_core::{analysis, Machine, MachineConfig};
use dvh_workloads::{run_app, AppId};

fn main() {
    println!("A VBS-style in-guest hypervisor inside a cloud VM:\n");
    println!("  cloud host = L0, cloud VM = L1, the OS's own hypervisor makes");
    println!("  user workloads run at L2 (or L3 on nested IaaS).\n");

    let mix = AppId::Memcached.mix();
    println!(
        "{:<34} {:>10} {:>14}",
        "deployment", "overhead", "interventions"
    );
    for (name, cfg) in [
        ("bare cloud VM (no VBS)", MachineConfig::baseline(1)),
        ("VBS on a cloud VM", MachineConfig::baseline(2)),
        ("VBS on nested IaaS", MachineConfig::baseline(3)),
        ("VBS on a cloud VM + DVH", MachineConfig::dvh(2)),
        ("VBS on nested IaaS + DVH", MachineConfig::dvh(3)),
    ] {
        let mut m = Machine::build(cfg);
        let r = run_app(&mut m, &mix, 300);
        println!(
            "{:<34} {:>9.2}x {:>14}",
            name,
            r.overhead,
            m.world().stats.total_interventions()
        );
    }

    // Where does the time go without DVH? Ask the attribution ledger.
    let mut m = Machine::build(MachineConfig::baseline(2));
    run_app(&mut m, &mix, 100);
    println!("\nCost attribution for the VBS-on-cloud-VM case:");
    print!("{}", analysis::explain(m.world()));
    println!("\nWith DVH the cloud host provides the virtual hardware directly, so");
    println!("the security win of the in-guest hypervisor stops costing 6x throughput.");
}
